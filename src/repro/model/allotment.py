"""Allotments: the output of the first phase of a two-phase method.

In the two-phase approach of Turek, Wolf & Yu (and of the paper), the first
phase selects an *allotment* — a number of processors for each task — and the
second phase schedules the resulting *rigid* (non-malleable) tasks.  An
:class:`Allotment` couples an :class:`~repro.model.instance.Instance` with a
processor count per task and exposes the induced rigid quantities (execution
times, works, the strip-packing view of the problem).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..exceptions import ModelError
from .instance import Instance

__all__ = ["Allotment"]


class Allotment:
    """A processor count for every task of an instance.

    Parameters
    ----------
    instance:
        The malleable instance the allotment refers to.
    procs:
        ``procs[i]`` is the number of processors allotted to task ``i``;
        every value must lie in ``1..m``.
    """

    __slots__ = ("_instance", "_procs")

    def __init__(self, instance: Instance, procs: Sequence[int] | np.ndarray) -> None:
        arr = np.asarray(procs, dtype=int)
        if arr.ndim != 1 or arr.size != instance.num_tasks:
            raise ModelError(
                f"allotment must contain exactly one processor count per task "
                f"({instance.num_tasks}), got shape {arr.shape}"
            )
        if np.any(arr < 1) or np.any(arr > instance.num_procs):
            raise ModelError(
                f"allotment values must lie in 1..{instance.num_procs}"
            )
        arr = arr.copy()
        arr.setflags(write=False)
        self._instance = instance
        self._procs = arr

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def canonical(cls, instance: Instance, deadline: float) -> "Allotment | None":
        """The canonical allotment γ(d): minimal processors meeting ``deadline``.

        Returns ``None`` when some task cannot meet the deadline on ``m``
        processors (no schedule of length ``<= deadline`` exists).
        """
        alloc = instance.engine.allotment(deadline)
        if alloc is None:
            return None
        return cls(instance, alloc.procs)

    @classmethod
    def sequential(cls, instance: Instance) -> "Allotment":
        """One processor per task (the minimal-work allotment)."""
        return cls(instance, np.ones(instance.num_tasks, dtype=int))

    @classmethod
    def gang(cls, instance: Instance) -> "Allotment":
        """All ``m`` processors for every task."""
        return cls(
            instance, np.full(instance.num_tasks, instance.num_procs, dtype=int)
        )

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def instance(self) -> Instance:
        """The underlying instance."""
        return self._instance

    @property
    def procs(self) -> np.ndarray:
        """Read-only array of processor counts (one per task)."""
        return self._procs

    def __len__(self) -> int:
        return self._procs.size

    def __iter__(self) -> Iterator[int]:
        return iter(int(p) for p in self._procs)

    def __getitem__(self, index: int) -> int:
        return int(self._procs[index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Allotment):
            return NotImplemented
        return self._instance is other._instance and np.array_equal(
            self._procs, other._procs
        )

    def __hash__(self) -> int:
        return hash((id(self._instance), self._procs.tobytes()))

    # ------------------------------------------------------------------ #
    # induced rigid quantities
    # ------------------------------------------------------------------ #
    def times(self) -> np.ndarray:
        """Execution times of the induced rigid tasks."""
        return np.array(
            [
                task.time(int(p))
                for task, p in zip(self._instance.tasks, self._procs)
            ]
        )

    def works(self) -> np.ndarray:
        """Works (processor-time areas) of the induced rigid tasks."""
        return np.array(
            [
                task.work(int(p))
                for task, p in zip(self._instance.tasks, self._procs)
            ]
        )

    def total_work(self) -> float:
        """Total area ``Σ p_i t_i(p_i)``."""
        return float(self.works().sum())

    def max_time(self) -> float:
        """Longest rigid execution time (height of the tallest rectangle)."""
        return float(self.times().max())

    def area_bound(self) -> float:
        """Lower bound on the makespan of *this allotment*: ``total_work / m``."""
        return self.total_work() / self._instance.num_procs

    def lower_bound(self) -> float:
        """Makespan lower bound for the rigid instance induced by the allotment."""
        return max(self.area_bound(), self.max_time())

    def parallel_indices(self) -> list[int]:
        """Indices of tasks allotted to two or more processors."""
        return [i for i, p in enumerate(self._procs) if p >= 2]

    def sequential_indices(self) -> list[int]:
        """Indices of tasks allotted to exactly one processor."""
        return [i for i, p in enumerate(self._procs) if p == 1]

    def rectangles(self) -> list[tuple[int, int, float]]:
        """Strip-packing view: ``(task_index, width=procs, height=time)``."""
        times = self.times()
        return [
            (i, int(self._procs[i]), float(times[i]))
            for i in range(self._procs.size)
        ]

    def replace(self, index: int, procs: int) -> "Allotment":
        """A copy of the allotment with task ``index`` re-allotted to ``procs``."""
        arr = self._procs.copy()
        arr[index] = procs
        return Allotment(self._instance, arr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Allotment(n={self._procs.size}, total_work={self.total_work():.3g}, "
            f"max_time={self.max_time():.3g})"
        )
