"""Parametric speedup models used to synthesise malleable task profiles.

The paper evaluates its algorithm on *monotonic* malleable tasks: the
execution time decreases with the number of processors while the work
increases, which is "the standard behaviour of parallel applications, mainly
due to the communication overhead" (Section 2.1).  The original authors do
not publish their experimental workloads ("Experiments are currently under
progress"), so this module provides the classical parallel-speedup families
that the community uses to model such behaviour:

* :class:`AmdahlSpeedup` — a sequential fraction bounds the speedup,
* :class:`PowerLawSpeedup` — ``S(p) = p**alpha`` (Downey-style sub-linear
  scaling),
* :class:`CommunicationOverheadSpeedup` — linear speedup degraded by a
  per-processor communication term, the model closest to the ocean
  circulation code motivating the paper,
* :class:`ThresholdSpeedup` — linear scaling up to a parallelism bound, flat
  afterwards,
* :class:`PerfectSpeedup` and :class:`NoSpeedup` — the two extremes.

Every model is a callable mapping a processor count to a speedup value and
exposes :meth:`SpeedupModel.profile` to materialise an execution-time profile
of a given sequential time on ``m`` processors.  Profiles are repaired with
:meth:`repro.model.task.MalleableTask.monotonic_envelope`, so every generated
task satisfies the paper's assumptions exactly (no super-linear speedup, no
slowdown).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..exceptions import ModelError
from .task import MalleableTask

__all__ = [
    "SpeedupModel",
    "PerfectSpeedup",
    "NoSpeedup",
    "AmdahlSpeedup",
    "PowerLawSpeedup",
    "CommunicationOverheadSpeedup",
    "ThresholdSpeedup",
    "TabulatedSpeedup",
]


class SpeedupModel(ABC):
    """Abstract speedup curve ``S(p)`` with ``S(1) = 1``."""

    @abstractmethod
    def speedup(self, procs: int) -> float:
        """Speedup achieved on ``procs`` processors (``procs >= 1``)."""

    def __call__(self, procs: int) -> float:
        return self.speedup(procs)

    def speedups(self, max_procs: int) -> np.ndarray:
        """Vector of speedups for 1..max_procs processors."""
        if max_procs < 1:
            raise ModelError("max_procs must be >= 1")
        return np.array([self.speedup(p) for p in range(1, max_procs + 1)])

    def profile(self, sequential_time: float, max_procs: int) -> np.ndarray:
        """Execution-time profile ``t(p) = sequential_time / S(p)``."""
        if sequential_time <= 0:
            raise ModelError("sequential_time must be positive")
        return sequential_time / self.speedups(max_procs)

    def make_task(
        self, name: str, sequential_time: float, max_procs: int
    ) -> MalleableTask:
        """Materialise a monotonic :class:`MalleableTask` from the model."""
        return MalleableTask.monotonic_envelope(
            name, self.profile(sequential_time, max_procs)
        )


@dataclass(frozen=True)
class PerfectSpeedup(SpeedupModel):
    """Embarrassingly parallel task: ``S(p) = p``."""

    def speedup(self, procs: int) -> float:
        return float(procs)


@dataclass(frozen=True)
class NoSpeedup(SpeedupModel):
    """Fully sequential task: ``S(p) = 1`` for every ``p``."""

    def speedup(self, procs: int) -> float:
        return 1.0


@dataclass(frozen=True)
class AmdahlSpeedup(SpeedupModel):
    """Amdahl's law: a fraction ``serial_fraction`` of the work is sequential.

    ``S(p) = 1 / (serial_fraction + (1 - serial_fraction) / p)``.
    ``serial_fraction = 0`` degenerates to :class:`PerfectSpeedup`,
    ``serial_fraction = 1`` to :class:`NoSpeedup`.
    """

    serial_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ModelError("serial_fraction must lie in [0, 1]")

    def speedup(self, procs: int) -> float:
        f = self.serial_fraction
        return 1.0 / (f + (1.0 - f) / procs)


@dataclass(frozen=True)
class PowerLawSpeedup(SpeedupModel):
    """Power-law scaling ``S(p) = p**alpha`` with ``alpha`` in ``[0, 1]``.

    ``alpha`` close to 1 models highly scalable tasks, ``alpha`` close to 0
    models poorly scalable ones.  This is the shape used by Downey-style
    synthetic parallel workloads.
    """

    alpha: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ModelError("alpha must lie in [0, 1]")

    def speedup(self, procs: int) -> float:
        return float(procs**self.alpha)


@dataclass(frozen=True)
class CommunicationOverheadSpeedup(SpeedupModel):
    """Linear speedup degraded by a communication/management overhead.

    ``t(p) = t(1)/p + overhead * (p - 1)``, expressed here as a speedup
    relative to ``t(1) = 1``: ``S(p) = 1 / (1/p + overhead*(p-1))``.  The
    ``overhead`` parameter is the communication cost per extra processor as a
    fraction of the sequential time.  This is the textbook model of the
    "penalty due to the management of the parallelism" quoted in the paper's
    introduction and is the closest analogue of the ocean-circulation domain
    decomposition workload of reference [3].

    The raw curve is not monotonic for large ``p`` (the overhead eventually
    dominates); :meth:`SpeedupModel.make_task` repairs it into its monotonic
    envelope, which plateaus at the optimal processor count — exactly the
    "threshold" behaviour described in the paper's introduction.
    """

    overhead: float

    def __post_init__(self) -> None:
        if self.overhead < 0:
            raise ModelError("overhead must be non-negative")

    def speedup(self, procs: int) -> float:
        denom = 1.0 / procs + self.overhead * (procs - 1)
        return 1.0 / denom

    def optimal_procs(self, max_procs: int) -> int:
        """Processor count maximising the raw speedup (before repair)."""
        if self.overhead == 0:
            return max_procs
        best = int(round(math.sqrt(1.0 / self.overhead)))
        best = max(1, min(max_procs, best))
        # The rounded optimum of the continuous relaxation may be off by one.
        candidates = {max(1, best - 1), best, min(max_procs, best + 1)}
        return max(candidates, key=self.speedup)


@dataclass(frozen=True)
class ThresholdSpeedup(SpeedupModel):
    """Linear speedup up to ``parallelism`` processors, flat afterwards.

    Models tasks with a bounded degree of parallelism (e.g. a fixed number of
    sub-domains in a domain-decomposition code).
    """

    parallelism: int

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ModelError("parallelism must be >= 1")

    def speedup(self, procs: int) -> float:
        return float(min(procs, self.parallelism))


class TabulatedSpeedup(SpeedupModel):
    """Speedup model backed by an explicit table of values."""

    def __init__(self, speedups: np.ndarray | list[float]) -> None:
        arr = np.asarray(speedups, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ModelError("speedups must be a non-empty 1-D sequence")
        if np.any(arr <= 0):
            raise ModelError("speedups must be positive")
        if abs(arr[0] - 1.0) > 1e-12:
            raise ModelError("speedups[0] (one processor) must equal 1.0")
        self._speedups = arr

    def speedup(self, procs: int) -> float:
        if not 1 <= procs <= self._speedups.size:
            raise ModelError(
                f"processor count {procs} outside 1..{self._speedups.size}"
            )
        return float(self._speedups[procs - 1])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TabulatedSpeedup(n={self._speedups.size})"
