"""Malleable task model: tasks, speedup families, instances, allotments, schedules."""

from .task import EPS, MalleableTask
from .speedup import (
    AmdahlSpeedup,
    CommunicationOverheadSpeedup,
    NoSpeedup,
    PerfectSpeedup,
    PowerLawSpeedup,
    SpeedupModel,
    TabulatedSpeedup,
    ThresholdSpeedup,
)
from .instance import Instance
from .allotment import Allotment
from .schedule import Schedule, ScheduledTask

__all__ = [
    "EPS",
    "MalleableTask",
    "SpeedupModel",
    "PerfectSpeedup",
    "NoSpeedup",
    "AmdahlSpeedup",
    "PowerLawSpeedup",
    "CommunicationOverheadSpeedup",
    "ThresholdSpeedup",
    "TabulatedSpeedup",
    "Instance",
    "Allotment",
    "Schedule",
    "ScheduledTask",
]
