"""Problem instances: a set of malleable tasks plus a machine size.

An :class:`Instance` bundles the ``n`` independent malleable tasks of the
paper with the number ``m`` of identical processors.  It exposes the
quantities that the algorithms of Sections 3 and 4 are built from:

* canonical allotments γ(d) (minimal processors meeting a deadline ``d``),
* the total canonical work used by Property 2,
* the canonical μ-area ``W_m`` of Definition 1,
* simple makespan lower bounds used to seed the dual-approximation search.

Tasks inside an instance are restricted to ``m`` processors; an instance is
immutable once built.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import ModelError
from .task import EPS, MalleableTask

__all__ = ["Instance", "profile_fingerprint"]


def profile_fingerprint(
    num_procs: int,
    times_matrix: np.ndarray,
    release_times: np.ndarray | Sequence[float] | None = None,
) -> str:
    """Content hash shared by :meth:`Instance.fingerprint` and the service.

    Hashes the machine size and the ``(n, m)`` execution-time matrix at full
    ``float64`` precision (little-endian, so the digest is architecture
    independent).  Exposed at module level so the service frontend can
    fingerprint a raw request payload without materialising the
    :class:`Instance` (the cache-hit fast path).

    ``release_times`` extends the hash to online traces.  An all-zero (or
    ``None``) release vector contributes *nothing* to the digest, so
    release-free instances keep the exact fingerprint they had before
    release dates existed — warm service caches stay valid for every
    offline client.
    """
    times = np.ascontiguousarray(times_matrix, dtype="<f8")
    digest = hashlib.sha256()
    digest.update(b"repro-instance-v1")
    digest.update(f"{int(num_procs)}:{times.shape[0]}:{times.shape[1]}".encode())
    digest.update(times.tobytes())
    if release_times is not None:
        releases = np.ascontiguousarray(release_times, dtype="<f8")
        if releases.size and np.any(releases != 0.0):
            digest.update(b"releases-v1")
            digest.update(releases.tobytes())
    return digest.hexdigest()


class Instance:
    """An instance of the malleable-task scheduling problem.

    Parameters
    ----------
    tasks:
        The malleable tasks.  Each task must define its profile for at least
        ``num_procs`` processors (larger profiles are truncated).
    num_procs:
        The number ``m`` of identical processors.
    name:
        Optional label used in experiment reports.
    """

    __slots__ = ("_tasks", "_m", "_name", "_engine", "_fingerprint")

    def __init__(
        self,
        tasks: Sequence[MalleableTask] | Iterable[MalleableTask],
        num_procs: int,
        *,
        name: str = "instance",
    ) -> None:
        task_list = list(tasks)
        if num_procs < 1:
            raise ModelError("num_procs must be >= 1")
        if not task_list:
            raise ModelError("an instance needs at least one task")
        prepared: list[MalleableTask] = []
        for task in task_list:
            if not isinstance(task, MalleableTask):
                raise ModelError(
                    f"expected MalleableTask, got {type(task).__name__}"
                )
            if task.max_procs < num_procs:
                raise ModelError(
                    f"task {task.name!r} defines only {task.max_procs} processor "
                    f"counts but the machine has {num_procs} processors"
                )
            prepared.append(
                task if task.max_procs == num_procs else task.restricted(num_procs)
            )
        self._tasks: tuple[MalleableTask, ...] = tuple(prepared)
        self._m = int(num_procs)
        self._name = str(name)
        self._engine = None
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Label of the instance."""
        return self._name

    @property
    def tasks(self) -> tuple[MalleableTask, ...]:
        """The tasks of the instance (immutable tuple)."""
        return self._tasks

    @property
    def num_tasks(self) -> int:
        """Number of tasks ``n``."""
        return len(self._tasks)

    @property
    def num_procs(self) -> int:
        """Number of processors ``m``."""
        return self._m

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[MalleableTask]:
        return iter(self._tasks)

    def __getitem__(self, index: int) -> MalleableTask:
        return self._tasks[index]

    def task_index(self, name: str) -> int:
        """Index of the task called ``name`` (first match)."""
        for i, task in enumerate(self._tasks):
            if task.name == name:
                return i
        raise KeyError(name)

    # ------------------------------------------------------------------ #
    # vectorized allotment engine
    # ------------------------------------------------------------------ #
    @property
    def engine(self):
        """The per-instance :class:`~repro.core.allotment_engine.AllotmentEngine`.

        Built lazily from the stacked profile matrices on first use and then
        shared by every canonical-allotment consumer (schedulers, lower
        bounds, partition), so repeated dual-search guesses hit its LRU
        cache.  The engine is dropped on pickling (worker processes rebuild
        their own).
        """
        if self._engine is None:
            # Local import: the engine lives in the core layer, which imports
            # the model layer at module scope.
            from ..core.allotment_engine import AllotmentEngine

            self._engine = AllotmentEngine(self.times_matrix, self.works_matrix)
        return self._engine

    def engine_cache_info(self) -> dict | None:
        """Memo statistics of the engine, or ``None`` before its first use.

        Non-forcing: unlike :attr:`engine`, asking for the statistics of a
        kernel run that never probed γ does not build (and stack matrices
        for) an engine nobody used.
        """
        return None if self._engine is None else self._engine.cache_info()

    @property
    def times_matrix(self) -> np.ndarray:
        """Stacked execution-time profiles, ``times[i, p-1] = t_i(p)``.

        Rectangular ``(n, m)`` because the constructor truncates every
        profile to exactly ``m`` columns.
        """
        return np.vstack([t.times for t in self._tasks])

    @property
    def works_matrix(self) -> np.ndarray:
        """Stacked work profiles, ``works[i, p-1] = p · t_i(p)``."""
        return np.vstack([t.works for t in self._tasks])

    # ------------------------------------------------------------------ #
    # release dates (online traces)
    # ------------------------------------------------------------------ #
    @property
    def release_times(self) -> np.ndarray:
        """Per-task release times, ``release_times[i] = r_i`` (0.0 offline)."""
        return np.array([t.release_time for t in self._tasks], dtype=float)

    @property
    def has_releases(self) -> bool:
        """Whether any task carries a non-zero release time."""
        return any(t.release_time > 0.0 for t in self._tasks)

    def with_releases(
        self, releases: Sequence[float] | np.ndarray, *, name: str | None = None
    ) -> "Instance":
        """Same tasks and machine, with ``releases[i]`` as task ``i``'s release."""
        arr = np.asarray(releases, dtype=float)
        if arr.shape != (len(self._tasks),):
            raise ModelError(
                f"expected {len(self._tasks)} release times, got shape {arr.shape}"
            )
        return Instance(
            [t.released(float(r)) for t, r in zip(self._tasks, arr)],
            self._m,
            name=name or self._name,
        )

    # ------------------------------------------------------------------ #
    # pickling (the engine cache is per-process state, not instance data)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        return {"tasks": self._tasks, "m": self._m, "name": self._name}

    def __setstate__(self, state: dict) -> None:
        self._tasks = state["tasks"]
        self._m = state["m"]
        self._name = state["name"]
        self._engine = None
        self._fingerprint = None

    # ------------------------------------------------------------------ #
    # aggregate quantities
    # ------------------------------------------------------------------ #
    def total_sequential_work(self) -> float:
        """Sum of the single-processor works ``Σ t_i(1)``.

        Because work is non-decreasing in the number of processors this is
        the minimal total work of any allotment, and ``Σ t_i(1) / m`` is the
        classical area lower bound on the optimal makespan.
        """
        return float(sum(t.sequential_time() for t in self._tasks))

    def max_min_time(self) -> float:
        """``max_i t_i(m)``: the longest unavoidable task duration."""
        return float(max(t.min_time() for t in self._tasks))

    def max_sequential_time(self) -> float:
        """``max_i t_i(1)``."""
        return float(max(t.sequential_time() for t in self._tasks))

    def lower_bound(self) -> float:
        """Simple makespan lower bound ``max(area bound, longest minimal task)``.

        See :func:`repro.lower_bounds.canonical_area_lower_bound` for the
        tighter bound derived from Property 2 that the experiment harness
        uses as the denominator of approximation ratios.
        """
        return max(self.total_sequential_work() / self._m, self.max_min_time())

    def upper_bound(self) -> float:
        """A trivially feasible makespan: run every task alone on one processor.

        Running the tasks one after the other on a single processor (or
        greedily with LPT) is always feasible, so ``Σ t_i(1)`` upper-bounds
        the optimum.  Used to seed the dichotomic search.
        """
        return self.total_sequential_work()

    # ------------------------------------------------------------------ #
    # canonical quantities (Section 2.1, Definition 1)
    # ------------------------------------------------------------------ #
    def canonical_procs(self, deadline: float) -> list[int | None]:
        """γ_i(deadline) for every task (``None`` when unreachable)."""
        return self.engine.canonical_procs(deadline)

    def canonical_work(self, deadline: float) -> float | None:
        """Total work of the canonical allotment, ``Σ W_i(γ_i(d))``.

        Returns ``None`` when some task cannot meet the deadline at all, in
        which case no schedule of length ``<= deadline`` exists.
        """
        return self.engine.total_work(deadline)

    def mu_area(self, deadline: float) -> float | None:
        """Canonical μ-area ``W_m`` of Definition 1.

        Sort the tasks by non-increasing canonical execution time
        ``t_i(γ_i(d))`` and imagine stacking them side by side on an
        unbounded machine (each task occupying γ_i processors).  ``W_m`` is
        the (fractional) area computed by the first ``m`` processors:

        ``W_m = Σ_{i<k} W_i(γ_i) + (m − Σ_{i<k} γ_i) · t_k(γ_k)``

        where ``k`` is the minimal index such that the cumulative processor
        count reaches ``m``.  When the canonical allotment uses fewer than
        ``m`` processors in total, ``W_m`` is simply the total canonical
        work.  Returns ``None`` when some γ_i does not exist.
        """
        return self.engine.mu_area(deadline)

    # ------------------------------------------------------------------ #
    # transformations & serialisation
    # ------------------------------------------------------------------ #
    def scaled(self, factor: float) -> "Instance":
        """Instance with every execution time multiplied by ``factor``."""
        return Instance(
            [t.scaled(factor) for t in self._tasks],
            self._m,
            name=f"{self._name}*{factor:g}",
        )

    def subset(self, indices: Sequence[int], *, name: str | None = None) -> "Instance":
        """Instance restricted to the tasks at ``indices``."""
        return Instance(
            [self._tasks[i] for i in indices],
            self._m,
            name=name or f"{self._name}[subset]",
        )

    def with_machine(self, num_procs: int) -> "Instance":
        """Same tasks on a machine with ``num_procs`` processors.

        Tasks must define their profile for at least ``num_procs``
        processors.
        """
        return Instance(self._tasks, num_procs, name=self._name)

    def fingerprint(self) -> str:
        """Stable content hash of the instance (hex SHA-256, cached).

        The hash covers exactly what the scheduling algorithms see — the
        machine size ``m`` and the stacked execution-time profiles at full
        ``float64`` precision (serialised little-endian, so the digest is
        identical across architectures), plus the release-time vector when
        any task has a non-zero release (release-free instances hash to the
        exact pre-release-date digest, so warm service caches survive this
        extension).  Labels (instance name, task names) are deliberately
        *excluded*: two instances with the same profiles produce the same
        schedules, so they must share a fingerprint for the service result
        cache to recognise replayed workloads.  Task order matters
        (schedules refer to tasks by index).

        Serialisation round-trips are fingerprint-preserving:
        ``Instance.from_json(inst.to_json()).fingerprint() ==
        inst.fingerprint()`` because :meth:`to_json` stores every float with
        its shortest round-trip ``repr`` (bit-exact under Python's JSON).
        """
        if self._fingerprint is None:
            self._fingerprint = profile_fingerprint(
                self._m,
                self.times_matrix,
                self.release_times if self.has_releases else None,
            )
        return self._fingerprint

    def as_dict(self) -> dict:
        """JSON-serialisable representation.

        Float profiles are emitted as native Python floats (``ndarray.tolist``),
        which serialise through ``json`` with their shortest round-trip
        ``repr`` — so ``from_dict(as_dict())`` reconstructs bit-exact
        ``float64`` profiles and preserves :meth:`fingerprint`.
        """
        return {
            "name": self._name,
            "num_procs": self._m,
            "tasks": [t.as_dict() for t in self._tasks],
        }

    def to_json(self) -> str:
        """Serialise to a canonical JSON string (sorted keys, no whitespace).

        The canonical form makes equal instances serialise to equal bytes,
        which the service layer relies on when comparing responses.
        """
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: dict) -> "Instance":
        """Inverse of :meth:`as_dict`."""
        tasks = [MalleableTask.from_dict(t) for t in payload["tasks"]]
        return cls(tasks, payload["num_procs"], name=payload.get("name", "instance"))

    @classmethod
    def from_json(cls, text: str) -> "Instance":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_profiles(
        cls,
        profiles: Sequence[Sequence[float]] | np.ndarray,
        *,
        name: str = "instance",
        require_monotonic: bool = True,
    ) -> "Instance":
        """Build an instance from a matrix ``profiles[i][p-1] = t_i(p)``."""
        arr = np.asarray(profiles, dtype=float)
        if arr.ndim != 2:
            raise ModelError("profiles must be a 2-D array (tasks x processors)")
        tasks = [
            MalleableTask(f"T{i}", arr[i], require_monotonic=require_monotonic)
            for i in range(arr.shape[0])
        ]
        return cls(tasks, arr.shape[1], name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instance({self._name!r}, n={self.num_tasks}, m={self._m})"
