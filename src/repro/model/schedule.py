"""Schedules of malleable tasks on an identical-processor machine.

A :class:`Schedule` assigns every task a start time, a contiguous block of
processors and (implicitly, through the task profile) a duration.  The paper
searches for *non-preemptive, contiguous* schedules, so contiguity is the
default and is part of :meth:`Schedule.validate`; the guarantee of every
algorithm is nevertheless measured against an optimal schedule that may be
preemptive and non-contiguous (handled by the lower bounds, not by this
class).

The class is deliberately strict: every scheduler in the package finishes by
calling :meth:`Schedule.validate`, and the test-suite re-validates every
schedule produced on random instances, so a structural bug in an algorithm
surfaces as an :class:`~repro.exceptions.InvalidScheduleError` rather than as
a silently wrong makespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import InvalidScheduleError, ModelError
from .instance import Instance
from .task import EPS

__all__ = ["ScheduledTask", "Schedule"]


@dataclass(frozen=True)
class ScheduledTask:
    """Placement of a single task inside a schedule.

    Attributes
    ----------
    task_index:
        Index of the task in the instance.
    start:
        Start time (``>= 0``).
    first_proc:
        Index (0-based) of the first processor of the contiguous block.
    num_procs:
        Number of processors allotted; the block is
        ``first_proc .. first_proc + num_procs - 1``.
    duration:
        Execution time; must equal ``task.time(num_procs)``.
    """

    task_index: int
    start: float
    first_proc: int
    num_procs: int
    duration: float

    @property
    def end(self) -> float:
        """Completion time of the task."""
        return self.start + self.duration

    @property
    def procs(self) -> range:
        """The processors used, as a ``range``."""
        return range(self.first_proc, self.first_proc + self.num_procs)

    @property
    def work(self) -> float:
        """Processor-time area occupied by the task."""
        return self.num_procs * self.duration


class Schedule:
    """A complete (or partial) schedule for an instance.

    Parameters
    ----------
    instance:
        The instance being scheduled.
    algorithm:
        Optional name of the algorithm that produced the schedule (reported
        in tables and Gantt charts).
    """

    __slots__ = ("_instance", "_entries", "_algorithm")

    def __init__(self, instance: Instance, *, algorithm: str = "") -> None:
        self._instance = instance
        self._entries: list[ScheduledTask] = []
        self._algorithm = algorithm

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add(
        self,
        task_index: int,
        start: float,
        first_proc: int,
        num_procs: int,
        *,
        duration: float | None = None,
    ) -> ScheduledTask:
        """Place a task and return the created :class:`ScheduledTask`.

        ``duration`` defaults to the task's execution time on ``num_procs``
        processors; passing an explicit duration is only meant for tests that
        build deliberately inconsistent schedules.
        """
        if not 0 <= task_index < self._instance.num_tasks:
            raise ModelError(f"task index {task_index} out of range")
        task = self._instance.tasks[task_index]
        if duration is None:
            duration = task.time(num_procs)
        entry = ScheduledTask(
            task_index=int(task_index),
            start=float(start),
            first_proc=int(first_proc),
            num_procs=int(num_procs),
            duration=float(duration),
        )
        self._entries.append(entry)
        return entry

    def extend(self, entries: Iterable[ScheduledTask]) -> None:
        """Append pre-built entries (used by schedule transformations)."""
        self._entries.extend(entries)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def instance(self) -> Instance:
        """The scheduled instance."""
        return self._instance

    @property
    def algorithm(self) -> str:
        """Name of the producing algorithm."""
        return self._algorithm

    @property
    def entries(self) -> tuple[ScheduledTask, ...]:
        """All task placements, in insertion order."""
        return tuple(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ScheduledTask]:
        return iter(self._entries)

    def entry_for(self, task_index: int) -> ScheduledTask:
        """The placement of task ``task_index`` (raises ``KeyError`` if absent)."""
        for entry in self._entries:
            if entry.task_index == task_index:
                return entry
        raise KeyError(task_index)

    def is_complete(self) -> bool:
        """Whether every task of the instance has been placed exactly once."""
        placed = [e.task_index for e in self._entries]
        return sorted(placed) == list(range(self._instance.num_tasks))

    # ------------------------------------------------------------------ #
    # aggregate metrics
    # ------------------------------------------------------------------ #
    def makespan(self) -> float:
        """Completion time of the last task (0 for an empty schedule)."""
        if not self._entries:
            return 0.0
        return max(e.end for e in self._entries)

    def total_work(self) -> float:
        """Total processor-time area occupied by tasks."""
        return float(sum(e.work for e in self._entries))

    def utilization(self) -> float:
        """Fraction of the ``m x makespan`` rectangle occupied by tasks."""
        cmax = self.makespan()
        if cmax <= 0:
            return 0.0
        return self.total_work() / (self._instance.num_procs * cmax)

    def idle_area(self) -> float:
        """Idle processor-time area below the makespan."""
        return self._instance.num_procs * self.makespan() - self.total_work()

    def processor_intervals(self) -> list[list[tuple[float, float, int]]]:
        """Per-processor busy intervals ``(start, end, task_index)``, sorted."""
        per_proc: list[list[tuple[float, float, int]]] = [
            [] for _ in range(self._instance.num_procs)
        ]
        for entry in self._entries:
            for proc in entry.procs:
                if 0 <= proc < self._instance.num_procs:
                    per_proc[proc].append((entry.start, entry.end, entry.task_index))
        for intervals in per_proc:
            intervals.sort()
        return per_proc

    def processor_finish_times(self) -> np.ndarray:
        """Completion time of the last task on each processor."""
        finish = np.zeros(self._instance.num_procs)
        for entry in self._entries:
            for proc in entry.procs:
                finish[proc] = max(finish[proc], entry.end)
        return finish

    def busy_until(self, at: float = 0.0) -> np.ndarray:
        """Per-processor availability query: when each processor frees up.

        ``busy_until(at)[p]`` is the earliest time ``>= at`` at which
        processor ``p`` has no scheduled work left — the latest end among
        the entries on ``p`` still unfinished at ``at``, floored at ``at``
        (a processor with nothing left reads as free *now*).  Holes between
        stacked entries are deliberately ignored: the query answers "when is
        this processor handed back for good", which is what the online
        availability kernel needs to stitch new work after the carry-over
        (:mod:`repro.online.availability`).  ``busy_until(0.0)`` coincides
        with :meth:`processor_finish_times`.
        """
        busy = np.full(self._instance.num_procs, float(at))
        for entry in self._entries:
            if entry.end <= at:
                continue
            for proc in entry.procs:
                busy[proc] = max(busy[proc], entry.end)
        return busy

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(
        self,
        *,
        require_complete: bool = True,
        require_contiguous: bool = True,
        deadline: float | None = None,
        respect_release: bool = False,
        tol: float = 1e-6,
    ) -> None:
        """Check every structural constraint; raise on the first violation.

        Parameters
        ----------
        require_complete:
            Every task of the instance must appear exactly once.
        require_contiguous:
            Kept for API symmetry; placements are contiguous by construction
            (a block is stored as ``first_proc`` + ``num_procs``), so this
            only verifies the block lies inside the machine.
        deadline:
            If given, additionally check ``makespan <= deadline + tol``.
        respect_release:
            Additionally check that no task starts before its release time
            (the online-timeline constraint; off by default because the
            offline schedulers ignore release dates).
        tol:
            Absolute tolerance for floating point comparisons.
        """
        m = self._instance.num_procs
        seen: dict[int, int] = {}
        for entry in self._entries:
            task = self._instance.tasks[entry.task_index]
            seen[entry.task_index] = seen.get(entry.task_index, 0) + 1
            if entry.start < -tol:
                raise InvalidScheduleError(
                    f"task {task.name!r} starts at negative time {entry.start}"
                )
            if respect_release and entry.start < task.release_time - tol:
                raise InvalidScheduleError(
                    f"task {task.name!r} starts at {entry.start:.6g} before its "
                    f"release time {task.release_time:.6g}"
                )
            if entry.num_procs < 1:
                raise InvalidScheduleError(
                    f"task {task.name!r} uses {entry.num_procs} processors"
                )
            if entry.first_proc < 0 or entry.first_proc + entry.num_procs > m:
                raise InvalidScheduleError(
                    f"task {task.name!r} uses processors "
                    f"{entry.first_proc}..{entry.first_proc + entry.num_procs - 1} "
                    f"outside 0..{m - 1}"
                )
            expected = task.time(entry.num_procs)
            if abs(entry.duration - expected) > tol * max(1.0, expected):
                raise InvalidScheduleError(
                    f"task {task.name!r} recorded duration {entry.duration} but "
                    f"t({entry.num_procs}) = {expected}"
                )
        if require_complete:
            missing = [
                i for i in range(self._instance.num_tasks) if seen.get(i, 0) == 0
            ]
            if missing:
                names = ", ".join(self._instance.tasks[i].name for i in missing[:5])
                raise InvalidScheduleError(
                    f"{len(missing)} task(s) not scheduled (e.g. {names})"
                )
        duplicated = [i for i, count in seen.items() if count > 1]
        if duplicated:
            raise InvalidScheduleError(
                f"task(s) scheduled more than once: {sorted(duplicated)}"
            )
        # Overlap check per processor.
        for proc, intervals in enumerate(self.processor_intervals()):
            for (s1, e1, t1), (s2, e2, t2) in zip(intervals, intervals[1:]):
                if s2 < e1 - tol:
                    n1 = self._instance.tasks[t1].name
                    n2 = self._instance.tasks[t2].name
                    raise InvalidScheduleError(
                        f"tasks {n1!r} and {n2!r} overlap on processor {proc}: "
                        f"[{s1:.4g}, {e1:.4g}) and [{s2:.4g}, {e2:.4g})"
                    )
        if deadline is not None and self.makespan() > deadline + tol:
            raise InvalidScheduleError(
                f"makespan {self.makespan():.6g} exceeds deadline {deadline:.6g}"
            )

    def is_valid(self, **kwargs) -> bool:
        """Boolean variant of :meth:`validate`."""
        try:
            self.validate(**kwargs)
        except InvalidScheduleError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # transformations & serialisation
    # ------------------------------------------------------------------ #
    def shifted(self, offset: float) -> "Schedule":
        """A copy of the schedule with every start time shifted by ``offset``."""
        out = Schedule(self._instance, algorithm=self._algorithm)
        out.extend(
            ScheduledTask(
                e.task_index, e.start + offset, e.first_proc, e.num_procs, e.duration
            )
            for e in self._entries
        )
        return out

    def merged_with(self, other: "Schedule", *, algorithm: str | None = None) -> "Schedule":
        """Union of two partial schedules over the same instance."""
        if other.instance is not self._instance:
            raise ModelError("cannot merge schedules of different instances")
        out = Schedule(
            self._instance, algorithm=algorithm or self._algorithm or other.algorithm
        )
        out.extend(self._entries)
        out.extend(other.entries)
        return out

    def as_dict(self) -> dict:
        """JSON-serialisable representation (without the instance)."""
        return {
            "algorithm": self._algorithm,
            "entries": [
                {
                    "task_index": e.task_index,
                    "start": e.start,
                    "first_proc": e.first_proc,
                    "num_procs": e.num_procs,
                    "duration": e.duration,
                }
                for e in self._entries
            ],
        }

    @classmethod
    def from_dict(cls, instance: Instance, payload: dict) -> "Schedule":
        """Inverse of :meth:`as_dict`."""
        sched = cls(instance, algorithm=payload.get("algorithm", ""))
        for item in payload["entries"]:
            sched.add(
                item["task_index"],
                item["start"],
                item["first_proc"],
                item["num_procs"],
                duration=item["duration"],
            )
        return sched

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Schedule(algorithm={self._algorithm!r}, tasks={len(self._entries)}, "
            f"makespan={self.makespan():.4g})"
        )
