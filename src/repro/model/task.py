"""Malleable task model.

A *malleable task* (Section 2 of the paper) is a computational unit that can
be executed on any number of processors ``p`` in ``1..p_max`` with an
execution time ``t(p)`` that depends on the amount of resources allotted to
it.  The paper's *monotonic* assumption states that

* ``t(p)`` is non-increasing in ``p``  (more processors never slow the task
  down), and
* the computational work (or *area*) ``W(p) = p * t(p)`` is non-decreasing in
  ``p`` (speedup is never super-linear — Brent's lemma).

Both directions are used throughout the algorithms of Sections 3 and 4, so
:class:`MalleableTask` validates them at construction time (and exposes
:meth:`MalleableTask.monotonic_envelope` to repair an arbitrary profile into
the closest monotonic one, which is how the workload generators synthesise
valid profiles from noisy speedup models).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..exceptions import ModelError, MonotonicityError

__all__ = ["EPS", "MalleableTask"]

#: Global absolute tolerance used for floating point comparisons on execution
#: times and deadlines.  Algorithms treat ``t <= d + EPS`` as "fits in d".
EPS: float = 1e-9


class MalleableTask:
    """A malleable task described by its execution-time profile.

    Parameters
    ----------
    name:
        Human readable identifier (also used in Gantt charts and tables).
    times:
        Sequence ``times[p-1] = t(p)`` of execution times for ``p`` from 1 to
        ``len(times)`` processors.  All values must be finite and positive.
    require_monotonic:
        If true (default), a :class:`~repro.exceptions.MonotonicityError` is
        raised when the profile violates the monotonic assumption.  When
        false the profile is stored as given; algorithms that rely on
        monotonicity may then lose their guarantee (this mirrors the paper's
        remark that the assumption "can not be asserted for all the
        applications").
    release_time:
        Earliest time at which the task may start (default 0.0 — the paper's
        offline setting).  Only the online replay layer
        (:mod:`repro.online`) interprets release dates; the offline
        schedulers ignore them, and :meth:`Schedule.validate
        <repro.model.schedule.Schedule.validate>` checks them only when
        asked (``respect_release=True``).

    Notes
    -----
    The profile is stored as an immutable ``float64`` NumPy array.  Processor
    counts are 1-based in the public API, matching the paper's notation.
    """

    __slots__ = ("_name", "_times", "_works", "_monotonic", "_release")

    def __init__(
        self,
        name: str,
        times: Sequence[float] | np.ndarray,
        *,
        require_monotonic: bool = True,
        release_time: float = 0.0,
    ) -> None:
        arr = np.asarray(times, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ModelError(
                f"task {name!r}: the execution-time profile must be a non-empty "
                f"1-D sequence, got shape {arr.shape}"
            )
        if not np.all(np.isfinite(arr)):
            raise ModelError(f"task {name!r}: execution times must be finite")
        if np.any(arr <= 0.0):
            raise ModelError(f"task {name!r}: execution times must be positive")
        release = float(release_time)
        if not np.isfinite(release) or release < 0.0:
            raise ModelError(
                f"task {name!r}: release time must be finite and non-negative, "
                f"got {release_time!r}"
            )
        arr = arr.copy()
        arr.setflags(write=False)
        self._name = str(name)
        self._times = arr
        self._release = release
        works = arr * np.arange(1, arr.size + 1, dtype=float)
        works.setflags(write=False)
        self._works = works
        self._monotonic = self._check_monotonic(arr, works)
        if require_monotonic and not self._monotonic:
            raise MonotonicityError(
                f"task {name!r}: execution-time profile violates the monotonic "
                "assumption (time must be non-increasing and work non-decreasing "
                "in the number of processors); use MalleableTask.monotonic_envelope "
                "to repair it or pass require_monotonic=False"
            )

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_monotonic(times: np.ndarray, works: np.ndarray) -> bool:
        """Return True when the profile satisfies both monotonic conditions."""
        if times.size == 1:
            return True
        time_ok = bool(np.all(np.diff(times) <= EPS))
        work_ok = bool(np.all(np.diff(works) >= -EPS))
        return time_ok and work_ok

    @classmethod
    def monotonic_envelope(
        cls, name: str, times: Sequence[float] | np.ndarray
    ) -> "MalleableTask":
        """Build a task from ``times`` after repairing monotonicity.

        The repair first enforces non-increasing execution times by a running
        minimum (a scheduler can always ignore extra processors, so the
        repaired time is achievable), then enforces non-decreasing work by a
        running maximum on the work profile expressed back as times
        ``t(p) = max(t(p), W(p-1)/p)``.  The result dominates the original
        profile point-wise from above on time only where necessary, and is
        the canonical way the workload generators sanitise noisy profiles.
        """
        arr = np.asarray(times, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ModelError(
                f"task {name!r}: the execution-time profile must be a non-empty "
                f"1-D sequence, got shape {arr.shape}"
            )
        repaired = np.minimum.accumulate(arr.astype(float))
        # Enforce non-decreasing work: W(p) >= W(p-1)  <=>  t(p) >= W(p-1)/p.
        out = repaired.copy()
        prev_work = out[0]
        for p in range(2, out.size + 1):
            needed = prev_work / p
            if out[p - 1] < needed:
                out[p - 1] = needed
            prev_work = p * out[p - 1]
        return cls(name, out, require_monotonic=True)

    @classmethod
    def constant_work(cls, name: str, work: float, max_procs: int) -> "MalleableTask":
        """A perfectly parallel task: ``t(p) = work / p`` for every ``p``."""
        if max_procs < 1:
            raise ModelError("max_procs must be >= 1")
        p = np.arange(1, max_procs + 1, dtype=float)
        return cls(name, work / p)

    @classmethod
    def rigid(cls, name: str, duration: float, max_procs: int) -> "MalleableTask":
        """A task that does not benefit from parallelism: ``t(p) = duration``."""
        if max_procs < 1:
            raise ModelError("max_procs must be >= 1")
        return cls(name, np.full(max_procs, float(duration)))

    @classmethod
    def from_speedup(
        cls,
        name: str,
        sequential_time: float,
        speedup: Iterable[float] | "np.ndarray",
    ) -> "MalleableTask":
        """Build a task from a sequential time and a speedup curve.

        ``speedup[p-1]`` is the speedup on ``p`` processors; the execution
        time is ``sequential_time / speedup[p-1]``.  The profile is repaired
        with :meth:`monotonic_envelope` so arbitrary speedup curves (for
        instance the parametric families of :mod:`repro.model.speedup`)
        always produce valid monotonic tasks.
        """
        s = np.asarray(list(speedup), dtype=float)
        if np.any(s <= 0):
            raise ModelError(f"task {name!r}: speedups must be positive")
        return cls.monotonic_envelope(name, float(sequential_time) / s)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Identifier of the task."""
        return self._name

    @property
    def max_procs(self) -> int:
        """Largest processor count for which the profile is defined."""
        return int(self._times.size)

    @property
    def times(self) -> np.ndarray:
        """Read-only execution time profile, ``times[p-1] = t(p)``."""
        return self._times

    @property
    def works(self) -> np.ndarray:
        """Read-only work profile, ``works[p-1] = p * t(p)``."""
        return self._works

    @property
    def is_monotonic(self) -> bool:
        """Whether the stored profile satisfies the monotonic assumption."""
        return self._monotonic

    @property
    def release_time(self) -> float:
        """Earliest start time of the task (0.0 in the offline setting)."""
        return self._release

    def time(self, procs: int) -> float:
        """Execution time on ``procs`` processors (1-based)."""
        self._check_procs(procs)
        return float(self._times[procs - 1])

    def work(self, procs: int) -> float:
        """Computational area ``procs * t(procs)``."""
        self._check_procs(procs)
        return float(self._works[procs - 1])

    def speedup(self, procs: int) -> float:
        """Speedup ``t(1) / t(procs)``."""
        self._check_procs(procs)
        return float(self._times[0] / self._times[procs - 1])

    def efficiency(self, procs: int) -> float:
        """Parallel efficiency ``speedup(procs) / procs`` (in ``(0, 1]``)."""
        return self.speedup(procs) / procs

    def sequential_time(self) -> float:
        """Execution time on a single processor, ``t(1)``."""
        return float(self._times[0])

    def min_time(self) -> float:
        """Shortest achievable execution time, ``t(p_max)``."""
        return float(self._times[-1])

    def _check_procs(self, procs: int) -> None:
        if not isinstance(procs, (int, np.integer)):
            raise ModelError(
                f"task {self._name!r}: processor count must be an integer, got "
                f"{type(procs).__name__}"
            )
        if not 1 <= procs <= self._times.size:
            raise ModelError(
                f"task {self._name!r}: processor count {procs} outside 1..{self._times.size}"
            )

    # ------------------------------------------------------------------ #
    # canonical processor numbers (Section 2.1)
    # ------------------------------------------------------------------ #
    def canonical_procs(self, deadline: float) -> int | None:
        """Minimal number of processors executing the task within ``deadline``.

        This is the paper's canonical number γ(d): the smallest ``p`` such
        that ``t(p) <= d``.  Returns ``None`` when even ``p_max`` processors
        cannot meet the deadline (``t(p_max) > d``), which is the paper's
        certificate that no schedule of length ``<= d`` exists.
        """
        if deadline <= 0:
            return None
        idx = np.searchsorted(-self._times, -(deadline + EPS), side="left")
        # ``times`` is non-increasing, so ``-times`` is non-decreasing and
        # ``idx`` is the first position with ``times[idx] <= deadline + EPS``.
        # For non-monotonic profiles fall back to a linear scan.
        if not self._monotonic:
            hits = np.nonzero(self._times <= deadline + EPS)[0]
            return int(hits[0]) + 1 if hits.size else None
        if idx >= self._times.size:
            return None
        return int(idx) + 1

    def canonical_time(self, deadline: float) -> float | None:
        """Execution time at the canonical allotment γ(d), or ``None``."""
        p = self.canonical_procs(deadline)
        return None if p is None else self.time(p)

    def canonical_work(self, deadline: float) -> float | None:
        """Work at the canonical allotment γ(d), or ``None``."""
        p = self.canonical_procs(deadline)
        return None if p is None else self.work(p)

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def restricted(self, max_procs: int) -> "MalleableTask":
        """A copy of the task whose profile is truncated to ``max_procs``."""
        if max_procs < 1:
            raise ModelError("max_procs must be >= 1")
        limit = min(max_procs, self.max_procs)
        return MalleableTask(
            self._name,
            self._times[:limit],
            require_monotonic=False,
            release_time=self._release,
        )

    def scaled(self, factor: float) -> "MalleableTask":
        """A copy of the task with all times (and the release) scaled by ``factor``.

        The release time scales with the execution times so that scaling an
        online trace rescales its whole time axis consistently.
        """
        if factor <= 0:
            raise ModelError("scaling factor must be positive")
        return MalleableTask(
            self._name,
            self._times * factor,
            require_monotonic=False,
            release_time=self._release * factor,
        )

    def released(self, release_time: float) -> "MalleableTask":
        """A copy of the task with the given release time (profile unchanged)."""
        return MalleableTask(
            self._name,
            self._times,
            require_monotonic=False,
            release_time=release_time,
        )

    def as_dict(self) -> dict:
        """JSON-serialisable representation of the task.

        ``tolist`` converts the ``float64`` profile to native Python floats;
        ``json`` serialises those with their shortest round-trip ``repr``, so
        ``from_dict(as_dict())`` restores the exact same bits (pinned by a
        property test).  The ``"release"`` key is only emitted for tasks with
        a non-zero release time, so offline instances serialise to the exact
        same bytes as before release dates existed.
        """
        payload = {"name": self._name, "times": self._times.tolist()}
        if self._release > 0.0:
            payload["release"] = self._release
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "MalleableTask":
        """Inverse of :meth:`as_dict`."""
        return cls(
            payload["name"],
            payload["times"],
            require_monotonic=False,
            release_time=float(payload.get("release", 0.0)),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MalleableTask):
            return NotImplemented
        return (
            self._name == other._name
            and self._release == other._release
            and np.array_equal(self._times, other._times)
        )

    def __hash__(self) -> int:
        return hash((self._name, self._release, self._times.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MalleableTask({self._name!r}, t(1)={self.sequential_time():.3g}, "
            f"t({self.max_procs})={self.min_time():.3g})"
        )
