"""Metrics, Gantt rendering, tables and the experiment harness."""

from .metrics import ScheduleMetrics, approximation_ratio, evaluate_schedule
from .gantt import gantt_chart, shelf_summary
from .tables import format_markdown_table, format_table
from .experiments import (
    ComparisonResult,
    RunRecord,
    default_schedulers,
    run_comparison,
    sweep_workloads,
)

__all__ = [
    "ScheduleMetrics",
    "approximation_ratio",
    "evaluate_schedule",
    "gantt_chart",
    "shelf_summary",
    "format_table",
    "format_markdown_table",
    "ComparisonResult",
    "RunRecord",
    "default_schedulers",
    "run_comparison",
    "sweep_workloads",
]
