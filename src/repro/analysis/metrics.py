"""Schedule quality metrics used throughout the experiments."""

from __future__ import annotations

from dataclasses import dataclass

from ..lower_bounds import best_lower_bound
from ..model.instance import Instance
from ..model.schedule import Schedule

__all__ = ["ScheduleMetrics", "evaluate_schedule", "approximation_ratio"]


@dataclass(frozen=True)
class ScheduleMetrics:
    """Summary statistics of a schedule against an instance.

    Attributes
    ----------
    algorithm:
        Name of the producing algorithm.
    makespan:
        Completion time of the schedule.
    lower_bound:
        The strongest makespan lower bound of :mod:`repro.lower_bounds`.
    ratio:
        ``makespan / lower_bound`` — an upper bound on the true approximation
        ratio of the run.
    utilization:
        Fraction of the ``m × makespan`` area occupied by tasks.
    total_work:
        Processor-time area of the schedule.
    work_inflation:
        ``total_work / Σ t_i(1)`` — how much extra work parallelisation cost
        (1.0 means every task ran at its most efficient allotment).
    """

    algorithm: str
    makespan: float
    lower_bound: float
    ratio: float
    utilization: float
    total_work: float
    work_inflation: float


def approximation_ratio(schedule: Schedule, *, lower_bound: float | None = None) -> float:
    """``makespan / lower_bound`` (uses the strongest implemented bound by default)."""
    lb = lower_bound if lower_bound is not None else best_lower_bound(schedule.instance)
    if lb <= 0:
        return float("inf")
    return schedule.makespan() / lb


def evaluate_schedule(
    schedule: Schedule, *, lower_bound: float | None = None
) -> ScheduleMetrics:
    """Compute the full metric set for a schedule."""
    instance: Instance = schedule.instance
    lb = lower_bound if lower_bound is not None else best_lower_bound(instance)
    sequential_work = instance.total_sequential_work()
    total_work = schedule.total_work()
    return ScheduleMetrics(
        algorithm=schedule.algorithm or "unknown",
        makespan=schedule.makespan(),
        lower_bound=lb,
        ratio=schedule.makespan() / lb if lb > 0 else float("inf"),
        utilization=schedule.utilization(),
        total_work=total_work,
        work_inflation=total_work / sequential_work if sequential_work > 0 else 1.0,
    )
