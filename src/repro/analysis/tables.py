"""Plain-text result tables (no external dependencies)."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_markdown_table"]


def _stringify(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Monospaced table with aligned columns."""
    str_rows = [[_stringify(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """GitHub-flavoured markdown table (used to refresh EXPERIMENTS.md)."""
    str_rows = [[_stringify(v) for v in row] for row in rows]
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
