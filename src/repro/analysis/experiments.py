"""Experiment harness: algorithm comparisons over workload sweeps.

This is the machinery behind the EXP-A/EXP-B/EXP-C rows of ``EXPERIMENTS.md``
and behind ``python -m repro compare``.  It runs a set of schedulers over a
grid of workloads (family × machine size × repetitions), measures every run
against the strongest lower bound and aggregates the approximation ratios.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..baselines.gang import GangScheduler
from ..baselines.ludwig import LudwigScheduler
from ..baselines.sequential import SequentialLPTScheduler
from ..baselines.turek import TurekScheduler
from ..core.mrt import MRTScheduler
from ..lower_bounds import best_lower_bound
from ..model.instance import Instance
from ..scheduler import Scheduler
from ..workloads.generators import make_workload
from .metrics import ScheduleMetrics, evaluate_schedule
from .tables import format_table

__all__ = [
    "RunRecord",
    "ComparisonResult",
    "default_schedulers",
    "run_comparison",
    "sweep_workloads",
]


@dataclass(frozen=True)
class RunRecord:
    """One (instance, scheduler) measurement."""

    instance_name: str
    family: str
    num_tasks: int
    num_procs: int
    algorithm: str
    makespan: float
    lower_bound: float
    ratio: float
    runtime_seconds: float


@dataclass
class ComparisonResult:
    """All measurements of a comparison, with aggregation helpers."""

    records: list[RunRecord] = field(default_factory=list)

    def algorithms(self) -> list[str]:
        """Distinct algorithm names, in first-seen order."""
        seen: list[str] = []
        for record in self.records:
            if record.algorithm not in seen:
                seen.append(record.algorithm)
        return seen

    def ratios(self, algorithm: str) -> np.ndarray:
        """All measured ratios of one algorithm."""
        return np.array(
            [r.ratio for r in self.records if r.algorithm == algorithm]
        )

    def summary_rows(self) -> list[list]:
        """Aggregate rows: mean/max ratio and mean runtime per algorithm."""
        rows = []
        for algo in self.algorithms():
            ratios = self.ratios(algo)
            runtimes = np.array(
                [r.runtime_seconds for r in self.records if r.algorithm == algo]
            )
            rows.append(
                [
                    algo,
                    float(ratios.mean()),
                    float(ratios.max()),
                    float(np.percentile(ratios, 95)),
                    float(runtimes.mean()),
                    len(ratios),
                ]
            )
        return rows

    def summary_table(self) -> str:
        """Human-readable aggregate table."""
        return format_table(
            ["algorithm", "mean ratio", "max ratio", "p95 ratio", "mean s", "runs"],
            self.summary_rows(),
        )

    def grouped_by_procs(self, algorithm: str) -> dict[int, float]:
        """Mean ratio of one algorithm per machine size."""
        out: dict[int, list[float]] = {}
        for record in self.records:
            if record.algorithm == algorithm:
                out.setdefault(record.num_procs, []).append(record.ratio)
        return {m: float(np.mean(v)) for m, v in sorted(out.items())}


def default_schedulers() -> list[Scheduler]:
    """The scheduler line-up of experiment EXP-A."""
    return [
        MRTScheduler(),
        LudwigScheduler(),
        TurekScheduler(max_candidates=128),
        SequentialLPTScheduler(),
        GangScheduler(),
    ]


def run_comparison(
    instances: Sequence[Instance],
    schedulers: Sequence[Scheduler] | None = None,
    *,
    family: str = "custom",
) -> ComparisonResult:
    """Run every scheduler on every instance and collect the measurements."""
    chosen = list(schedulers) if schedulers is not None else default_schedulers()
    result = ComparisonResult()
    for instance in instances:
        lb = best_lower_bound(instance)
        for scheduler in chosen:
            start = time.perf_counter()
            schedule = scheduler.schedule(instance)
            elapsed = time.perf_counter() - start
            schedule.validate()
            result.records.append(
                RunRecord(
                    instance_name=instance.name,
                    family=family,
                    num_tasks=instance.num_tasks,
                    num_procs=instance.num_procs,
                    algorithm=scheduler.name,
                    makespan=schedule.makespan(),
                    lower_bound=lb,
                    ratio=schedule.makespan() / lb if lb > 0 else float("inf"),
                    runtime_seconds=elapsed,
                )
            )
    return result


def sweep_workloads(
    *,
    families: Sequence[str] = ("uniform", "mixed", "heavy-tailed", "rigid-heavy"),
    num_tasks: int = 40,
    machine_sizes: Sequence[int] = (8, 16, 32),
    repetitions: int = 3,
    seed: int = 0,
    schedulers: Sequence[Scheduler] | None = None,
) -> ComparisonResult:
    """The EXP-A sweep: families × machine sizes × repetitions."""
    rng = np.random.default_rng(seed)
    result = ComparisonResult()
    for family in families:
        for m in machine_sizes:
            instances = [
                make_workload(family, num_tasks, m, seed=rng)
                for _ in range(repetitions)
            ]
            partial = run_comparison(instances, schedulers, family=family)
            result.records.extend(partial.records)
    return result
