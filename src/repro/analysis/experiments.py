"""Experiment harness: algorithm comparisons over workload sweeps.

This is the machinery behind the EXP-A/EXP-B/EXP-C rows of ``EXPERIMENTS.md``
and behind ``python -m repro compare``.  It runs a set of schedulers over a
grid of workloads (family × machine size × repetitions), measures every run
against the strongest lower bound and aggregates the approximation ratios.

Heavy-traffic mode
------------------
Both :func:`run_comparison` and :func:`sweep_workloads` accept ``workers=N``
to fan the independent *(instance, scheduler)* pairs out over a process pool
(``concurrent.futures``; threads as an automatic fallback when the platform
forbids subprocesses).  Every run is deterministic, each worker carries its
own pickled copy of the scheduler and rebuilds the instance's allotment
engine locally, and the records are re-assembled in the exact submission
order — so the parallel result is identical to the serial one, up to the
measured per-run wall times.
"""

from __future__ import annotations

import copy
import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..baselines.gang import GangScheduler
from ..baselines.ludwig import LudwigScheduler
from ..baselines.sequential import SequentialLPTScheduler
from ..baselines.turek import TurekScheduler
from ..core.mrt import MRTScheduler
from ..lower_bounds import best_lower_bound
from ..model.instance import Instance
from ..scheduler import Scheduler
from ..workloads.generators import make_workload
from .metrics import ScheduleMetrics, evaluate_schedule
from .tables import format_table

__all__ = [
    "RunRecord",
    "ComparisonResult",
    "default_schedulers",
    "make_pool",
    "run_comparison",
    "sweep_workloads",
]


@dataclass(frozen=True)
class RunRecord:
    """One (instance, scheduler) measurement."""

    instance_name: str
    family: str
    num_tasks: int
    num_procs: int
    algorithm: str
    makespan: float
    lower_bound: float
    ratio: float
    runtime_seconds: float


@dataclass
class ComparisonResult:
    """All measurements of a comparison, with aggregation helpers."""

    records: list[RunRecord] = field(default_factory=list)

    def algorithms(self) -> list[str]:
        """Distinct algorithm names, in first-seen order."""
        seen: list[str] = []
        for record in self.records:
            if record.algorithm not in seen:
                seen.append(record.algorithm)
        return seen

    def ratios(self, algorithm: str) -> np.ndarray:
        """All measured ratios of one algorithm."""
        return np.array(
            [r.ratio for r in self.records if r.algorithm == algorithm]
        )

    def summary_rows(self) -> list[list]:
        """Aggregate rows: mean/max ratio and mean runtime per algorithm."""
        rows = []
        for algo in self.algorithms():
            ratios = self.ratios(algo)
            runtimes = np.array(
                [r.runtime_seconds for r in self.records if r.algorithm == algo]
            )
            rows.append(
                [
                    algo,
                    float(ratios.mean()),
                    float(ratios.max()),
                    float(np.percentile(ratios, 95)),
                    float(runtimes.mean()),
                    len(ratios),
                ]
            )
        return rows

    def summary_table(self) -> str:
        """Human-readable aggregate table."""
        return format_table(
            ["algorithm", "mean ratio", "max ratio", "p95 ratio", "mean s", "runs"],
            self.summary_rows(),
        )

    def grouped_by_procs(self, algorithm: str) -> dict[int, float]:
        """Mean ratio of one algorithm per machine size."""
        out: dict[int, list[float]] = {}
        for record in self.records:
            if record.algorithm == algorithm:
                out.setdefault(record.num_procs, []).append(record.ratio)
        return {m: float(np.mean(v)) for m, v in sorted(out.items())}


def default_schedulers() -> list[Scheduler]:
    """The scheduler line-up of experiment EXP-A."""
    return [
        MRTScheduler(),
        LudwigScheduler(),
        TurekScheduler(max_candidates=128),
        SequentialLPTScheduler(),
        GangScheduler(),
    ]


def _run_single(
    instance: Instance,
    scheduler: Scheduler,
    family: str,
    lb: float | None = None,
) -> RunRecord:
    """Measure one (instance, scheduler) pair — the unit of parallel fan-out.

    When ``lb`` is omitted (the parallel path) the lower bound is computed
    here so the pair is self-contained; it is a deterministic function of
    the instance, hence identical across serial and parallel runs, and its
    dichotomic-search guesses prime the instance's allotment-engine cache
    for the scheduler run that follows.  The serial path computes it once
    per instance and passes it in.
    """
    if lb is None:
        lb = best_lower_bound(instance)
    start = time.perf_counter()
    schedule = scheduler.schedule(instance)
    elapsed = time.perf_counter() - start
    schedule.validate()
    return RunRecord(
        instance_name=instance.name,
        family=family,
        num_tasks=instance.num_tasks,
        num_procs=instance.num_procs,
        algorithm=scheduler.name,
        makespan=schedule.makespan(),
        lower_bound=lb,
        ratio=schedule.makespan() / lb if lb > 0 else float("inf"),
        runtime_seconds=elapsed,
    )


def _pool_probe() -> int:
    """Picklable no-op used to verify that a process pool can actually run."""
    return os.getpid()


def make_pool(workers: int, *, prefer: str = "process") -> tuple[Executor, str]:
    """Build an executor with the process→thread fallback, return ``(pool, kind)``.

    This is the shared dispatch backend of the experiment harness *and* of
    :class:`repro.service.SchedulerService`.  With ``prefer="process"`` a
    :class:`ProcessPoolExecutor` is created and probed with a trivial task
    (worker processes start lazily on some platforms, so constructing the
    pool alone proves nothing); when the platform forbids subprocesses
    (restricted sandboxes) the probe fails and a :class:`ThreadPoolExecutor`
    is returned instead.  ``kind`` is ``"process"`` or ``"thread"`` so
    callers can adapt (e.g. deep-copy shared mutable state before submitting
    to threads).  ``prefer="thread"`` skips the probe and always returns a
    thread pool — the right default for a latency-sensitive service where
    pickling instances per request would dominate.
    """
    if prefer not in ("process", "thread"):
        raise ValueError(f"prefer must be 'process' or 'thread', got {prefer!r}")
    if prefer == "process":
        pool = None
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
            pool.submit(_pool_probe).result()
            return pool, "process"
        except (OSError, PermissionError, BrokenProcessPool):
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
    return ThreadPoolExecutor(max_workers=workers), "thread"


def _run_parallel(
    pairs: list[tuple[Instance, Scheduler, str]], workers: int
) -> list[RunRecord]:
    """Fan ``pairs`` out over a pool; records come back in submission order.

    A process pool gives real parallelism (the schedulers are CPU-bound
    Python); when the platform cannot spawn subprocesses (restricted
    sandboxes) :func:`make_pool` falls back to a thread pool, and each task
    then gets a deep copy of its scheduler so no scheduler state is shared
    across concurrent runs (instances *are* shared there; their engine cache
    is thread-safe).  Exceptions raised by the measured code itself surface
    through ``Future.result`` and propagate unchanged.
    """
    pool, kind = make_pool(workers)
    with pool:
        if kind == "process":
            futures = [pool.submit(_run_single, *pair) for pair in pairs]
        else:
            futures = [
                pool.submit(_run_single, inst, copy.deepcopy(sched), family)
                for inst, sched, family in pairs
            ]
        return [f.result() for f in futures]


def run_comparison(
    instances: Sequence[Instance],
    schedulers: Sequence[Scheduler] | None = None,
    *,
    family: str = "custom",
    workers: int | None = None,
) -> ComparisonResult:
    """Run every scheduler on every instance and collect the measurements.

    ``workers=N`` distributes the (instance, scheduler) pairs over a pool of
    ``N`` processes.  Record order and record contents are identical to the
    serial run (every run is deterministic); only the measured
    ``runtime_seconds`` reflect the machine's actual timings.
    """
    chosen = list(schedulers) if schedulers is not None else default_schedulers()
    pairs = [
        (instance, scheduler, family)
        for instance in instances
        for scheduler in chosen
    ]
    result = ComparisonResult()
    if workers is not None and workers > 1 and len(pairs) > 1:
        result.records.extend(_run_parallel(pairs, workers))
    else:
        lbs: dict[int, float] = {}
        for instance, scheduler, fam in pairs:
            lb = lbs.get(id(instance))
            if lb is None:
                lb = lbs[id(instance)] = best_lower_bound(instance)
            result.records.append(_run_single(instance, scheduler, fam, lb))
    return result


def sweep_workloads(
    *,
    families: Sequence[str] = ("uniform", "mixed", "heavy-tailed", "rigid-heavy"),
    num_tasks: int = 40,
    machine_sizes: Sequence[int] = (8, 16, 32),
    repetitions: int = 3,
    seed: int = 0,
    schedulers: Sequence[Scheduler] | None = None,
    workers: int | None = None,
) -> ComparisonResult:
    """The EXP-A sweep: families × machine sizes × repetitions.

    Instance generation stays serial (it consumes one shared RNG stream, so
    the workloads are independent of ``workers``); with ``workers=N`` the
    whole grid of (instance, scheduler) pairs is then fanned out at once.
    """
    rng = np.random.default_rng(seed)
    chosen = list(schedulers) if schedulers is not None else default_schedulers()
    grid: list[tuple[str, list[Instance]]] = []
    for family in families:
        for m in machine_sizes:
            instances = [
                make_workload(family, num_tasks, m, seed=rng)
                for _ in range(repetitions)
            ]
            grid.append((family, instances))
    result = ComparisonResult()
    if workers is not None and workers > 1:
        pairs = [
            (instance, scheduler, family)
            for family, instances in grid
            for instance in instances
            for scheduler in chosen
        ]
        result.records.extend(_run_parallel(pairs, workers))
    else:
        for family, instances in grid:
            partial = run_comparison(instances, chosen, family=family)
            result.records.extend(partial.records)
    return result
