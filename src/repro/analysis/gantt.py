"""ASCII Gantt charts for schedules.

The paper's structural figures (Figures 1–7) depict schedule shapes; the
benchmarks regenerate them as text Gantt charts so that the structures (two
shelves, levels, idle stair-steps…) can be inspected directly in the bench
output without any plotting dependency.
"""

from __future__ import annotations

from ..model.schedule import Schedule

__all__ = ["gantt_chart", "shelf_summary"]

_CHARS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


def gantt_chart(schedule: Schedule, *, width: int = 78, legend: bool = True) -> str:
    """Render a schedule as an ASCII Gantt chart (one row per processor).

    Each task is drawn with a repeated single character; idle time is ``.``.
    Time is discretised into ``width`` columns spanning ``[0, makespan]``.
    """
    instance = schedule.instance
    cmax = schedule.makespan()
    if cmax <= 0 or len(schedule) == 0:
        return "(empty schedule)"
    m = instance.num_procs
    cols = max(10, width)
    grid = [["." for _ in range(cols)] for _ in range(m)]
    symbol_of: dict[int, str] = {}
    for idx, entry in enumerate(sorted(schedule.entries, key=lambda e: (e.start, e.first_proc))):
        symbol = _CHARS[idx % len(_CHARS)]
        symbol_of[entry.task_index] = symbol
        c0 = int(round(entry.start / cmax * cols))
        c1 = int(round(entry.end / cmax * cols))
        c1 = max(c1, c0 + 1)
        for proc in entry.procs:
            for c in range(c0, min(c1, cols)):
                grid[proc][c] = symbol
    lines = [f"{schedule.algorithm or 'schedule'}  makespan={cmax:.4g}  m={m}"]
    for proc in range(m):
        lines.append(f"P{proc:>3} |" + "".join(grid[proc]) + "|")
    ruler = " " * 5 + "0" + " " * (cols - 8) + f"{cmax:.3g}"
    lines.append(ruler)
    if legend:
        entries = sorted(symbol_of.items(), key=lambda kv: kv[1])
        parts = [
            f"{sym}={instance.tasks[task].name}" for task, sym in entries[:24]
        ]
        lines.append("legend: " + ", ".join(parts) + ("…" if len(entries) > 24 else ""))
    return "\n".join(lines)


def shelf_summary(schedule: Schedule, *, tol: float = 1e-9) -> str:
    """One line per distinct start time: how many tasks/processors start there.

    Handy to display two-shelf structures (Figure 4) compactly.
    """
    groups: dict[float, list] = {}
    for entry in schedule.entries:
        key = round(entry.start / max(tol, 1e-12)) * tol if tol > 0 else entry.start
        groups.setdefault(round(entry.start, 9), []).append(entry)
    lines = []
    for start in sorted(groups):
        entries = groups[start]
        procs = sum(e.num_procs for e in entries)
        height = max(e.duration for e in entries)
        lines.append(
            f"t={start:8.4g}: {len(entries):3d} task(s), {procs:4d} processor(s), "
            f"height {height:.4g}"
        )
    return "\n".join(lines)
