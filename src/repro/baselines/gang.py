"""Gang scheduling baseline: every task gets the whole machine.

The simplest malleable policy: run the tasks one after the other, each on all
``m`` processors.  Its makespan ``Σ_i t_i(m)`` is optimal when tasks scale
perfectly, but degrades linearly with the aggregate parallel overhead —
making it a useful sanity anchor in the comparison tables of EXP-A.
"""

from __future__ import annotations

from ..model.instance import Instance
from ..model.schedule import Schedule
from ..scheduler import Scheduler

__all__ = ["GangScheduler"]


class GangScheduler(Scheduler):
    """Run every task on all ``m`` processors, back to back (LPT order)."""

    name = "gang"

    def schedule(self, instance: Instance) -> Schedule:
        m = instance.num_procs
        order = sorted(
            range(instance.num_tasks),
            key=lambda i: -instance.tasks[i].time(m),
        )
        schedule = Schedule(instance, algorithm=self.name)
        clock = 0.0
        for i in order:
            duration = instance.tasks[i].time(m)
            schedule.add(i, clock, 0, m)
            clock += duration
        schedule.validate()
        return schedule
