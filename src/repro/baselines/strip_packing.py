"""Level-oriented strip packing for rigid task scheduling.

The second phase of the two-phase baselines must schedule a rigid instance —
rectangles of width ``p_i`` (processors) and height ``t_i(p_i)`` (time) —
inside a strip of width ``m``, minimising the height (makespan).  The paper
points out that this is exactly 2-dimensional strip packing and that the best
absolute guarantee usable in practice at the time was Steinberg's factor 2
[17] as used by Ludwig [12].

This module implements the classical *level* (shelf) algorithms of Coffman,
Garey, Johnson & Tarjan [5]:

* **NFDH** — Next Fit Decreasing Height: sort by non-increasing height, fill
  the current shelf left to right, open a new shelf when the item does not
  fit (asymptotic factor 2, absolute factor 3 with tall items bounded by the
  optimum);
* **FFDH** — First Fit Decreasing Height: like NFDH but an item may be placed
  on *any* earlier shelf with room (asymptotic factor 1.7).

**Substitution note.**  Steinberg's absolute-2 algorithm is intricate and
produces non-shelf packings; we substitute FFDH here.  Every rectangle
produced by the allotment-selection phase has height at most the makespan
target, in which case FFDH's shelves give an absolute factor well below 3 and
empirically close to 2 — the baseline therefore keeps the behaviour the paper
ascribes to it (a constant-factor two-phase method limited by its general
strip-packing phase).  See ``DESIGN.md`` and ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from ..exceptions import SchedulingError
from ..model.allotment import Allotment
from ..model.schedule import Schedule
from ..packing.shelves import Shelf

__all__ = ["nfdh_schedule", "ffdh_schedule", "pack_with"]


def _decreasing_height_order(allotment: Allotment) -> list[int]:
    times = allotment.times()
    return sorted(range(len(allotment)), key=lambda i: (-times[i], -allotment[i], i))


def _shelves_to_schedule(
    allotment: Allotment, shelves: list[Shelf], *, algorithm: str
) -> Schedule:
    schedule = Schedule(allotment.instance, algorithm=algorithm)
    for shelf in shelves:
        for placement in shelf.placements:
            schedule.add(
                placement.task_index,
                shelf.start,
                placement.first_proc,
                placement.width,
            )
    schedule.validate()
    return schedule


def nfdh_schedule(allotment: Allotment) -> Schedule:
    """Next Fit Decreasing Height shelf packing of the rigid instance."""
    instance = allotment.instance
    m = instance.num_procs
    shelves: list[Shelf] = []
    current: Shelf | None = None
    for i in _decreasing_height_order(allotment):
        width = allotment[i]
        height = instance.tasks[i].time(width)
        if width > m:
            raise SchedulingError(
                f"task {instance.tasks[i].name!r} is wider than the machine"
            )
        if current is None or not current.fits(width, height):
            start = 0.0 if current is None else current.end
            current = Shelf(start=start, num_procs=m)
            shelves.append(current)
        current.place(i, width, height)
    return _shelves_to_schedule(allotment, shelves, algorithm="nfdh")


def ffdh_schedule(allotment: Allotment) -> Schedule:
    """First Fit Decreasing Height shelf packing of the rigid instance."""
    instance = allotment.instance
    m = instance.num_procs
    shelves: list[Shelf] = []
    for i in _decreasing_height_order(allotment):
        width = allotment[i]
        height = instance.tasks[i].time(width)
        if width > m:
            raise SchedulingError(
                f"task {instance.tasks[i].name!r} is wider than the machine"
            )
        placed = False
        for shelf in shelves:
            if shelf.fits(width, height):
                shelf.place(i, width, height)
                placed = True
                break
        if not placed:
            start = shelves[-1].end if shelves else 0.0
            shelf = Shelf(start=start, num_procs=m)
            shelf.place(i, width, height)
            shelves.append(shelf)
    # FFDH may have grown an earlier shelf after later shelves were opened
    # (an item taller than the shelf's current height never lands on an old
    # shelf because items are sorted by decreasing height, so starts stay
    # consistent) — recompute starts defensively to keep the schedule valid.
    start = 0.0
    for shelf in shelves:
        shelf.start = start
        start += shelf.height
    return _shelves_to_schedule(allotment, shelves, algorithm="ffdh")


def pack_with(allotment: Allotment, method: str) -> Schedule:
    """Dispatch helper: ``method`` is ``"nfdh"``, ``"ffdh"`` or ``"list"``."""
    if method == "nfdh":
        return nfdh_schedule(allotment)
    if method == "ffdh":
        return ffdh_schedule(allotment)
    if method == "list":
        from .listsched import rigid_list_schedule

        return rigid_list_schedule(allotment)
    raise ValueError(f"unknown strip-packing method {method!r}")
