"""Sequential LPT baseline: no task is ever parallelised.

Each task runs on a single processor; tasks are dispatched with Graham's LPT
rule.  This policy minimises total work (by monotonicity the one-processor
work is minimal) but ignores the critical-path benefit of parallelising long
tasks, so it degrades when a few tasks dominate — the regime the malleable
model is designed for.  Together with :class:`repro.baselines.gang.GangScheduler`
it brackets the naive ends of the allotment spectrum in the EXP-A tables.
"""

from __future__ import annotations

from ..model.allotment import Allotment
from ..model.instance import Instance
from ..model.schedule import Schedule
from ..scheduler import Scheduler
from .listsched import rigid_list_schedule

__all__ = ["SequentialLPTScheduler"]


class SequentialLPTScheduler(Scheduler):
    """One processor per task, LPT dispatch."""

    name = "sequential-lpt"

    def schedule(self, instance: Instance) -> Schedule:
        allotment = Allotment.sequential(instance)
        schedule = rigid_list_schedule(allotment, algorithm=self.name)
        return schedule
