"""Baseline schedulers the paper compares against (and sanity anchors)."""

from .listsched import (
    RigidLPTScheduler,
    largest_width_order,
    lpt_order,
    rigid_list_schedule,
)
from .strip_packing import ffdh_schedule, nfdh_schedule, pack_with
from .turek import TurekScheduler, candidate_thresholds, canonical_allotment_for_threshold
from .ludwig import LudwigScheduler, select_min_lower_bound_allotment
from .gang import GangScheduler
from .sequential import SequentialLPTScheduler
from .optimal import BranchAndBoundOptimal, optimal_makespan, optimal_schedule

__all__ = [
    "RigidLPTScheduler",
    "rigid_list_schedule",
    "lpt_order",
    "largest_width_order",
    "nfdh_schedule",
    "ffdh_schedule",
    "pack_with",
    "TurekScheduler",
    "candidate_thresholds",
    "canonical_allotment_for_threshold",
    "LudwigScheduler",
    "select_min_lower_bound_allotment",
    "GangScheduler",
    "SequentialLPTScheduler",
    "BranchAndBoundOptimal",
    "optimal_schedule",
    "optimal_makespan",
]
