"""Exact optimum for small instances, by branch and bound.

The approximation ratios of the paper are worst-case guarantees against an
optimal (possibly preemptive, non-contiguous) schedule.  On small instances
we compute the exact optimal *non-preemptive contiguous* makespan, which
upper-bounds the true optimum; combined with the lower bounds of
:mod:`repro.lower_bounds` it brackets the true optimum tightly on the
instance sizes used in the tables, and the measured ratios reported against
it are conservative (never flattering).

Exactness argument
------------------
Any contiguous non-preemptive schedule can be *left-shifted*: processing the
tasks in non-decreasing start order, each task's start is reduced until it is
either 0 or the completion time of a task occupying one of its processors.
The transformation never increases the makespan, so an optimal schedule
exists in which every start time is 0 or a completion time and start times
are explored in non-decreasing order.  The branch-and-bound below enumerates
exactly that family — branching over the next task, its allotment, a start
time among the current completion times (not smaller than the previously
chosen start) and every feasible contiguous position — and prunes with the
rigid area/critical-path lower bound against the best incumbent (initialised
with the √3 heuristic).  Complexity is exponential; size guards prevent
accidental use on large instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ModelError, SchedulingError
from ..model.instance import Instance
from ..model.schedule import Schedule
from ..scheduler import Scheduler

__all__ = ["optimal_schedule", "optimal_makespan", "BranchAndBoundOptimal"]


@dataclass(frozen=True)
class _Node:
    """Partial schedule state used by the branch-and-bound search."""

    remaining: frozenset[int]
    avail: tuple[float, ...]  # per-processor availability profile
    entries: tuple[tuple[int, float, int, int], ...]  # (task, start, first_proc, procs)
    makespan: float
    last_start: float


def _lower_bound(instance: Instance, node: _Node) -> float:
    m = instance.num_procs
    used_area = sum(instance.tasks[t].work(p) for t, _s, _f, p in node.entries)
    remaining_area = sum(
        instance.tasks[t].sequential_time() for t in node.remaining
    )
    area_bound = (used_area + remaining_area) / m
    tail_bound = max(
        (instance.tasks[t].min_time() for t in node.remaining), default=0.0
    )
    return max(node.makespan, area_bound, node.last_start + tail_bound)


def optimal_schedule(
    instance: Instance,
    *,
    max_tasks: int = 7,
    max_procs: int = 8,
    max_nodes: int = 3_000_000,
) -> Schedule:
    """Exact optimal contiguous non-preemptive schedule (small instances only).

    Raises :class:`~repro.exceptions.ModelError` when the instance exceeds
    the size guards and :class:`~repro.exceptions.SchedulingError` when the
    node budget is exhausted before optimality is proven.
    """
    n, m = instance.num_tasks, instance.num_procs
    if n > max_tasks or m > max_procs:
        raise ModelError(
            f"optimal_schedule is exponential; refusing n={n} (max {max_tasks}), "
            f"m={m} (max {max_procs})"
        )
    from ..core.mrt import MRTScheduler  # local import to avoid a cycle

    incumbent = MRTScheduler(eps=1e-3).schedule(instance)
    best_makespan = incumbent.makespan()
    best_entries = tuple(
        (e.task_index, e.start, e.first_proc, e.num_procs) for e in incumbent.entries
    )

    root = _Node(
        remaining=frozenset(range(n)),
        avail=tuple([0.0] * m),
        entries=(),
        makespan=0.0,
        last_start=0.0,
    )
    stack = [root]
    nodes = 0
    while stack:
        node = stack.pop()
        nodes += 1
        if nodes > max_nodes:
            raise SchedulingError(
                f"optimal_schedule exceeded the node budget ({max_nodes})"
            )
        if _lower_bound(instance, node) >= best_makespan - 1e-12:
            continue
        if not node.remaining:
            if node.makespan < best_makespan - 1e-12:
                best_makespan = node.makespan
                best_entries = node.entries
            continue
        avail = np.array(node.avail)
        start_candidates = sorted(
            {0.0, *node.avail} - {s for s in () }
        )
        start_candidates = [s for s in start_candidates if s >= node.last_start - 1e-12]
        for task_index in sorted(node.remaining):
            task = instance.tasks[task_index]
            for procs in range(1, m + 1):
                duration = task.time(procs)
                for start in start_candidates:
                    if max(node.makespan, start + duration) >= best_makespan - 1e-12:
                        continue
                    for first in range(m - procs + 1):
                        if np.any(avail[first : first + procs] > start + 1e-12):
                            continue
                        new_avail = avail.copy()
                        new_avail[first : first + procs] = start + duration
                        child = _Node(
                            remaining=node.remaining - {task_index},
                            avail=tuple(new_avail.tolist()),
                            entries=node.entries
                            + ((task_index, float(start), first, procs),),
                            makespan=max(node.makespan, start + duration),
                            last_start=float(start),
                        )
                        if _lower_bound(instance, child) < best_makespan - 1e-12:
                            stack.append(child)
    schedule = Schedule(instance, algorithm="optimal-bnb")
    for task_index, start, first, procs in best_entries:
        schedule.add(task_index, start, first, procs)
    schedule.validate()
    return schedule


def optimal_makespan(instance: Instance, **kwargs) -> float:
    """Makespan of :func:`optimal_schedule`."""
    return optimal_schedule(instance, **kwargs).makespan()


class BranchAndBoundOptimal(Scheduler):
    """Scheduler wrapper around :func:`optimal_schedule` (small instances only)."""

    name = "optimal-bnb"

    def __init__(self, **kwargs) -> None:
        self.kwargs = kwargs

    def schedule(self, instance: Instance) -> Schedule:
        return optimal_schedule(instance, **self.kwargs)
