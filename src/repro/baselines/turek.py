"""Two-phase baseline of Turek, Wolf & Yu (reference [18]).

Turek, Wolf & Yu showed that any ρ-approximation for the *non-malleable*
(rigid) scheduling problem can be turned into a ρ-approximation for the
malleable problem by trying a polynomial number of candidate allotments: it
suffices to consider, for every threshold value ``t`` among the ``n·m``
distinct execution times of the instance, the allotment that gives each task
the fewest processors achieving execution time at most ``t``, and to keep the
best schedule produced by the rigid-phase algorithm over all candidates.

:class:`TurekScheduler` implements exactly that enumeration with a pluggable
rigid phase (NFDH, FFDH or contiguous LPT list scheduling).  Its guarantee is
the guarantee of the rigid phase; with the shelf packers this is the
"guarantee 2–3 two-phase method" the paper improves upon.  The number of
candidates can be capped (``max_candidates``) for very large instances — the
thresholds are then sub-sampled evenly, which preserves the practical
behaviour while bounding the running time.
"""

from __future__ import annotations

import numpy as np

from ..model.allotment import Allotment
from ..model.instance import Instance
from ..model.schedule import Schedule
from ..scheduler import Scheduler
from .strip_packing import pack_with

__all__ = ["candidate_thresholds", "canonical_allotment_for_threshold", "TurekScheduler"]


def candidate_thresholds(instance: Instance, *, max_candidates: int | None = None) -> list[float]:
    """The distinct execution times of the instance, in increasing order.

    These are the only makespan thresholds at which the canonical allotment
    can change, hence the only candidates Turek, Wolf & Yu need to try.
    """
    values = sorted(
        {float(t) for task in instance.tasks for t in task.times}
    )
    if max_candidates is not None and len(values) > max_candidates:
        idx = np.linspace(0, len(values) - 1, max_candidates).round().astype(int)
        values = [values[i] for i in sorted(set(idx.tolist()))]
    return values


def canonical_allotment_for_threshold(
    instance: Instance, threshold: float
) -> Allotment | None:
    """Minimal-processor allotment meeting ``threshold``, or ``None``."""
    return Allotment.canonical(instance, threshold)


class TurekScheduler(Scheduler):
    """Two-phase malleable scheduler: threshold enumeration + rigid packing.

    Parameters
    ----------
    packer:
        Rigid-phase algorithm: ``"ffdh"`` (default), ``"nfdh"`` or ``"list"``.
    max_candidates:
        Optional cap on the number of thresholds tried.
    """

    def __init__(self, packer: str = "ffdh", *, max_candidates: int | None = 512) -> None:
        self.packer = packer
        self.max_candidates = max_candidates
        self.name = f"turek-{packer}"
        #: threshold that produced the best schedule at the last call.
        self.last_threshold: float | None = None

    def schedule(self, instance: Instance) -> Schedule:
        best: Schedule | None = None
        best_threshold: float | None = None
        for threshold in candidate_thresholds(
            instance, max_candidates=self.max_candidates
        ):
            allotment = canonical_allotment_for_threshold(instance, threshold)
            if allotment is None:
                continue
            schedule = pack_with(allotment, self.packer)
            if best is None or schedule.makespan() < best.makespan():
                best = schedule
                best_threshold = threshold
        assert best is not None  # the largest threshold always yields an allotment
        self.last_threshold = best_threshold
        best.validate()
        return best
