"""Ludwig's improved two-phase baseline (reference [12]).

Ludwig observed that the full threshold enumeration of Turek, Wolf & Yu is
unnecessary: because the rigid-phase guarantee is stated with respect to the
rigid lower bound ``L(A) = max(total_work(A)/m, max_time(A))``, it suffices
to hand the rigid phase the single allotment minimising that lower bound.
For monotonic tasks ``L`` can be minimised efficiently; combined with
Steinberg's absolute-2 strip packing this gave the guarantee-2 algorithm that
was the best practical result before the paper.

:class:`LudwigScheduler` implements the allotment selection exactly (the
minimiser of ``L`` over the canonical allotments of the distinct time
thresholds — for monotonic tasks the optimal allotment is canonical for some
threshold, because lowering a task's allotment below its canonical value for
the chosen threshold only raises ``max_time`` while raising it only increases
the work).  The rigid phase uses the shelf packers of
:mod:`repro.baselines.strip_packing` (see the substitution note there about
Steinberg's algorithm).
"""

from __future__ import annotations

from ..model.allotment import Allotment
from ..model.instance import Instance
from ..model.schedule import Schedule
from ..scheduler import Scheduler
from .strip_packing import pack_with
from .turek import candidate_thresholds

__all__ = ["select_min_lower_bound_allotment", "LudwigScheduler"]


def select_min_lower_bound_allotment(
    instance: Instance, *, max_candidates: int | None = None
) -> tuple[Allotment, float]:
    """The canonical allotment minimising ``max(work/m, max_time)``.

    Returns the allotment and its lower-bound value.  The search scans the
    distinct execution-time thresholds in increasing order; the work of the
    canonical allotment is non-increasing in the threshold while the
    ``max_time`` term is non-decreasing, so the minimum of the max of the two
    is attained at one of the scanned thresholds.
    """
    best_allotment: Allotment | None = None
    best_value = float("inf")
    for threshold in candidate_thresholds(instance, max_candidates=max_candidates):
        allotment = Allotment.canonical(instance, threshold)
        if allotment is None:
            continue
        value = allotment.lower_bound()
        if value < best_value:
            best_value = value
            best_allotment = allotment
    assert best_allotment is not None
    return best_allotment, best_value


class LudwigScheduler(Scheduler):
    """Guarantee-2-style two-phase baseline: one allotment + shelf packing."""

    def __init__(self, packer: str = "ffdh", *, max_candidates: int | None = None) -> None:
        self.packer = packer
        self.max_candidates = max_candidates
        self.name = f"ludwig-{packer}"
        #: lower bound of the selected allotment at the last call.
        self.last_lower_bound: float | None = None

    def schedule(self, instance: Instance) -> Schedule:
        allotment, value = select_min_lower_bound_allotment(
            instance, max_candidates=self.max_candidates
        )
        self.last_lower_bound = value
        schedule = pack_with(allotment, self.packer)
        schedule.validate()
        return schedule
