"""Graham list scheduling and LPT for rigid (allotted) tasks.

These are the classical building blocks referenced in Section 3 of the
paper: Graham's list scheduling [8] and its LPT (longest processing time
first) priority rule.  They operate on a rigid instance — an
:class:`~repro.model.allotment.Allotment` — and are used both as the second
phase of the two-phase baselines (:mod:`repro.baselines.turek`,
:mod:`repro.baselines.ludwig`) and as stand-alone comparison points.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.list_scheduling import contiguous_list_schedule
from ..model.allotment import Allotment
from ..model.instance import Instance
from ..model.schedule import Schedule
from ..scheduler import Scheduler

__all__ = [
    "rigid_list_schedule",
    "lpt_order",
    "largest_width_order",
    "RigidLPTScheduler",
]


def lpt_order(allotment: Allotment) -> list[int]:
    """Task indices by non-increasing rigid execution time (LPT priority)."""
    times = allotment.times()
    return sorted(range(len(allotment)), key=lambda i: (-times[i], i))


def largest_width_order(allotment: Allotment) -> list[int]:
    """Task indices by non-increasing processor requirement, ties by LPT."""
    times = allotment.times()
    return sorted(
        range(len(allotment)), key=lambda i: (-allotment[i], -times[i], i)
    )


def rigid_list_schedule(
    allotment: Allotment,
    *,
    order: Sequence[int] | None = None,
    algorithm: str = "rigid-list",
) -> Schedule:
    """Contiguous list schedule of a rigid instance in the given priority order.

    Defaults to the LPT order.  Each task is placed on the contiguous block
    of processors with the earliest availability (Graham's rule restricted to
    contiguous blocks), which yields the classical ``2 − 1/m`` behaviour for
    sequential tasks and the resource-constrained bound of Garey & Johnson
    for parallel ones.
    """
    chosen = list(order) if order is not None else lpt_order(allotment)
    schedule = contiguous_list_schedule(allotment, chosen, algorithm=algorithm)
    schedule.validate()
    return schedule


class RigidLPTScheduler(Scheduler):
    """Malleable scheduler baseline: fix an allotment rule, then LPT-list it.

    The allotment rule assigns every task a constant number of processors
    (``procs_per_task``, clipped to the task's profile); the induced rigid
    instance is then list-scheduled with LPT priority.  With
    ``procs_per_task=1`` this is plain sequential LPT; larger values give the
    naive "everybody gets k processors" policies that practitioners often
    start from, providing an instructive baseline in the comparison tables.
    """

    def __init__(self, procs_per_task: int = 1) -> None:
        if procs_per_task < 1:
            raise ValueError("procs_per_task must be >= 1")
        self.procs_per_task = procs_per_task
        self.name = f"lpt-{procs_per_task}proc"

    def schedule(self, instance: Instance) -> Schedule:
        procs = np.full(
            instance.num_tasks,
            min(self.procs_per_task, instance.num_procs),
            dtype=int,
        )
        allotment = Allotment(instance, procs)
        return rigid_list_schedule(allotment, algorithm=self.name)
