"""Makespan lower bounds for malleable-task instances.

The approximation ratios reported in ``EXPERIMENTS.md`` are measured against
these lower bounds (and, on small instances, against the exact optimum from
:mod:`repro.baselines.optimal`).  Three bounds are provided, each valid even
against preemptive and non-contiguous optimal schedules:

``trivial_lower_bound``
    ``max(Σ_i t_i(1) / m, max_i t_i(m))`` — the classical area bound (work is
    minimised on one processor by monotonicity) combined with the longest
    unavoidable task.

``canonical_area_lower_bound``
    The tightest value ``d`` that survives the paper's Property 2 test: if a
    schedule of length ``d`` exists then every task admits γ_i(d) and
    ``Σ_i W_i(γ_i(d)) <= m·d``.  The smallest ``d`` satisfying both is a
    valid lower bound and is found by dichotomic search; it dominates the
    trivial bound.

``squashed_area_lower_bound``
    The fractional "squashed area" bound used by Turek, Wolf & Yu: for each
    task take the work of the allotment minimising ``max(t_i(p), W_i(p)/m)``;
    kept mainly for comparison in the experiment tables.
"""

from __future__ import annotations

import numpy as np

from .model.instance import Instance
from .model.task import EPS

__all__ = [
    "trivial_lower_bound",
    "canonical_area_lower_bound",
    "squashed_area_lower_bound",
    "best_lower_bound",
]


def trivial_lower_bound(instance: Instance) -> float:
    """``max(area bound, longest minimal task)``."""
    return instance.lower_bound()


def _property2_feasible(instance: Instance, deadline: float) -> bool:
    """Whether the guess ``deadline`` survives the Property 2 test."""
    work = instance.canonical_work(deadline)
    if work is None:
        return False
    return work <= instance.num_procs * deadline + EPS


def canonical_area_lower_bound(
    instance: Instance, *, rel_tol: float = 1e-9, max_iter: int = 200
) -> float:
    """Largest guess proved infeasible by the Property 2 test (dichotomic search).

    The returned value ``lo`` is certified infeasible (or equals the trivial
    lower bound when that one already survives the test), hence the optimum
    is at least ``lo`` and the value is a safe makespan lower bound — it
    never exceeds the optimum, unlike the upper end of the search interval
    which could overshoot by the search tolerance.
    """
    lo = trivial_lower_bound(instance)
    if _property2_feasible(instance, lo):
        return lo
    hi = lo
    # Exponential search for a feasible upper end.  Σ t_i(1) always passes
    # the test (the canonical allotment is then component-wise minimal and
    # its work is at most Σ t_i(1) <= m·d), so the loop terminates.
    ceiling = max(instance.upper_bound(), lo)
    for _ in range(max_iter):
        hi = min(hi * 2.0, ceiling)
        if _property2_feasible(instance, hi) or hi >= ceiling:
            break
    for _ in range(max_iter):
        if hi - lo <= rel_tol * max(hi, 1e-12):
            break
        mid = 0.5 * (lo + hi)
        if _property2_feasible(instance, mid):
            hi = mid
        else:
            lo = mid
    return lo


def squashed_area_lower_bound(instance: Instance) -> float:
    """Turek-style squashed-area bound (vectorized).

    Three valid ingredients are combined by ``max``:

    * the classical area bound ``Σ_i t_i(1) / m`` (work is minimised on one
      processor by monotonicity);
    * for every task, ``min_p max(t_i(p), W_i(p)/m)``: whatever allotment
      ``p*`` the optimal schedule uses, ``t_i(p*) ≤ OPT`` and
      ``W_i(p*)/m ≤ (total work)/m ≤ OPT``, so the minimum over ``p`` is a
      valid per-task lower bound;
    * the longest unavoidable duration ``max_i t_i(m)``.

    A previous revision promised to additionally combine the *averaged area
    of the per-task minimisers*, ``Σ_i W_i(p̂_i)/m`` where ``p̂_i`` attains
    the per-task minimum.  That combination is **not** a valid lower bound:
    the optimal schedule may run a task on fewer processors than ``p̂_i``
    with strictly less work, so the sum can exceed the optimum (see the
    regression test ``test_lower_bounds.py::test_squashed_minimiser_area_
    combination_is_unsound`` for a concrete two-task counterexample).  The
    accumulation was dead code and has been removed.
    """
    m = instance.num_procs
    engine = instance.engine
    # value[i, p-1] = max(t_i(p), W_i(p)/m); its row-wise minimum is the
    # per-task squashed bound.
    value = np.maximum(engine.times_matrix, engine.works_matrix / m)
    per_task_bound = value.min(axis=1)
    area = instance.total_sequential_work() / m
    return float(
        max(area, per_task_bound.max(), instance.max_min_time())
    )


def best_lower_bound(instance: Instance) -> float:
    """The strongest lower bound implemented (used by the experiments)."""
    return max(
        trivial_lower_bound(instance),
        canonical_area_lower_bound(instance),
        squashed_area_lower_bound(instance),
    )
