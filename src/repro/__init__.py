"""repro — reproduction of *Efficient Approximation Algorithms for Scheduling Malleable Tasks*.

Mounié, Rapine & Trystram, SPAA 1999.  The package provides:

* a malleable-task model with monotonicity validation (:mod:`repro.model`),
* the paper's √3-approximation — dual approximation, list algorithms and the
  knapsack-based two-shelf allotment selection (:mod:`repro.core`),
* the baselines the paper compares against — Turek/Ludwig two-phase methods,
  strip packing, LPT, gang and an exact branch-and-bound optimum
  (:mod:`repro.baselines`),
* synthetic workloads including the motivating ocean-circulation application
  (:mod:`repro.workloads`),
* a discrete-event machine simulator (:mod:`repro.sim`), metrics and an
  experiment harness (:mod:`repro.analysis`), and a CLI (``python -m repro``).

Quickstart
----------
>>> from repro import MRTScheduler, mixed_instance
>>> instance = mixed_instance(num_tasks=20, num_procs=16, seed=0)
>>> schedule = MRTScheduler().schedule(instance)
>>> schedule.makespan() > 0
True
"""

from __future__ import annotations

from .exceptions import (
    InfeasibleError,
    InvalidScheduleError,
    ModelError,
    MonotonicityError,
    ReproError,
    SchedulingError,
    SearchError,
)
from .model import (
    Allotment,
    AmdahlSpeedup,
    CommunicationOverheadSpeedup,
    Instance,
    MalleableTask,
    NoSpeedup,
    PerfectSpeedup,
    PowerLawSpeedup,
    Schedule,
    ScheduledTask,
    SpeedupModel,
    TabulatedSpeedup,
    ThresholdSpeedup,
)
from .scheduler import Scheduler
from .core import (
    CanonicalListScheduler,
    MalleableListScheduler,
    MRTDual,
    MRTResult,
    MRTScheduler,
    TwoShelfDual,
    dual_search,
    theory,
)
from .baselines import (
    BranchAndBoundOptimal,
    GangScheduler,
    LudwigScheduler,
    SequentialLPTScheduler,
    TurekScheduler,
)
from .lower_bounds import (
    best_lower_bound,
    canonical_area_lower_bound,
    squashed_area_lower_bound,
    trivial_lower_bound,
)
from .workloads import (
    heavy_tailed_instance,
    make_trace,
    make_workload,
    mixed_instance,
    ocean_instance,
    random_monotonic_instance,
    rigid_heavy_instance,
    uniform_instance,
)
from .online import EpochRescheduler, ReplayResult
from .analysis import (
    evaluate_schedule,
    gantt_chart,
    run_comparison,
    sweep_workloads,
)
from .sim import OnlineListSimulator, simulate_and_check, simulate_schedule

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "ModelError",
    "MonotonicityError",
    "InvalidScheduleError",
    "InfeasibleError",
    "SchedulingError",
    "SearchError",
    # model
    "MalleableTask",
    "Instance",
    "Allotment",
    "Schedule",
    "ScheduledTask",
    "SpeedupModel",
    "AmdahlSpeedup",
    "PowerLawSpeedup",
    "CommunicationOverheadSpeedup",
    "ThresholdSpeedup",
    "TabulatedSpeedup",
    "PerfectSpeedup",
    "NoSpeedup",
    # algorithms
    "Scheduler",
    "MRTScheduler",
    "MRTDual",
    "MRTResult",
    "MalleableListScheduler",
    "CanonicalListScheduler",
    "TwoShelfDual",
    "dual_search",
    "theory",
    # baselines
    "TurekScheduler",
    "LudwigScheduler",
    "SequentialLPTScheduler",
    "GangScheduler",
    "BranchAndBoundOptimal",
    # bounds
    "trivial_lower_bound",
    "canonical_area_lower_bound",
    "squashed_area_lower_bound",
    "best_lower_bound",
    # workloads
    "uniform_instance",
    "mixed_instance",
    "heavy_tailed_instance",
    "rigid_heavy_instance",
    "random_monotonic_instance",
    "make_workload",
    "make_trace",
    "ocean_instance",
    # online replay
    "EpochRescheduler",
    "ReplayResult",
    # analysis & simulation
    "evaluate_schedule",
    "gantt_chart",
    "run_comparison",
    "sweep_workloads",
    "simulate_schedule",
    "simulate_and_check",
    "OnlineListSimulator",
]
