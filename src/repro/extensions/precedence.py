"""Extension: malleable tasks with precedence constraints.

The paper's conclusion names the scheduling of *precedence graphs* of
malleable tasks as the natural continuation of the work, citing Prasanna &
Musicus for the continuous case and mentioning ongoing work on tree-shaped
graphs arising in the ocean-circulation application.  This module implements
that extension as a practical heuristic built from the same ingredients as
the independent-task algorithm:

* the precedence graph is a DAG over the instance's tasks (any
  :mod:`networkx` ``DiGraph`` whose nodes are task indices);
* the **allotment** of each task is chosen canonically for a guessed
  deadline ``d`` scaled by the task's depth in the critical path (the same
  "minimal processors meeting a target" rule as Section 3);
* the **scheduling** phase is an event-driven contiguous list scheduler that
  only releases a task once all its predecessors completed, prioritising
  tasks on the *critical path* (longest remaining bottom-level), and the
  guess is driven by the usual dichotomic search against precedence-aware
  lower bounds.

The heuristic carries no approximation guarantee (none is claimed by the
paper either); the tests verify feasibility (precedence respected, machine
constraints), the lower-bound sanity and the behaviour on the tree-shaped
workloads the paper mentions.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..exceptions import ModelError, SchedulingError
from ..model.allotment import Allotment
from ..model.instance import Instance
from ..model.schedule import Schedule
from ..scheduler import Scheduler

__all__ = [
    "PrecedenceInstance",
    "critical_path_lower_bound",
    "precedence_list_schedule",
    "PrecedenceScheduler",
    "random_task_tree",
]


@dataclass(frozen=True)
class PrecedenceInstance:
    """A malleable instance plus a precedence DAG over its task indices."""

    instance: Instance
    graph: "nx.DiGraph"

    def __post_init__(self) -> None:
        n = self.instance.num_tasks
        for node in self.graph.nodes:
            if not (isinstance(node, (int, np.integer)) and 0 <= int(node) < n):
                raise ModelError(f"graph node {node!r} is not a valid task index")
        if not nx.is_directed_acyclic_graph(self.graph):
            raise ModelError("the precedence graph must be a DAG")

    @property
    def num_tasks(self) -> int:
        """Number of tasks of the underlying instance."""
        return self.instance.num_tasks

    def predecessors(self, task: int) -> list[int]:
        """Direct predecessors of a task (empty when the task is a source)."""
        if task not in self.graph:
            return []
        return [int(p) for p in self.graph.predecessors(task)]

    def bottom_levels(self, allotment: Allotment) -> np.ndarray:
        """Length of the longest downward path starting at each task.

        Computed with the rigid execution times induced by ``allotment``;
        this is the classical critical-path priority used by the list phase.
        """
        times = allotment.times()
        levels = np.array(times, dtype=float)
        order = list(nx.topological_sort(self.graph))
        for node in reversed(order):
            succ = list(self.graph.successors(node))
            if succ:
                levels[int(node)] = times[int(node)] + max(
                    levels[int(s)] for s in succ
                )
        return levels


def critical_path_lower_bound(pinstance: PrecedenceInstance) -> float:
    """Makespan lower bound: area bound and best-case critical path.

    Every task on a chain must run after its predecessors, each taking at
    least its minimal execution time ``t_i(m)``; the longest such chain is a
    valid lower bound, as is the sequential-work area bound.
    """
    instance = pinstance.instance
    area = instance.total_sequential_work() / instance.num_procs
    best_case = np.array([task.min_time() for task in instance.tasks])
    chain = best_case.copy()
    for node in reversed(list(nx.topological_sort(pinstance.graph))):
        succ = list(pinstance.graph.successors(node))
        if succ:
            chain[int(node)] = best_case[int(node)] + max(chain[int(s)] for s in succ)
    longest_chain = float(chain.max()) if chain.size else 0.0
    return max(area, longest_chain, instance.max_min_time())


def precedence_list_schedule(
    pinstance: PrecedenceInstance, allotment: Allotment
) -> Schedule:
    """Event-driven contiguous list scheduling honouring the precedence DAG.

    Ready tasks (all predecessors finished) are started in order of
    non-increasing bottom level whenever a contiguous block of the required
    width is free; time advances to the next completion otherwise.
    """
    instance = pinstance.instance
    m = instance.num_procs
    times = allotment.times()
    levels = pinstance.bottom_levels(allotment)
    indegree = {
        i: len(pinstance.predecessors(i)) for i in range(instance.num_tasks)
    }
    finished: set[int] = set()
    running: list[tuple[float, int, int, int]] = []  # (end, task, first, width)
    free = np.ones(m, dtype=bool)
    clock = 0.0
    schedule = Schedule(instance, algorithm="precedence-list")
    pending = set(range(instance.num_tasks))
    guard = 0
    while pending or running:
        guard += 1
        if guard > 20 * (instance.num_tasks + 1) * (m + 1):
            raise SchedulingError("precedence list scheduling failed to make progress")
        ready = sorted(
            (i for i in pending if indegree[i] == 0),
            key=lambda i: (-levels[i], i),
        )
        started = False
        for task in ready:
            width = allotment[task]
            # leftmost contiguous free block of the required width
            run = 0
            block = None
            for proc in range(m):
                run = run + 1 if free[proc] else 0
                if run >= width:
                    block = proc - width + 1
                    break
            if block is None:
                continue
            schedule.add(task, clock, block, width)
            free[block : block + width] = False
            running.append((clock + times[task], task, block, width))
            pending.discard(task)
            started = True
        if started:
            continue
        if not running:
            raise SchedulingError(
                "no task can start: a ready task is wider than the machine"
            )
        running.sort()
        end, task, block, width = running.pop(0)
        clock = max(clock, end)
        free[block : block + width] = True
        finished.add(task)
        for succ in (
            pinstance.graph.successors(task) if task in pinstance.graph else []
        ):
            indegree[int(succ)] -= 1
        # release the other tasks completing at the same instant
        still_running = []
        for item in running:
            if item[0] <= clock + 1e-12:
                _, t2, b2, w2 = item
                free[b2 : b2 + w2] = True
                finished.add(t2)
                for succ in (
                    pinstance.graph.successors(t2) if t2 in pinstance.graph else []
                ):
                    indegree[int(succ)] -= 1
            else:
                still_running.append(item)
        running = still_running
    schedule.validate()
    return schedule


class PrecedenceScheduler(Scheduler):
    """Critical-path heuristic for malleable task graphs.

    For each guessed deadline ``d`` (dichotomic search between the
    precedence-aware lower bound and the fully sequential chain), every task
    is allotted the minimal number of processors whose execution time is at
    most ``d / depth_fraction`` where ``depth_fraction`` spreads the deadline
    over the task's critical-path depth; the resulting rigid DAG is scheduled
    with :func:`precedence_list_schedule` and the best schedule found is
    returned.
    """

    name = "precedence-cp"

    def __init__(self, *, num_guesses: int = 12) -> None:
        if num_guesses < 1:
            raise ModelError("num_guesses must be >= 1")
        self.num_guesses = num_guesses

    def _allotment_for_guess(
        self, pinstance: PrecedenceInstance, guess: float
    ) -> Allotment:
        instance = pinstance.instance
        # depth of each task along the critical path (1-based)
        depth = np.ones(instance.num_tasks)
        for node in nx.topological_sort(pinstance.graph):
            preds = pinstance.predecessors(int(node))
            if preds:
                depth[int(node)] = 1 + max(depth[p] for p in preds)
        max_depth = float(depth.max()) if depth.size else 1.0
        # Spread the deadline evenly over the critical path: every task should
        # fit inside its 1/max_depth slice of the guess (the canonical rule of
        # Section 3 applied per level of the graph).
        slice_target = guess / max_depth
        procs = []
        for task in instance.tasks:
            p = task.canonical_procs(slice_target)
            if p is None:
                # The slice is too ambitious for this task: fall back to the
                # full guess, then to the whole machine.
                p = task.canonical_procs(guess) or instance.num_procs
            procs.append(p)
        return Allotment(instance, procs)

    def schedule_graph(self, pinstance: PrecedenceInstance) -> Schedule:
        """Schedule a :class:`PrecedenceInstance`; returns the best schedule found."""
        lb = critical_path_lower_bound(pinstance)
        ub = pinstance.instance.total_sequential_work()
        best: Schedule | None = None
        for guess in np.geomspace(max(lb, 1e-9), max(ub, lb * 1.01), self.num_guesses):
            allotment = self._allotment_for_guess(pinstance, float(guess))
            candidate = precedence_list_schedule(pinstance, allotment)
            if best is None or candidate.makespan() < best.makespan():
                best = candidate
        assert best is not None
        return best

    def schedule(self, instance: Instance) -> Schedule:
        """Scheduler interface: an instance without edges (independent tasks)."""
        empty = nx.DiGraph()
        empty.add_nodes_from(range(instance.num_tasks))
        return self.schedule_graph(PrecedenceInstance(instance, empty))


def random_task_tree(
    instance: Instance,
    *,
    seed: int | np.random.Generator | None = None,
    children: int = 2,
) -> PrecedenceInstance:
    """An in-tree precedence graph over the instance's tasks.

    Task 0 is the root (final reduction); every other task points to a parent
    with a smaller index, each parent receiving at most ``children`` children
    on average — the tree-shaped structure of the adaptive ocean application
    mentioned in the paper's conclusion.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(instance.num_tasks))
    for i in range(1, instance.num_tasks):
        parent = int(rng.integers(0, max(1, min(i, 1 + i // children))))
        graph.add_edge(i, parent)  # child must finish before the parent runs
    return PrecedenceInstance(instance, graph)
