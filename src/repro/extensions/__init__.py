"""Extensions beyond the paper's core result (its stated future work)."""

from .precedence import (
    PrecedenceInstance,
    PrecedenceScheduler,
    critical_path_lower_bound,
    precedence_list_schedule,
    random_task_tree,
)

__all__ = [
    "PrecedenceInstance",
    "PrecedenceScheduler",
    "critical_path_lower_bound",
    "precedence_list_schedule",
    "random_task_tree",
]
