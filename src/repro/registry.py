"""Central algorithm registry shared by the CLI and the service layer.

Maps the public algorithm names to their :class:`~repro.scheduler.Scheduler`
factories.  The CLI (``python -m repro schedule --algorithm NAME``) and the
scheduling service (``POST /schedule`` with ``{"algorithm": NAME}``) resolve
names through this module so the two entry points can never drift apart.

Registering an additional scheduler (e.g. a test double) is just a dict
insert: ``ALGORITHMS["mine"] = MyScheduler``.
"""

from __future__ import annotations

from .baselines.gang import GangScheduler
from .baselines.ludwig import LudwigScheduler
from .baselines.sequential import SequentialLPTScheduler
from .baselines.turek import TurekScheduler
from .core.mrt import MRTScheduler
from .exceptions import ModelError
from .scheduler import Scheduler

__all__ = ["ALGORITHMS", "ONLINE_KERNELS", "make_rescheduler", "make_scheduler"]

#: Algorithm name -> scheduler factory (callable returning a Scheduler).
ALGORITHMS: dict[str, type | object] = {
    "mrt": MRTScheduler,
    "ludwig": LudwigScheduler,
    "turek": TurekScheduler,
    "sequential": SequentialLPTScheduler,
    "gang": GangScheduler,
}

#: Online replay kernels (``python -m repro replay --kernel`` and the
#: ``"kernel"`` key of ``POST /replay``).  ``"barrier"`` is the epoch
#: rescheduler of :mod:`repro.online.epoch` (a batch owns the whole machine
#: until it drains); ``"availability"`` schedules into the remaining
#: capacity (:mod:`repro.online.availability`).  Factories are resolved
#: lazily by :func:`make_rescheduler` because the online layer imports this
#: module for its batch kernels.
ONLINE_KERNELS: tuple[str, ...] = ("availability", "barrier")


def make_scheduler(name: str, params: dict | None = None) -> Scheduler:
    """Instantiate the scheduler registered under ``name``.

    ``params`` are passed to the factory as keyword arguments (e.g.
    ``{"eps": 1e-2}`` for ``mrt``).  Raises
    :class:`~repro.exceptions.ModelError` on an unknown name or on keyword
    arguments the factory rejects, so service callers get a clean 400 instead
    of a stack trace.
    """
    factory = ALGORITHMS.get(name)
    if factory is None:
        raise ModelError(
            f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
        )
    try:
        return factory(**(params or {}))  # type: ignore[operator]
    except TypeError as exc:
        raise ModelError(f"invalid parameters for algorithm {name!r}: {exc}") from exc


def make_rescheduler(
    kernel: str = "barrier",
    algorithm: str = "mrt",
    params: dict | None = None,
    *,
    quantum: float | None = None,
    plan_cache=None,
):
    """Instantiate the online replay kernel registered under ``kernel``.

    ``algorithm``/``params``/``quantum``/``plan_cache`` are forwarded to the
    kernel's constructor (both kernels share the signature; ``plan_cache``
    is an optional :class:`~repro.online.plancache.PlanCache` memoising
    per-epoch batch plans).  Raises
    :class:`~repro.exceptions.ModelError` on an unknown kernel name, listing
    the valid choices — the service maps that to a clean 400.
    """
    # Lazy import: repro.online imports this module for its batch kernels.
    from .online.availability import AvailabilityRescheduler
    from .online.epoch import EpochRescheduler

    # Keyed by each class's own ``kernel`` attribute so the mapping cannot
    # drift from the classes; a conformance test pins it against
    # ONLINE_KERNELS (the import-time name list the CLI builds choices from).
    factories = {
        cls.kernel: cls for cls in (AvailabilityRescheduler, EpochRescheduler)
    }
    factory = factories.get(kernel)
    if factory is None:
        raise ModelError(
            f"unknown online kernel {kernel!r}; choose from {sorted(factories)}"
        )
    return factory(algorithm, params, quantum=quantum, plan_cache=plan_cache)
