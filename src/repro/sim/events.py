"""Event types and the time-comparison helper of the machine simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["EventKind", "Event", "times_close"]


def times_close(a: float, b: float, *, tol: float = 1e-9) -> bool:
    """True when two simulated timestamps coincide within tolerance.

    The one sanctioned way to test time coincidence (lint rule RL001 flags
    naked ``==``/``!=`` between time expressions): stitched online
    timelines shift every epoch's entries by a float epoch start, so two
    logically equal timestamps routinely differ by an ulp.  The tolerance
    is scale-aware — ``tol * max(1, |a|, |b|)`` — because an absolute
    epsilon underflows the float64 ulp once timelines grow past ``1/tol``.
    """
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


class EventKind(enum.Enum):
    """Kind of a simulation event."""

    TASK_START = "start"
    TASK_FINISH = "finish"


@dataclass(frozen=True, order=True)
class Event:
    """A timestamped simulation event.

    Events are ordered by time; at equal times, finish events are processed
    before start events (``priority`` 0 vs 1) so that a task may start
    exactly when another one releases its processors.
    """

    time: float
    priority: int
    sequence: int
    kind: EventKind = field(compare=False)
    task_index: int = field(compare=False)
    first_proc: int = field(compare=False)
    num_procs: int = field(compare=False)

    @property
    def procs(self) -> range:
        """The processors touched by the event."""
        return range(self.first_proc, self.first_proc + self.num_procs)
