"""Event types of the discrete-event machine simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["EventKind", "Event"]


class EventKind(enum.Enum):
    """Kind of a simulation event."""

    TASK_START = "start"
    TASK_FINISH = "finish"


@dataclass(frozen=True, order=True)
class Event:
    """A timestamped simulation event.

    Events are ordered by time; at equal times, finish events are processed
    before start events (``priority`` 0 vs 1) so that a task may start
    exactly when another one releases its processors.
    """

    time: float
    priority: int
    sequence: int
    kind: EventKind = field(compare=False)
    task_index: int = field(compare=False)
    first_proc: int = field(compare=False)
    num_procs: int = field(compare=False)

    @property
    def procs(self) -> range:
        """The processors touched by the event."""
        return range(self.first_proc, self.first_proc + self.num_procs)
