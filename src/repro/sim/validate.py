"""End-to-end schedule validation through simulation."""

from __future__ import annotations

from ..exceptions import InvalidScheduleError
from ..model.schedule import Schedule
from .engine import SimulationResult, simulate_schedule

__all__ = ["simulate_and_check"]


def simulate_and_check(schedule: Schedule, *, tol: float = 1e-6) -> SimulationResult:
    """Validate statically, execute on the simulator and cross-check the makespan.

    Returns the :class:`~repro.sim.engine.SimulationResult`; raises
    :class:`~repro.exceptions.InvalidScheduleError` when the static and
    simulated views disagree.
    """
    schedule.validate()
    result = simulate_schedule(schedule)
    static = schedule.makespan()
    if abs(result.makespan - static) > tol * max(1.0, static):
        raise InvalidScheduleError(
            f"simulated makespan {result.makespan:.6g} differs from the static "
            f"makespan {static:.6g}"
        )
    return result
