"""End-to-end schedule validation through simulation."""

from __future__ import annotations

from ..exceptions import InvalidScheduleError
from ..model.schedule import Schedule
from .engine import SimulationResult, simulate_schedule

__all__ = ["simulate_and_check"]


def simulate_and_check(
    schedule: Schedule, *, tol: float = 1e-6, respect_release: bool = False
) -> SimulationResult:
    """Validate statically, execute on the simulator and cross-check the makespan.

    Returns the :class:`~repro.sim.engine.SimulationResult`; raises
    :class:`~repro.exceptions.InvalidScheduleError` when the static and
    simulated views disagree.  The error pinpoints *where* they diverge: the
    per-processor finish times of the static schedule are compared against
    the simulated ones and every disagreeing processor is reported with both
    times (capped at the first three), falling back to the global makespans
    when the divergence is not attributable to a single processor.

    ``respect_release=True`` additionally enforces the online-timeline
    constraint that no task starts before its release date — the validation
    mode used for stitched epoch-rescheduling timelines
    (:mod:`repro.online`).
    """
    schedule.validate(respect_release=respect_release)
    result = simulate_schedule(schedule)
    static = schedule.makespan()
    if abs(result.makespan - static) > tol * max(1.0, static):
        static_finish = schedule.processor_finish_times()
        detail = ""
        if result.finish_time is not None:
            mismatches = [
                (proc, float(static_finish[proc]), float(result.finish_time[proc]))
                for proc in range(len(static_finish))
                if abs(static_finish[proc] - result.finish_time[proc])
                > tol * max(1.0, static)
            ]
            if mismatches:
                shown = "; ".join(
                    f"processor {proc}: static finish {s:.6g} vs simulated {r:.6g}"
                    for proc, s, r in mismatches[:3]
                )
                extra = len(mismatches) - 3
                detail = f" ({shown}" + (f"; +{extra} more)" if extra > 0 else ")")
        raise InvalidScheduleError(
            f"simulated makespan {result.makespan:.6g} differs from the static "
            f"makespan {static:.6g}{detail}"
        )
    return result
