"""Discrete-event simulator of an ``m``-processor machine.

Two entry points:

* :func:`simulate_schedule` *executes* a static :class:`~repro.model.schedule.Schedule`
  event by event, checking dynamically that no processor is ever claimed by
  two tasks and reporting per-processor busy times, utilisation and the
  simulated makespan — an independent end-to-end re-validation of any
  scheduler's output, used by the integration tests.
* :class:`OnlineListSimulator` runs an *online* contiguous list-scheduling
  policy for a rigid allotment: tasks wait in a priority queue and are
  started, in priority order, whenever a contiguous block of free processors
  of the required width exists.  Unlike the static list scheduler of
  :mod:`repro.core.list_scheduling` it naturally back-fills freed processors,
  providing the "what a runtime system would actually do" comparison point
  used in the examples.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import InvalidScheduleError, SchedulingError
from ..model.allotment import Allotment
from ..model.instance import Instance
from ..model.schedule import Schedule
from .events import Event, EventKind, times_close

__all__ = ["SimulationResult", "simulate_schedule", "OnlineListSimulator"]


@dataclass
class SimulationResult:
    """Outcome of executing a schedule on the simulated machine."""

    makespan: float
    events: list[Event] = field(default_factory=list)
    busy_time: np.ndarray | None = None
    num_procs: int = 0
    #: Simulated completion time of the last task on each processor (0.0 for
    #: processors that never ran a task).  Lets validators pinpoint *where*
    #: the simulated execution diverges from a schedule's static view.
    finish_time: np.ndarray | None = None

    @property
    def utilization(self) -> float:
        """Average processor utilisation over the simulated horizon."""
        if self.busy_time is None or self.makespan <= 0 or self.num_procs == 0:
            return 0.0
        return float(self.busy_time.sum() / (self.num_procs * self.makespan))

    def per_processor_utilization(self) -> np.ndarray:
        """Utilisation of each processor individually."""
        if self.busy_time is None or self.makespan <= 0:
            return np.zeros(self.num_procs)
        return self.busy_time / self.makespan

    def busy_until(self, at: float = 0.0) -> np.ndarray:
        """Per-processor availability as *simulated*: when each processor frees.

        The dynamic counterpart of
        :meth:`repro.model.schedule.Schedule.busy_until`: derived from the
        simulated per-processor finish times, floored at ``at``.  The two
        views agree on every valid schedule (the availability property tests
        pin this), so divergence signals the same class of bugs
        :func:`simulate_and_check` hunts.
        """
        if self.finish_time is None:
            return np.full(self.num_procs, float(at))
        return np.maximum(self.finish_time, float(at))


def simulate_schedule(schedule: Schedule, *, tol: float = 1e-9) -> SimulationResult:
    """Execute a static schedule and re-check it dynamically.

    Raises :class:`~repro.exceptions.InvalidScheduleError` if a task starts
    on a processor that is still busy.  A start that collides with an owner
    finishing within ``tol`` of it is treated as starting *after* that
    finish: float drift (e.g. the per-epoch shifts of a stitched online
    timeline) can order a start one ulp before the finish it logically
    abuts, and that must not read as an overlap.
    """
    instance = schedule.instance
    m = instance.num_procs
    events: list[Event] = []
    seq = 0
    for entry in schedule.entries:
        events.append(
            Event(
                time=entry.start,
                priority=1,
                sequence=seq,
                kind=EventKind.TASK_START,
                task_index=entry.task_index,
                first_proc=entry.first_proc,
                num_procs=entry.num_procs,
            )
        )
        seq += 1
        events.append(
            Event(
                time=entry.end,
                priority=0,
                sequence=seq,
                kind=EventKind.TASK_FINISH,
                task_index=entry.task_index,
                first_proc=entry.first_proc,
                num_procs=entry.num_procs,
            )
        )
        seq += 1
    events.sort()
    owner = np.full(m, -1, dtype=int)  # task currently running on each processor
    owner_end = np.zeros(m)  # scheduled finish time of the current owner
    #: (task, proc) pairs released by a within-``tol`` start before their own
    #: finish event arrived; the finish event then just clears the record.
    early_released: set[tuple[int, int]] = set()
    busy = np.zeros(m)
    finish = np.zeros(m)
    makespan = 0.0
    processed: list[Event] = []
    for event in events:
        if event.kind is EventKind.TASK_FINISH:
            for proc in event.procs:
                if owner[proc] == event.task_index:
                    owner[proc] = -1
                elif (event.task_index, proc) in early_released:
                    early_released.discard((event.task_index, proc))
                else:
                    raise InvalidScheduleError(
                        f"finish event of task {event.task_index} on processor {proc} "
                        f"which it does not own"
                    )
                finish[proc] = max(finish[proc], event.time)
            makespan = max(makespan, event.time)
        else:
            for proc in event.procs:
                if owner[proc] != -1:
                    if owner_end[proc] <= event.time or times_close(
                        owner_end[proc], event.time, tol=tol
                    ):
                        # The owner finishes within tolerance of this start:
                        # release it now, let its finish event clear the record.
                        early_released.add((int(owner[proc]), proc))
                        owner[proc] = -1
                    else:
                        other = instance.tasks[int(owner[proc])].name
                        name = instance.tasks[event.task_index].name
                        raise InvalidScheduleError(
                            f"task {name!r} starts on processor {proc} while {other!r} "
                            f"is still running"
                        )
                owner[proc] = event.task_index
            duration = instance.tasks[event.task_index].time(event.num_procs)
            block = slice(event.first_proc, event.first_proc + event.num_procs)
            owner_end[block] = event.time + duration
            busy[block] += duration
        processed.append(event)
    if np.any(owner != -1):
        raise InvalidScheduleError("simulation ended with tasks still running")
    return SimulationResult(
        makespan=makespan,
        events=processed,
        busy_time=busy,
        num_procs=m,
        finish_time=finish,
    )


class OnlineListSimulator:
    """Online contiguous list scheduling of a rigid allotment.

    Tasks enter the waiting queue at their release time (offline instances
    release everything at 0) and are kept in a fixed priority order.  Every
    time processors free up — or a new task arrives — the waiting queue is
    scanned in priority order and every *released* task whose processor
    requirement fits a contiguous free block is started (leftmost fitting
    block).  This is the event-driven counterpart of Graham's list
    scheduling with contiguous allocations; fed arrival-by-arrival it is the
    online baseline the availability kernel is judged against
    (:func:`repro.online.baselines.online_list_replay`).
    """

    def __init__(self, allotment: Allotment, order: list[int] | None = None) -> None:
        self.allotment = allotment
        self.instance = allotment.instance
        if order is None:
            times = allotment.times()
            order = sorted(range(len(allotment)), key=lambda i: (-times[i], i))
        self.order = list(order)

    def _find_block(self, free: np.ndarray, width: int) -> int | None:
        """Leftmost contiguous block of ``width`` free processors, or None."""
        run = 0
        for proc in range(free.size):
            if free[proc]:
                run += 1
                if run >= width:
                    return proc - width + 1
            else:
                run = 0
        return None

    def run(self) -> Schedule:
        """Simulate the policy and return the resulting schedule."""
        instance = self.instance
        m = instance.num_procs
        releases = np.array([t.release_time for t in instance.tasks], dtype=float)
        free = np.ones(m, dtype=bool)
        pending = list(self.order)
        schedule = Schedule(instance, algorithm="online-list")
        finish_heap: list[tuple[float, int, int, int]] = []  # (time, task, first, width)
        clock = 0.0
        guard = 0
        while pending or finish_heap:
            guard += 1
            if guard > 10 * (instance.num_tasks + 1) * (m + 1):
                raise SchedulingError("online simulation failed to make progress")
            # Start every released pending task that fits, in priority order.
            started_any = True
            while started_any:
                started_any = False
                for task_index in list(pending):
                    if releases[task_index] > clock and not times_close(
                        releases[task_index], clock, tol=1e-12
                    ):
                        continue  # not arrived yet
                    width = self.allotment[task_index]
                    block = self._find_block(free, width)
                    if block is None:
                        continue
                    duration = instance.tasks[task_index].time(width)
                    schedule.add(task_index, clock, block, width)
                    free[block : block + width] = False
                    heapq.heappush(
                        finish_heap, (clock + duration, task_index, block, width)
                    )
                    pending.remove(task_index)
                    started_any = True
            # Next event: the earliest completion or the next arrival,
            # whichever comes first (arrivals can back-fill a busy machine).
            next_release = min(
                (
                    releases[i]
                    for i in pending
                    if releases[i] > clock
                    and not times_close(releases[i], clock, tol=1e-12)
                ),
                default=None,
            )
            if not finish_heap:
                if next_release is None:
                    if pending:
                        raise SchedulingError(
                            "pending tasks cannot be started on an idle machine"
                        )
                    break
                clock = float(next_release)
                continue
            if next_release is not None and next_release < finish_heap[0][0]:
                clock = float(next_release)
                continue
            # Advance to the next completion(s).
            clock, task_index, block, width = heapq.heappop(finish_heap)
            free[block : block + width] = True
            while finish_heap and times_close(finish_heap[0][0], clock, tol=1e-12):
                _, t2, b2, w2 = heapq.heappop(finish_heap)
                free[b2 : b2 + w2] = True
        schedule.validate(respect_release=True)
        return schedule
