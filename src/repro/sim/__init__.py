"""Discrete-event machine simulator and schedule execution checks."""

from .events import Event, EventKind
from .engine import OnlineListSimulator, SimulationResult, simulate_schedule
from .validate import simulate_and_check

__all__ = [
    "Event",
    "EventKind",
    "SimulationResult",
    "simulate_schedule",
    "OnlineListSimulator",
    "simulate_and_check",
]
