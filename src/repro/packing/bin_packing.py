"""One-dimensional bin packing under a deadline.

The paper packs the "small" sequential tasks (canonical execution time at
most d/2) onto processors with the *First Fit* algorithm of Johnson et al.
[11]: processors are bins of capacity equal to the shelf deadline and task
durations are item sizes.  The only property the analysis of Section 4.1
needs is the classical First Fit guarantee: at most one bin ends up at most
half full, hence ``Σ sizes > (num_bins - 1) * capacity/2`` whenever more
than one bin is opened.

Besides First Fit this module provides First Fit Decreasing and Best Fit
(used by the baselines and exercised in the tests), all sharing the
:class:`BinPackingResult` output type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..exceptions import InfeasibleError
from ..model.task import EPS

__all__ = [
    "BinPackingResult",
    "first_fit",
    "first_fit_decreasing",
    "best_fit",
    "num_bins_first_fit",
]


@dataclass
class BinPackingResult:
    """Outcome of a 1-D packing.

    Attributes
    ----------
    capacity:
        Bin capacity (the shelf deadline).
    bins:
        ``bins[b]`` is the list of item indices assigned to bin ``b``.
    loads:
        ``loads[b]`` is the total size packed into bin ``b``.
    assignment:
        ``assignment[i]`` is the bin of item ``i``.
    """

    capacity: float
    bins: list[list[int]] = field(default_factory=list)
    loads: list[float] = field(default_factory=list)
    assignment: dict[int, int] = field(default_factory=dict)

    @property
    def num_bins(self) -> int:
        """Number of bins opened."""
        return len(self.bins)

    def validate(self, sizes: Sequence[float], tol: float = 1e-9) -> None:
        """Check loads and capacity; raise :class:`InfeasibleError` on violation."""
        for b, items in enumerate(self.bins):
            load = sum(sizes[i] for i in items)
            if abs(load - self.loads[b]) > tol * max(1.0, load):
                raise InfeasibleError(f"bin {b}: recorded load differs from items")
            if load > self.capacity + tol:
                raise InfeasibleError(
                    f"bin {b}: load {load} exceeds capacity {self.capacity}"
                )
        packed = sorted(i for items in self.bins for i in items)
        if packed != sorted(self.assignment):
            raise InfeasibleError("assignment and bins disagree")


def _pack(
    sizes: Sequence[float],
    capacity: float,
    order: Sequence[int],
    *,
    best_fit_rule: bool,
) -> BinPackingResult:
    result = BinPackingResult(capacity=float(capacity))
    for i in order:
        size = float(sizes[i])
        if size > capacity + EPS:
            raise InfeasibleError(
                f"item {i} of size {size} does not fit in capacity {capacity}"
            )
        chosen = -1
        if best_fit_rule:
            best_slack = None
            for b, load in enumerate(result.loads):
                slack = capacity - load - size
                if slack >= -EPS and (best_slack is None or slack < best_slack):
                    best_slack = slack
                    chosen = b
        else:
            for b, load in enumerate(result.loads):
                if load + size <= capacity + EPS:
                    chosen = b
                    break
        if chosen < 0:
            result.bins.append([])
            result.loads.append(0.0)
            chosen = len(result.bins) - 1
        result.bins[chosen].append(i)
        result.loads[chosen] += size
        result.assignment[i] = chosen
    return result


def first_fit(sizes: Sequence[float], capacity: float) -> BinPackingResult:
    """First Fit in input order (the packing used by the paper, FF).

    Guarantee used in the analysis (Section 4.1): **at most one** bin has
    load at most ``capacity/2`` (two such bins would have been merged by the
    greedy rule), hence ``Σ sizes > (num_bins − 1) · capacity/2`` whenever
    ``num_bins >= 2``.

    A previous revision overstated this as ``Σ sizes > capacity/2 ·
    num_bins`` "because every bin except possibly the last is more than half
    full".  That justification is wrong on both counts: the at-most-half-full
    bin need not be the *last* one (``sizes = [0.9, 0.3, 0.8]`` at capacity 1
    packs to loads ``[0.9, 0.3, 0.8]`` — the middle bin stays light), and
    "all but one bin > capacity/2" only yields the ``(num_bins − 1)`` form
    stated above, which is exactly what the two-shelf analysis needs.  Both
    facts are pinned by property tests in ``test_bin_packing.py``.
    """
    return _pack(sizes, capacity, range(len(sizes)), best_fit_rule=False)


def first_fit_decreasing(sizes: Sequence[float], capacity: float) -> BinPackingResult:
    """First Fit Decreasing: sort items by non-increasing size, then First Fit."""
    order = sorted(range(len(sizes)), key=lambda i: -sizes[i])
    return _pack(sizes, capacity, order, best_fit_rule=False)


def best_fit(sizes: Sequence[float], capacity: float) -> BinPackingResult:
    """Best Fit in input order: place each item in the fullest bin where it fits."""
    return _pack(sizes, capacity, range(len(sizes)), best_fit_rule=True)


def num_bins_first_fit(sizes: Sequence[float], capacity: float) -> int:
    """Number of processors needed by First Fit — the paper's ``FF(d, S)``.

    Returns 0 for an empty item set.
    """
    if not sizes:
        return 0
    return first_fit(sizes, capacity).num_bins
