"""One-dimensional packing substrate: bin packing under a deadline and shelves."""

from .bin_packing import (
    BinPackingResult,
    best_fit,
    first_fit,
    first_fit_decreasing,
    num_bins_first_fit,
)
from .shelves import Shelf, ShelfPlacement

__all__ = [
    "BinPackingResult",
    "first_fit",
    "first_fit_decreasing",
    "best_fit",
    "num_bins_first_fit",
    "Shelf",
    "ShelfPlacement",
]
