"""Shelf data structure shared by the two-shelf builder and the strip packers.

A *shelf* is a horizontal slice of the schedule: it begins at a fixed time,
has a height (the maximum duration of any task placed on it) and allocates
contiguous processor blocks left to right.  Level-oriented strip-packing
algorithms (NFDH, FFDH — Coffman et al. [5]) and the paper's λ-schedule
(Section 4.1) are both naturally expressed with shelves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import InfeasibleError

__all__ = ["ShelfPlacement", "Shelf"]


@dataclass(frozen=True)
class ShelfPlacement:
    """A rectangle placed on a shelf: task index, first processor, width, height."""

    task_index: int
    first_proc: int
    width: int
    height: float


@dataclass
class Shelf:
    """A shelf starting at ``start`` with processor capacity ``num_procs``.

    ``height`` is the tallest placement so far; ``limit`` (optional) caps the
    height a placement may have (the λ-schedule uses shelves with a hard
    height limit of ``d`` and ``λ·d``).
    """

    start: float
    num_procs: int
    limit: float | None = None
    placements: list[ShelfPlacement] = field(default_factory=list)
    used: int = 0

    @property
    def height(self) -> float:
        """Height of the shelf = duration of its tallest placement."""
        return max((p.height for p in self.placements), default=0.0)

    @property
    def end(self) -> float:
        """Completion time of the shelf (start + height)."""
        return self.start + self.height

    @property
    def free(self) -> int:
        """Number of free processors remaining on the shelf."""
        return self.num_procs - self.used

    def fits(self, width: int, height: float, *, tol: float = 1e-9) -> bool:
        """Whether a ``width x height`` rectangle can be placed on the shelf."""
        if width > self.free:
            return False
        if self.limit is not None and height > self.limit + tol:
            return False
        return True

    def place(self, task_index: int, width: int, height: float) -> ShelfPlacement:
        """Place a rectangle at the leftmost free position; raise if it does not fit."""
        if not self.fits(width, height):
            raise InfeasibleError(
                f"cannot place task {task_index} (width {width}, height {height:g}) "
                f"on shelf at {self.start:g}: free={self.free}, limit={self.limit}"
            )
        placement = ShelfPlacement(
            task_index=task_index,
            first_proc=self.used,
            width=width,
            height=float(height),
        )
        self.placements.append(placement)
        self.used += width
        return placement

    def __len__(self) -> int:
        return len(self.placements)
