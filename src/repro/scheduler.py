"""Common interface implemented by every scheduling algorithm in the package.

A :class:`Scheduler` turns an :class:`~repro.model.instance.Instance` into a
complete, validated :class:`~repro.model.schedule.Schedule`.  The interface
is intentionally tiny so that the experiment harness
(:mod:`repro.analysis.experiments`) can treat the paper's algorithm and every
baseline uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .model.instance import Instance
from .model.schedule import Schedule

__all__ = ["Scheduler"]


class Scheduler(ABC):
    """Abstract base class of all makespan-minimising schedulers."""

    #: Human-readable algorithm name, overridden by subclasses.
    name: str = "scheduler"

    @abstractmethod
    def schedule(self, instance: Instance) -> Schedule:
        """Return a complete valid schedule for ``instance``."""

    def __call__(self, instance: Instance) -> Schedule:
        return self.schedule(instance)

    def makespan(self, instance: Instance) -> float:
        """Convenience: makespan of the produced schedule."""
        return self.schedule(instance).makespan()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
