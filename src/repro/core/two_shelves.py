"""λ-schedules: the knapsack-based two-shelf construction of Section 4.

A **λ-schedule** for a guess ``d`` packs the tasks into two consecutive
shelves: the first shelf spans ``[0, d]`` and only contains tasks of ``T1``
at their canonical allotment γ_i(d); the second shelf spans ``[d, (1+λ)·d]``
and contains the remaining tasks of ``T1`` (each shrunk in time by enlarging
its allotment to ``d_i = γ_i(λ·d)`` processors), every task of ``T2`` at its
canonical allotment, and the small sequential tasks of ``T3`` packed First
Fit under the shelf deadline ``λ·d``.  Such a schedule has makespan at most
``(1 + λ)·d``, which equals ``√3·d`` for the paper's choice ``λ = √3 − 1``.

Selecting which T1 tasks move to the second shelf is the knapsack problem
(KS) of Section 4.3: moving task ``i`` costs ``d_i`` processors of the second
shelf and relieves ``γ_i`` processors of the first shelf.  A subset
``S ⊆ T1`` is feasible (``S ∈ Γλ``) iff

* ``Σ_{T1∖S} γ_i ≤ m``   (the first shelf fits), and
* ``Σ_S d_i ≤ m − q2 − q3``   (the second shelf fits next to T2 and T3).

This module provides the feasibility test, the trivial-solution detection of
Section 4.5, the knapsack-driven subset selection (exact DP, dual knapsack or
FPTAS), the λ-schedule builder, the greedy candidate series of Lemma 4 (used
by the FIG6 benchmark) and a :class:`TwoShelfDual` wrapper usable with the
dichotomic search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..exceptions import InfeasibleError
from ..model.instance import Instance
from ..model.schedule import Schedule
from ..model.task import EPS
from .knapsack import KnapsackItem, knapsack_fptas, knapsack_max_profit, knapsack_min_weight
from .partition import LAMBDA_STAR, CanonicalPartition, build_partition

__all__ = [
    "is_feasible_subset",
    "find_trivial_solution",
    "select_shelf2_subset",
    "build_lambda_schedule",
    "build_trivial_schedule",
    "candidate_series",
    "SeriesStep",
    "TwoShelfDual",
]


# --------------------------------------------------------------------------- #
# feasibility of a subset S ⊆ T1  (membership in Γλ)
# --------------------------------------------------------------------------- #
def is_feasible_subset(part: CanonicalPartition, subset: Iterable[int]) -> bool:
    """Whether ``subset ⊆ T1`` defines a feasible λ-schedule (``subset ∈ Γλ``)."""
    chosen = set(subset)
    if not chosen.issubset(set(part.t1)):
        return False
    gamma_moved = sum(int(part.alloc.procs[i]) for i in chosen)
    if part.q1 - gamma_moved > part.instance.num_procs:
        return False
    width_shelf2 = 0
    for i in chosen:
        d_i = part.shelf2_procs[i]
        if d_i is None:
            return False
        width_shelf2 += d_i
    return width_shelf2 <= part.free_shelf2


# --------------------------------------------------------------------------- #
# trivial solutions (Section 4.5)
# --------------------------------------------------------------------------- #
def find_trivial_solution(part: CanonicalPartition) -> int | None:
    """A single T1 task that alone in the second shelf makes everything fit.

    Task ``τ`` is a trivial solution when (i) it can run within ``λ·d`` on at
    most ``m`` processors and (ii) all the *other* tasks — the rest of T1 and
    all of T2 at their canonical allotments, plus T3 packed First Fit under
    the first-shelf deadline ``d`` — fit side by side on the first shelf.
    Returns the task index or ``None``.

    The T3 packing comes from the partition's shared
    :meth:`~repro.core.partition.CanonicalPartition.first_shelf_packing`, the
    same object :func:`build_trivial_schedule` materialises — so a ``τ``
    accepted here always builds.
    """
    m = part.instance.num_procs
    if not part.t1:
        return None
    # Processors used on shelf 1 by T2 and T3 in the trivial configuration.
    q2 = part.q2
    packing = part.first_shelf_packing()
    q3_first_shelf = packing.num_bins if packing is not None else 0
    for tau in part.t1:
        d_tau = part.shelf2_procs[tau]
        if d_tau is None or d_tau > m:
            continue
        others_width = part.q1 - int(part.alloc.procs[tau])
        if others_width + q2 + q3_first_shelf <= m:
            return tau
    return None


# --------------------------------------------------------------------------- #
# knapsack-driven subset selection (Sections 4.3 and 4.4)
# --------------------------------------------------------------------------- #
def select_shelf2_subset(
    part: CanonicalPartition,
    *,
    method: str = "exact",
    eps: float = 0.1,
) -> set[int] | None:
    """Find ``S ∈ Γλ`` using the knapsack formulation, or ``None``.

    Parameters
    ----------
    part:
        The canonical partition of the instance.
    method:
        ``"exact"`` — pseudo-polynomial DP on (KS) (capacity is the free
        width of the second shelf, at most ``m``);
        ``"dual"`` — dual knapsack (KS'): minimise the second-shelf width
        subject to relieving enough first-shelf processors;
        ``"fptas"`` — the approximation scheme of Section 4.4 applied to
        (KS), falling back to (KS') exactly as in Lemma 2 when the
        approximate profit does not reach the requirement.
    eps:
        Accuracy of the FPTAS (ignored by the other methods).
    """
    if method not in ("exact", "dual", "fptas"):
        raise ValueError(f"unknown knapsack method {method!r}")
    if part.free_shelf2 < 0:
        return None
    required = part.required_gamma()
    items = [
        KnapsackItem(key=i, weight=w, profit=p) for i, w, p in part.knapsack_items()
    ]
    if required == 0:
        # The empty set is feasible as soon as shelf 2 fits T2 and T3.
        return set()
    if method == "exact":
        solution = knapsack_max_profit(items, part.free_shelf2)
        if solution.profit >= required:
            return set(solution.keys)
        return None
    if method == "dual":
        solution = knapsack_min_weight(items, required)
        if solution is not None and solution.weight <= part.free_shelf2:
            return set(solution.keys)
        return None
    if method == "fptas":
        primal = knapsack_fptas(items, part.free_shelf2, eps)
        if primal.profit >= required:
            return set(primal.keys)
        # Lemma 2: when the (1−ε)-approximate profit misses the requirement,
        # the dual knapsack provides the element of Γλ (if any exists).
        dual = knapsack_min_weight(items, required)
        if dual is not None and dual.weight <= part.free_shelf2:
            return set(dual.keys)
        return None
    raise ValueError(f"unknown knapsack method {method!r}")  # pragma: no cover


# --------------------------------------------------------------------------- #
# λ-schedule construction
# --------------------------------------------------------------------------- #
def build_lambda_schedule(
    part: CanonicalPartition, shelf2_t1: Iterable[int]
) -> Schedule:
    """Materialise the λ-schedule defined by the subset ``shelf2_t1 ⊆ T1``.

    Shelf 1 (``[0, d]``) holds T1∖S at canonical allotments; shelf 2
    (``[d, (1+λ)·d]``) holds S at their ``d_i`` allotments, T2 at canonical
    allotments and T3 packed First Fit.  Raises
    :class:`~repro.exceptions.InfeasibleError` when the subset is not in Γλ.
    """
    chosen = set(shelf2_t1)
    if not is_feasible_subset(part, chosen):
        raise InfeasibleError("the chosen subset does not define a feasible λ-schedule")
    instance = part.instance
    schedule = Schedule(instance, algorithm="two-shelves")
    # ---- shelf 1 --------------------------------------------------------- #
    cursor = 0
    for i in part.t1:
        if i in chosen:
            continue
        width = int(part.alloc.procs[i])
        schedule.add(i, 0.0, cursor, width)
        cursor += width
    # ---- shelf 2 --------------------------------------------------------- #
    start = part.guess
    cursor2 = 0
    for i in sorted(chosen):
        width = part.shelf2_procs[i]
        assert width is not None  # guaranteed by feasibility
        schedule.add(i, start, cursor2, width)
        cursor2 += width
    for i in part.t2:
        width = int(part.alloc.procs[i])
        schedule.add(i, start, cursor2, width)
        cursor2 += width
    if part.t3:
        packing = part.small_packing
        assert packing is not None
        for b, bin_items in enumerate(packing.bins):
            proc = cursor2 + b
            offset = 0.0
            for local_index in bin_items:
                task_index = part.t3[local_index]
                duration = float(part.alloc.times[task_index])
                schedule.add(task_index, start + offset, proc, 1)
                offset += duration
        cursor2 += packing.num_bins
    schedule.validate(deadline=(1.0 + part.lam) * part.guess + EPS)
    return schedule


def build_trivial_schedule(part: CanonicalPartition, tau: int) -> Schedule:
    """Materialise the trivial λ-schedule of Section 4.5 for the task ``tau``.

    Everything except ``tau`` goes on the first shelf (T1∖{τ} and T2 at
    canonical allotments, T3 packed First Fit under the deadline ``d``);
    ``tau`` alone occupies the second shelf on ``d_τ`` processors.  The T3
    packing is the partition's shared
    :meth:`~repro.core.partition.CanonicalPartition.first_shelf_packing` —
    the exact packing :func:`find_trivial_solution` tested, so its verdict
    cannot diverge from this builder.
    """
    instance = part.instance
    d_tau = part.shelf2_procs.get(tau)
    if tau not in part.t1 or d_tau is None or d_tau > instance.num_procs:
        raise InfeasibleError(f"task {tau} is not a trivial solution")
    schedule = Schedule(instance, algorithm="two-shelves-trivial")
    cursor = 0
    for i in part.t1:
        if i == tau:
            continue
        width = int(part.alloc.procs[i])
        schedule.add(i, 0.0, cursor, width)
        cursor += width
    for i in part.t2:
        width = int(part.alloc.procs[i])
        schedule.add(i, 0.0, cursor, width)
        cursor += width
    if part.t3:
        packing = part.first_shelf_packing()
        assert packing is not None  # t3 is non-empty
        for b, bin_items in enumerate(packing.bins):
            proc = cursor + b
            offset = 0.0
            for local_index in bin_items:
                task_index = part.t3[local_index]
                duration = float(part.alloc.times[task_index])
                schedule.add(task_index, offset, proc, 1)
                offset += duration
        cursor += packing.num_bins
    if cursor > instance.num_procs:
        raise InfeasibleError(f"task {tau} is not a trivial solution (shelf 1 overflows)")
    schedule.add(tau, part.guess, 0, d_tau)
    schedule.validate(deadline=(1.0 + part.lam) * part.guess + EPS)
    return schedule


# --------------------------------------------------------------------------- #
# the candidate series of Lemma 4 (Figure 6)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SeriesStep:
    """One element S_j of the series of Lemma 4.

    Attributes
    ----------
    subset:
        The candidate subset of T1 (indices).
    gamma_sum:
        ``Σ_{S_j} γ_i`` (the profit the knapsack must reach).
    shelf2_width:
        ``Σ_{S_j} d_i`` (infinite when some task cannot enter shelf 2).
    canonical_area:
        Canonical work of the subset.
    feasible:
        Whether ``S_j ∈ Γλ``.
    removed_task:
        Task removed from the previous step (``None`` for the first step).
    """

    subset: tuple[int, ...]
    gamma_sum: int
    shelf2_width: float
    canonical_area: float
    feasible: bool
    removed_task: int | None


def candidate_series(part: CanonicalPartition) -> list[SeriesStep]:
    """The greedy series S_0 ⊇ S_1 ⊇ … of Lemma 4.

    Starting from all of T1 (restricted to tasks that can enter the second
    shelf), the task with the greatest inefficiency factor
    ``W_i(d_i)/W_i(γ_i)`` is removed at each step.  The paper proves that
    when no trivial solution exists some element of the series belongs to Γλ;
    the FIG6 benchmark replays this construction.
    """
    current = [i for i in part.t1 if part.shelf2_procs[i] is not None]

    def ineff(i: int) -> float:
        d_i = part.shelf2_procs[i]
        assert d_i is not None
        return part.instance.tasks[i].work(d_i) / float(part.alloc.works[i])

    steps: list[SeriesStep] = []
    removed: int | None = None
    while True:
        gamma_sum = int(sum(part.alloc.procs[i] for i in current))
        width = float(sum(part.shelf2_procs[i] for i in current))  # type: ignore[arg-type]
        area = float(sum(part.alloc.works[i] for i in current))
        steps.append(
            SeriesStep(
                subset=tuple(current),
                gamma_sum=gamma_sum,
                shelf2_width=width,
                canonical_area=area,
                feasible=is_feasible_subset(part, current),
                removed_task=removed,
            )
        )
        if not current:
            break
        removed = max(current, key=ineff)
        current = [i for i in current if i != removed]
    return steps


# --------------------------------------------------------------------------- #
# dual-approximation wrapper
# --------------------------------------------------------------------------- #
class TwoShelfDual:
    """Dual (1+λ)-approximation based exclusively on the two-shelf branch.

    Used in isolation by the experiments studying the knapsack branch
    (EXP-C); the complete algorithm combining it with the list branches is
    :class:`repro.core.mrt.MRTDual`.
    """

    def __init__(self, lam: float = LAMBDA_STAR, *, method: str = "exact", eps: float = 0.1) -> None:
        self.lam = lam
        self.method = method
        self.eps = eps
        self.rho = 1.0 + lam

    def run(self, instance: Instance, guess: float) -> Schedule | None:
        part = build_partition(instance, guess, self.lam)
        if part is None:
            return None
        if part.alloc.total_work > instance.num_procs * guess + EPS * max(1.0, guess):
            return None
        tau = find_trivial_solution(part)
        if tau is not None:
            try:
                return build_trivial_schedule(part, tau)
            except InfeasibleError:
                pass
        subset = select_shelf2_subset(part, method=self.method, eps=self.eps)
        if subset is None:
            return None
        try:
            return build_lambda_schedule(part, subset)
        except InfeasibleError:
            return None
