"""Contiguous list scheduling of rigid (allotted) tasks.

Both list algorithms of Section 3 schedule an already-allotted (rigid)
instance by going through the tasks in a priority order and placing each one
as early as possible on a contiguous block of processors.  This module holds
that shared machinery:

* :func:`sliding_window_max` — O(m) computation of the earliest start of
  every contiguous block of a given width over a per-processor availability
  profile,
* :func:`contiguous_list_schedule` — the list scheduler itself, with the
  paper's tie-breaking convention (leftmost block when starting at time 0,
  rightmost block otherwise, Section 3.2), and
* :func:`compute_levels` — the "level" of each task in a schedule (first
  level = tasks starting at 0, second level = tasks resting directly on a
  first-level task, ...), used to state and verify Property 3 and Lemma 1.

The scheduler works on an availability profile (one completion time per
processor); it therefore produces the stacked "shelf-like" structure the
paper analyses (no backfilling into idle gaps between levels).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import SchedulingError
from ..model.allotment import Allotment
from ..model.schedule import Schedule, ScheduledTask

__all__ = [
    "sliding_window_max",
    "contiguous_list_schedule",
    "compute_levels",
    "ListPlacement",
]


@dataclass(frozen=True)
class ListPlacement:
    """Placement decision taken by the list scheduler for one task."""

    task_index: int
    start: float
    first_proc: int
    num_procs: int


def sliding_window_max(values: np.ndarray, width: int) -> np.ndarray:
    """Maximum of every contiguous window of ``width`` entries of ``values``.

    Returns an array of length ``len(values) - width + 1`` where entry ``s``
    is ``max(values[s : s + width])``.  Runs in O(len(values)) using a
    monotonic deque, which keeps the overall list scheduler at
    O(n·m) instead of O(n·m·p).
    """
    n = values.size
    if width < 1 or width > n:
        raise ValueError(f"window width {width} outside 1..{n}")
    out = np.empty(n - width + 1, dtype=float)
    dq: deque[int] = deque()
    for i in range(n):
        while dq and values[dq[-1]] <= values[i]:
            dq.pop()
        dq.append(i)
        if dq[0] <= i - width:
            dq.popleft()
        if i >= width - 1:
            out[i - width + 1] = values[dq[0]]
    return out


def contiguous_list_schedule(
    allotment: Allotment,
    order: Sequence[int],
    *,
    algorithm: str = "list",
    start_offset: float = 0.0,
    initial_avail: np.ndarray | None = None,
) -> Schedule:
    """List-schedule the rigid tasks induced by ``allotment`` in ``order``.

    Each task is placed on the contiguous block of processors minimising its
    start time (the maximum availability over the block).  Tie-breaking
    follows the paper's convention: among blocks achieving the minimal start,
    the leftmost block is chosen when the start equals the initial time
    (time 0 / ``start_offset``), the rightmost one otherwise.  This is the
    rule Section 3.2 uses to keep the schedule contiguous and to create the
    "levels" structure analysed in the appendix.

    Parameters
    ----------
    allotment:
        Processor counts per task (defines the rigid instance).
    order:
        Task indices in scheduling priority order; every index must appear at
        most once.  Indices absent from ``order`` are simply not scheduled
        (used when composing partial schedules).
    algorithm:
        Name recorded on the produced schedule.
    start_offset:
        Time at which all processors become available (used to schedule a
        second phase after a first shelf).
    initial_avail:
        Optional explicit per-processor availability profile; overrides
        ``start_offset``.
    """
    instance = allotment.instance
    m = instance.num_procs
    if initial_avail is not None:
        avail = np.asarray(initial_avail, dtype=float).copy()
        if avail.shape != (m,):
            raise SchedulingError(
                f"initial_avail must have shape ({m},), got {avail.shape}"
            )
    else:
        avail = np.full(m, float(start_offset))
    base_time = float(avail.min())
    schedule = Schedule(instance, algorithm=algorithm)
    seen: set[int] = set()
    for task_index in order:
        if task_index in seen:
            raise SchedulingError(f"task index {task_index} appears twice in order")
        seen.add(task_index)
        width = allotment[task_index]
        if width > m:
            raise SchedulingError(
                f"task {instance.tasks[task_index].name!r} requests {width} > m={m} "
                "processors"
            )
        duration = instance.tasks[task_index].time(width)
        starts = sliding_window_max(avail, width)
        best_start = float(starts.min())
        positions = np.nonzero(starts <= best_start + 1e-12)[0]
        if best_start <= base_time + 1e-12:
            first_proc = int(positions[0])  # leftmost at the initial time
        else:
            first_proc = int(positions[-1])  # rightmost otherwise
        schedule.add(task_index, best_start, first_proc, width, duration=duration)
        avail[first_proc : first_proc + width] = best_start + duration
    return schedule


def compute_levels(schedule: Schedule, *, tol: float = 1e-9) -> dict[int, int]:
    """Level of every scheduled task (1 = starts at the schedule's origin).

    A task is on level 1 when it starts at the earliest start time of the
    schedule; otherwise its level is one more than the maximal level among
    the tasks that *support* it — tasks sharing at least one processor and
    finishing no later than its start, taking on each shared processor the
    latest such task.  This matches the paper's informal definition ("the
    second level corresponds to the tasks scheduled on top of a task of the
    first level") for schedules produced by :func:`contiguous_list_schedule`.
    """
    entries = sorted(schedule.entries, key=lambda e: (e.start, e.first_proc))
    if not entries:
        return {}
    origin = min(e.start for e in entries)
    levels: dict[int, int] = {}
    # latest finished task per processor, updated as we sweep by start time.
    for entry in entries:
        if entry.start <= origin + tol:
            levels[entry.task_index] = 1
            continue
        support_level = 0
        for other in entries:
            if other is entry:
                continue
            if other.end > entry.start + tol:
                continue
            # shares a processor?
            lo = max(other.first_proc, entry.first_proc)
            hi = min(
                other.first_proc + other.num_procs,
                entry.first_proc + entry.num_procs,
            )
            if lo < hi and abs(other.end - entry.start) <= max(
                tol, 1e-9 * max(1.0, entry.start)
            ):
                support_level = max(support_level, levels.get(other.task_index, 1))
        if support_level == 0:
            # supported only by idle time: count it as resting on the level
            # below the deepest overlapping predecessor.
            for other in entries:
                if other is entry or other.end > entry.start + tol:
                    continue
                lo = max(other.first_proc, entry.first_proc)
                hi = min(
                    other.first_proc + other.num_procs,
                    entry.first_proc + entry.num_procs,
                )
                if lo < hi:
                    support_level = max(
                        support_level, levels.get(other.task_index, 1)
                    )
            if support_level == 0:
                support_level = 1
        levels[entry.task_index] = support_level + 1
    return levels
