"""Core algorithms of the paper: dual approximation, list algorithms, knapsack two-shelf."""

from .allotment_engine import (
    AllotmentEngine,
    GammaProfile,
    PartitionSplit,
    quantize_deadline,
)
from .dual import DualApproximation, DualSearchResult, GuessOutcome, dual_search
from .properties import (
    CanonicalAllotment,
    canonical_allotment,
    is_small_sequential,
    mu_area,
    property1_holds,
    property2_bound_holds,
)
from .list_scheduling import compute_levels, contiguous_list_schedule, sliding_window_max
from .malleable_list import (
    MalleableListDual,
    MalleableListScheduler,
    malleable_list_guarantee,
)
from .canonical_list import (
    MU_STAR,
    CanonicalListDual,
    CanonicalListScheduler,
    canonical_list_schedule,
    first_two_level_completion,
    outside_levels_are_small_sequential,
)
from .partition import LAMBDA_STAR, CanonicalPartition, build_partition, inefficiency_factor
from .knapsack import (
    KnapsackItem,
    KnapsackSolution,
    knapsack_fptas,
    knapsack_max_profit,
    knapsack_min_weight,
)
from .two_shelves import (
    SeriesStep,
    TwoShelfDual,
    build_lambda_schedule,
    build_trivial_schedule,
    candidate_series,
    find_trivial_solution,
    is_feasible_subset,
    select_shelf2_subset,
)
from .mrt import MRTDual, MRTResult, MRTScheduler
from . import theory

__all__ = [
    "AllotmentEngine",
    "GammaProfile",
    "PartitionSplit",
    "quantize_deadline",
    "DualApproximation",
    "DualSearchResult",
    "GuessOutcome",
    "dual_search",
    "CanonicalAllotment",
    "canonical_allotment",
    "property1_holds",
    "property2_bound_holds",
    "is_small_sequential",
    "mu_area",
    "compute_levels",
    "contiguous_list_schedule",
    "sliding_window_max",
    "MalleableListDual",
    "MalleableListScheduler",
    "malleable_list_guarantee",
    "MU_STAR",
    "CanonicalListDual",
    "CanonicalListScheduler",
    "canonical_list_schedule",
    "first_two_level_completion",
    "outside_levels_are_small_sequential",
    "LAMBDA_STAR",
    "CanonicalPartition",
    "build_partition",
    "inefficiency_factor",
    "KnapsackItem",
    "KnapsackSolution",
    "knapsack_max_profit",
    "knapsack_min_weight",
    "knapsack_fptas",
    "SeriesStep",
    "TwoShelfDual",
    "build_lambda_schedule",
    "build_trivial_schedule",
    "candidate_series",
    "find_trivial_solution",
    "is_feasible_subset",
    "select_shelf2_subset",
    "MRTDual",
    "MRTResult",
    "MRTScheduler",
    "theory",
]
