"""The complete √3-approximation scheduler (Mounié–Rapine–Trystram, SPAA'99).

``MRT`` combines every ingredient of the paper into the dual approximation of
Theorem 3 and Section 5:

* sound rejection certificates (non-existence of a canonical allotment,
  Property 2);
* the **malleable list** branch of Section 3.1, whose guarantee
  ``2 − 2/(m+1)`` is already below √3 on machines with at most six
  processors;
* the **canonical list** branch of Section 3.2, used when the canonical
  μ-area is small (``W_m ≤ μ·m·d``);
* the **knapsack two-shelf** branch of Section 4 (trivial solutions first,
  then the exact or approximate knapsack), used when the μ-area is large.

A guess ``d`` is *accepted* when one of the branches produces a schedule of
length at most ``√3·d``; a dichotomic search over ``d`` then yields the final
schedule.

Soundness of rejection
----------------------
The paper's Theorems 2 and 3 prove that under their hypotheses (in particular
``m ≥ m*(μ)``) at least one branch must succeed whenever a schedule of length
``d`` exists, which makes rejection sound and the overall algorithm a
``√3(1+ε)``-approximation.  Because a few appendix constants are illegible in
the available text (see ``DESIGN.md``), this implementation does not rely on
that implication for its *correctness*: a rejection that follows a failed
branch cascade is only used to steer the dichotomic search, and the scheduler
additionally evaluates the unconditional ``(2 − 2/(m+1))``-guarantee
malleable-list schedule, returning whichever schedule is shortest.  The
result is therefore always a valid schedule with ratio at most
``2 − 2/(m+1)`` and, on every workload exercised in ``EXPERIMENTS.md``,
within √3 of the lower bound — matching the paper's claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import InfeasibleError
from ..lower_bounds import canonical_area_lower_bound, trivial_lower_bound
from ..model.instance import Instance
from ..model.schedule import Schedule
from ..model.task import EPS
from ..scheduler import Scheduler
from .canonical_list import MU_STAR, canonical_list_schedule
from .dual import DualSearchResult, dual_search
from .malleable_list import MalleableListDual, malleable_list_guarantee
from .partition import LAMBDA_STAR, build_partition
from .two_shelves import (
    build_lambda_schedule,
    build_trivial_schedule,
    find_trivial_solution,
    select_shelf2_subset,
)

__all__ = ["MRTDual", "MRTResult", "MRTScheduler"]


class MRTDual:
    """Dual √3-approximation of Theorem 3 (branch dispatch per Section 5).

    Parameters
    ----------
    lam:
        Second-shelf parameter λ (default √3 − 1).
    mu:
        List-branch parameter μ (default √3/2; the target factor is
        ``max(1+λ, 2μ)`` which equals √3 for the defaults).
    knapsack_method:
        ``"exact"``, ``"dual"`` or ``"fptas"`` — passed to
        :func:`repro.core.two_shelves.select_shelf2_subset`.
    fptas_eps:
        Accuracy of the FPTAS when ``knapsack_method="fptas"``.
    """

    def __init__(
        self,
        lam: float = LAMBDA_STAR,
        mu: float = MU_STAR,
        *,
        knapsack_method: str = "exact",
        fptas_eps: float = 0.1,
    ) -> None:
        if not 0.5 < lam <= 1.0:
            raise ValueError("lambda must lie in (1/2, 1]")
        if not 0.5 < mu <= 1.0:
            raise ValueError("mu must lie in (1/2, 1]")
        self.lam = lam
        self.mu = mu
        self.knapsack_method = knapsack_method
        self.fptas_eps = fptas_eps
        self.rho = max(1.0 + lam, 2.0 * mu)
        #: branch that produced the accepted schedule at the last ``run`` call
        #: ("malleable-list", "canonical-list", "two-shelves-trivial",
        #: "two-shelves", or ``None`` after a rejection).
        self.last_branch: str | None = None
        #: μ-area of the last accepted/attempted guess (for experiment EXP-C).
        self.last_mu_area: float | None = None

    # ------------------------------------------------------------------ #
    def _within_target(self, schedule: Schedule | None, guess: float) -> bool:
        if schedule is None:
            return False
        target = self.rho * guess
        return schedule.makespan() <= target + EPS * max(1.0, target)

    def run(self, instance: Instance, guess: float) -> Schedule | None:
        """Return a schedule of length at most ``√3·guess`` or ``None``."""
        self.last_branch = None
        self.last_mu_area = None
        if guess <= 0:
            return None
        m = instance.num_procs
        # ---- sound rejection certificates -------------------------------- #
        canonical_work = instance.canonical_work(guess)
        if canonical_work is None:
            return None
        if canonical_work > m * guess + EPS * max(1.0, guess):
            return None
        mu_area = instance.mu_area(guess)
        self.last_mu_area = mu_area
        small_area = mu_area is not None and mu_area <= self.mu * m * guess + EPS
        # ---- branch order per Section 5 ---------------------------------- #
        malleable = MalleableListDual.for_instance(instance)
        ml_first = malleable_list_guarantee(m) <= self.rho + EPS
        attempts: list[str] = []
        if ml_first:
            attempts.append("malleable-list")
        if small_area:
            attempts.append("canonical-list")
            attempts.append("two-shelves")
        else:
            attempts.append("two-shelves")
            attempts.append("canonical-list")
        if not ml_first:
            attempts.append("malleable-list")
        for branch in attempts:
            schedule = self._run_branch(branch, instance, guess, malleable)
            if self._within_target(schedule, guess):
                assert schedule is not None
                self.last_branch = schedule.algorithm
                return schedule
        return None

    def _run_branch(
        self,
        branch: str,
        instance: Instance,
        guess: float,
        malleable: MalleableListDual,
    ) -> Schedule | None:
        if branch == "malleable-list":
            return malleable.run(instance, guess)
        if branch == "canonical-list":
            return canonical_list_schedule(instance, guess)
        if branch == "two-shelves":
            part = build_partition(instance, guess, self.lam)
            if part is None:
                return None
            tau = find_trivial_solution(part)
            if tau is not None:
                try:
                    return build_trivial_schedule(part, tau)
                except InfeasibleError:
                    pass
            subset = select_shelf2_subset(
                part, method=self.knapsack_method, eps=self.fptas_eps
            )
            if subset is None:
                return None
            try:
                return build_lambda_schedule(part, subset)
            except InfeasibleError:
                return None
        raise ValueError(f"unknown branch {branch!r}")  # pragma: no cover


@dataclass
class MRTResult:
    """Detailed outcome of :class:`MRTScheduler`."""

    schedule: Schedule
    branch: str
    best_guess: float
    lower_bound: float
    search: DualSearchResult
    #: makespan divided by the lower bound (an upper bound on the true ratio).
    ratio_to_lower_bound: float = field(init=False)

    def __post_init__(self) -> None:
        self.ratio_to_lower_bound = (
            self.schedule.makespan() / self.lower_bound if self.lower_bound > 0 else 1.0
        )


class MRTScheduler(Scheduler):
    """The paper's complete algorithm: dual √3-approximation + dichotomic search.

    The returned schedule is the shortest among (a) the schedules of the
    accepted guesses of the dichotomic search and (b) the unconditional
    malleable-list schedule, so the worst-case guarantee is never worse than
    ``2 − 2/(m+1)`` and is ``√3(1+ε)`` whenever the paper's branch-coverage
    theorems apply (see the module docstring).
    """

    name = "mrt-sqrt3"

    def __init__(
        self,
        *,
        lam: float = LAMBDA_STAR,
        mu: float = MU_STAR,
        eps: float = 1e-3,
        knapsack_method: str = "exact",
        fptas_eps: float = 0.1,
    ) -> None:
        self.lam = lam
        self.mu = mu
        self.eps = eps
        self.knapsack_method = knapsack_method
        self.fptas_eps = fptas_eps
        self.last_result: MRTResult | None = None

    def schedule(self, instance: Instance) -> Schedule:
        dual = MRTDual(
            self.lam,
            self.mu,
            knapsack_method=self.knapsack_method,
            fptas_eps=self.fptas_eps,
        )
        result = dual_search(dual, instance, eps=self.eps)
        best = result.schedule
        branch = best.algorithm or "unknown"
        # Unconditional fallback guarantee: the malleable list scheduler.
        from .malleable_list import MalleableListScheduler

        fallback = MalleableListScheduler(eps=self.eps).schedule(instance)
        if fallback.makespan() < best.makespan():
            best = fallback
            branch = "malleable-list-fallback"
        best.validate()
        lower = max(
            trivial_lower_bound(instance), canonical_area_lower_bound(instance)
        )
        self.last_result = MRTResult(
            schedule=best,
            branch=branch,
            best_guess=result.best_guess,
            lower_bound=lower,
            search=result,
        )
        return best
