"""Knapsack solvers used by the allotment selection (Sections 4.3 and 4.4).

The paper reformulates the choice of the tasks moved to the second shelf as
the knapsack problem

    (KS)   maximise Σ_{i∈S} profit_i   subject to   Σ_{i∈S} weight_i ≤ capacity,

with integral weights (the second-shelf allotments ``d_i ≤ m``) and integral
profits (the canonical allotments ``γ_i ≤ m``).  Three solvers are provided:

* :func:`knapsack_max_profit` — the exact pseudo-polynomial dynamic program
  in ``O(n · capacity)`` time and space, appropriate because the capacity is
  at most the number of processors ``m``;
* :func:`knapsack_min_weight` — the *dual* knapsack (KS') of Section 4.4:
  minimise the total weight subject to reaching a target profit, solved by a
  DP over the profit dimension;
* :func:`knapsack_fptas` — the classical fully polynomial approximation
  scheme (profit scaling) delivering a ``(1 − ε)``-approximate profit in
  ``O(n³/ε)``; the paper uses it (Lemma 2) when ``m`` is exponential in the
  input size, making the exact DP non-polynomial.

All solvers return a :class:`KnapsackSolution` containing the selected item
indices, so callers can reconstruct the two-shelf schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ModelError

__all__ = [
    "KnapsackItem",
    "KnapsackSolution",
    "knapsack_max_profit",
    "knapsack_min_weight",
    "knapsack_fptas",
]


@dataclass(frozen=True)
class KnapsackItem:
    """An item with integral weight and profit; ``key`` identifies it to the caller."""

    key: int
    weight: int
    profit: int


@dataclass(frozen=True)
class KnapsackSolution:
    """Selected item keys with their total weight and profit."""

    keys: tuple[int, ...]
    weight: int
    profit: int

    def __contains__(self, key: int) -> bool:
        return key in self.keys


def _validate_items(items: Sequence[KnapsackItem]) -> None:
    for item in items:
        if item.weight < 0 or item.profit < 0:
            raise ModelError("knapsack items must have non-negative weight and profit")


def knapsack_max_profit(
    items: Sequence[KnapsackItem], capacity: int
) -> KnapsackSolution:
    """Exact 0/1 knapsack by dynamic programming over the capacity.

    ``dp[c]`` is the best profit achievable with total weight exactly ≤ c;
    parent pointers reconstruct the selected set.  Complexity
    ``O(n · capacity)`` time, ``O(n · capacity)`` space (kept explicit for
    clarity; capacities here are bounded by the machine size).
    """
    _validate_items(items)
    if capacity < 0:
        return KnapsackSolution(keys=(), weight=0, profit=0)
    n = len(items)
    dp = np.zeros((n + 1, capacity + 1), dtype=np.int64)
    take = np.zeros((n + 1, capacity + 1), dtype=bool)
    for idx in range(1, n + 1):
        item = items[idx - 1]
        w, p = item.weight, item.profit
        dp[idx] = dp[idx - 1]
        if w <= capacity:
            candidate = dp[idx - 1, : capacity - w + 1] + p
            better = candidate > dp[idx, w:]
            dp[idx, w:][better] = candidate[better]
            take[idx, w:][better] = True
    # Reconstruct.
    keys: list[int] = []
    c = int(np.argmax(dp[n]))
    best_profit = int(dp[n, c])
    total_weight = 0
    for idx in range(n, 0, -1):
        if take[idx, c]:
            item = items[idx - 1]
            keys.append(item.key)
            total_weight += item.weight
            c -= item.weight
    keys.reverse()
    return KnapsackSolution(keys=tuple(keys), weight=total_weight, profit=best_profit)


def knapsack_min_weight(
    items: Sequence[KnapsackItem], target_profit: int
) -> KnapsackSolution | None:
    """Dual knapsack (KS'): minimise total weight subject to profit ≥ target.

    Returns ``None`` when even taking every item does not reach the target.
    Complexity ``O(n · Σ profits)``.
    """
    _validate_items(items)
    total_profit = sum(item.profit for item in items)
    if target_profit <= 0:
        return KnapsackSolution(keys=(), weight=0, profit=0)
    if total_profit < target_profit:
        return None
    cap = total_profit
    INF = np.iinfo(np.int64).max // 4
    n = len(items)
    dp = np.full((n + 1, cap + 1), INF, dtype=np.int64)
    take = np.zeros((n + 1, cap + 1), dtype=bool)
    dp[:, 0] = 0
    for idx in range(1, n + 1):
        item = items[idx - 1]
        w, p = item.weight, item.profit
        dp[idx] = dp[idx - 1]
        if p > 0:
            shifted = np.full(cap + 1, INF, dtype=np.int64)
            shifted[p:] = dp[idx - 1, : cap - p + 1]
            feasible = shifted < INF
            candidate = np.where(feasible, shifted + w, INF)
            better = candidate < dp[idx]
            dp[idx][better] = candidate[better]
            take[idx][better] = True
        else:
            # Zero-profit items never help the dual objective.
            pass
    # Best profit level ≥ target with minimal weight.
    best_level = -1
    best_weight = INF
    for level in range(target_profit, cap + 1):
        if dp[n, level] < best_weight:
            best_weight = int(dp[n, level])
            best_level = level
    if best_level < 0 or best_weight >= INF:
        return None
    keys: list[int] = []
    level = best_level
    for idx in range(n, 0, -1):
        if take[idx, level]:
            item = items[idx - 1]
            keys.append(item.key)
            level -= item.profit
    keys.reverse()
    profit = sum(item.profit for item in items if item.key in set(keys))
    weight = sum(item.weight for item in items if item.key in set(keys))
    return KnapsackSolution(keys=tuple(keys), weight=weight, profit=profit)


def knapsack_fptas(
    items: Sequence[KnapsackItem], capacity: int, eps: float
) -> KnapsackSolution:
    """FPTAS for the maximisation knapsack (profit scaling).

    Returns a feasible solution whose profit is at least ``(1 − eps)`` times
    the optimum.  Items heavier than the capacity are discarded.  Complexity
    ``O(n²·⌈n/eps⌉)`` in the worst case (standard textbook bound).
    """
    if eps <= 0 or eps >= 1:
        raise ModelError("eps must lie in (0, 1)")
    _validate_items(items)
    usable = [item for item in items if item.weight <= capacity]
    if not usable:
        return KnapsackSolution(keys=(), weight=0, profit=0)
    pmax = max(item.profit for item in usable)
    if pmax == 0:
        return KnapsackSolution(keys=(), weight=0, profit=0)
    n = len(usable)
    scale = eps * pmax / n
    if scale < 1.0:
        # Scaling would not reduce the profits: solve exactly over profits.
        scale = 1.0
    scaled = [
        KnapsackItem(key=item.key, weight=item.weight, profit=int(item.profit / scale))
        for item in usable
    ]
    # DP over scaled profit: minimal weight to reach each scaled profit
    # level, with an item-by-level ``take`` matrix for the reconstruction
    # (parent pointers instead of the former O(levels²) list copies).
    total_scaled = sum(item.profit for item in scaled)
    cap = total_scaled
    INF = np.iinfo(np.int64).max // 4
    # Rolling 1-D dp row: each iteration reads the *previous* row wholesale
    # (``shifted`` is built before ``dp`` is updated), so after item ``idx``
    # the row equals the classical 2-D ``dp[idx]`` and ``take[idx]`` records
    # exactly the per-item decision the reconstruction needs — the row
    # history itself is never read back.
    dp = np.full(cap + 1, INF, dtype=np.int64)
    dp[0] = 0
    take = np.zeros((n + 1, cap + 1), dtype=bool)
    for idx, item in enumerate(scaled, start=1):
        if item.profit > 0:
            shifted = np.full(cap + 1, INF, dtype=np.int64)
            shifted[item.profit :] = dp[: cap - item.profit + 1]
            feasible = shifted < INF
            candidate = np.where(feasible, shifted + item.weight, INF)
            better = candidate < dp
            dp[better] = candidate[better]
            take[idx][better] = True
        # Zero-scaled-profit items never raise a level's profit and only add
        # weight, so they are never taken.
    best_level = 0
    for level in range(cap + 1):
        if dp[level] <= capacity and level > best_level:
            best_level = level
    # Walk the parent pointers: ``take[idx, level]`` records whether the
    # minimal-weight set reaching ``level`` with the first ``idx`` items
    # contains item ``idx``; moving to ``level - profit`` restores the
    # sub-problem.
    keys: list[int] = []
    level = best_level
    for idx in range(n, 0, -1):
        if take[idx, level]:
            item = scaled[idx - 1]
            keys.append(item.key)
            level -= item.profit
    keys.reverse()
    key_set = set(keys)
    weight = sum(item.weight for item in items if item.key in key_set)
    profit = sum(item.profit for item in items if item.key in key_set)
    return KnapsackSolution(keys=tuple(keys), weight=weight, profit=profit)
