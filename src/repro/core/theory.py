"""Analytical quantities of the paper: guarantees, k*, k̂*, m*(μ), bounds.

This module gathers the closed-form quantities the paper states or uses:

* the overall guarantee ``√3`` obtained with ``λ = √3 − 1`` and ``μ = √3/2``
  (``1 + λ = 2μ = √3``);
* the malleable-list guarantee ``2 − 2/(m+1)`` of Theorem 1 and the largest
  machine for which it is already below √3;
* ``k*(μ)`` — the largest integer with ``k/(k+1) < μ``: by Property 1 a task
  whose canonical execution time is at most ``μ·d`` uses at most ``k*+1``
  processors (appendix A.1);
* ``k̂*(μ) = ⌈(k*+1)/2⌉`` — halving the allotment of such a task at most
  doubles its execution time, keeping it below ``2μ·d`` (the re-allocation
  trick of the appendix);
* ``m*(μ)`` — the minimal machine size for which Property 3 holds (every task
  of the first two levels of the canonical list schedule finishes before
  ``2μ·d``), plotted in Figure 8;
* the bound on the inefficiency factor of the optimal schedule derived in
  Section 4.2.

**Reconstruction note (Figure 8).**  The closed-form expression of ``m*(μ)``
in the appendix is largely illegible in the only available OCR of the paper.
:func:`m_star` therefore implements a *calibrated reconstruction*:
``m*(μ) = max(k*(μ) + 1, ⌊(2 − μ)/(1 − μ)⌋)``, which (a) grows like the
number of processors a sub-μ task may occupy, as the appendix argument does,
(b) reproduces the figure's range (≈5 at μ = 0.75 up to ≈21 at μ = 0.95) and
(c) matches exactly the refined anchor the paper states in clear text:
``m*(√3/2) = 8``.  ``EXPERIMENTS.md`` reports this caveat alongside the
regenerated curve, and :func:`m_star_empirical` provides an independent
instance-based estimate used as a cross-check in the FIG8 benchmark.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from ..model.instance import Instance
from .canonical_list import canonical_list_schedule, first_two_level_completion
from .list_scheduling import compute_levels

__all__ = [
    "SQRT3",
    "LAMBDA_STAR",
    "MU_STAR",
    "overall_guarantee",
    "malleable_list_guarantee",
    "largest_machine_below_sqrt3",
    "k_star",
    "k_hat",
    "m_star",
    "m_star_empirical",
    "inefficiency_bound",
]

SQRT3: float = math.sqrt(3.0)
LAMBDA_STAR: float = SQRT3 - 1.0
MU_STAR: float = SQRT3 / 2.0


def overall_guarantee() -> float:
    """The paper's headline worst-case performance guarantee, √3 ≈ 1.732."""
    return SQRT3


def malleable_list_guarantee(num_procs: int) -> float:
    """Theorem 1 guarantee ``2 − 2/(m+1)`` (re-exported for convenience)."""
    if num_procs < 1:
        raise ValueError("num_procs must be >= 1")
    return 2.0 - 2.0 / (num_procs + 1)


def largest_machine_below_sqrt3() -> int:
    """Largest ``m`` with ``2 − 2/(m+1) ≤ √3``.

    ``2 − 2/(m+1) ≤ √3 ⇔ m ≤ 2/(2−√3) − 1 ≈ 6.46``, hence 6: for machines of
    at most six processors the simple malleable list algorithm already
    achieves the √3 guarantee and the knapsack machinery is unnecessary.
    """
    m = 1
    while malleable_list_guarantee(m + 1) <= SQRT3:
        m += 1
    return m


def k_star(mu: float) -> int:
    """Largest integer ``k ≥ 0`` with ``k/(k+1) < μ``.

    By Property 1, a task whose canonical execution time is at most ``μ·d``
    cannot be canonically allotted more than ``k*(μ) + 1`` processors.
    """
    if not 0.5 < mu <= 1.0:
        raise ValueError("mu must lie in (1/2, 1]")
    if mu >= 1.0:
        # k/(k+1) < 1 for every k; the quantity is unbounded — cap it at the
        # largest value meaningful for the bound (never hit in practice since
        # the paper uses μ = √3/2 < 1).
        return 10**9
    limit = mu / (1.0 - mu)
    k = int(math.floor(limit))
    if abs(k - limit) < 1e-12:
        k -= 1
    return max(0, k)


def k_hat(mu: float) -> int:
    """``⌈(k*(μ)+1)/2⌉`` — the re-allocation width of the appendix."""
    return int(math.ceil((k_star(mu) + 1) / 2.0))


def m_star(mu: float) -> int:
    """Minimal machine size for Property 3 (Figure 8) — calibrated reconstruction.

    See the module docstring for the reconstruction caveat.  Exactly matches
    the paper's refined value ``m*(√3/2) = 8``.
    """
    if not 0.5 < mu < 1.0:
        raise ValueError("mu must lie in (1/2, 1)")
    size_bound = int(math.floor((2.0 - mu) / (1.0 - mu) + 1e-12))
    return max(k_star(mu) + 1, size_bound)


def m_star_empirical(
    mu: float,
    *,
    max_m: int = 64,
    trials_per_m: int = 40,
    seed: int = 0,
) -> int:
    """Empirical estimate of ``m*(μ)`` by adversarial search.

    For each machine size ``m`` (increasing), a battery of adversarial
    instances is generated that (i) provably admit a schedule of length 1
    (their canonical allotments fit side by side within the machine after a
    small re-allotment) and (ii) have canonical μ-area at most ``μ·m``.  The
    canonical list algorithm is run with guess 1 and Property 3 is checked:
    every task of the first two levels must finish by ``2μ``.  The returned
    value is the smallest ``m`` such that no violation was found for any
    ``m' ≥ m`` up to ``max_m`` — a *lower* bound on the true threshold (a
    finite search cannot prove the property), used as a cross-check of
    :func:`m_star` in the FIG8 benchmark.
    """
    from ..workloads.adversarial import property3_stress_instances

    if not 0.5 < mu < 1.0:
        raise ValueError("mu must lie in (1/2, 1)")
    rng = np.random.default_rng(seed)
    violating: list[int] = []
    for m in range(2, max_m + 1):
        violated = False
        for instance in property3_stress_instances(
            m, mu, trials=trials_per_m, rng=rng
        ):
            area = instance.mu_area(1.0)
            if area is None or area > mu * m + 1e-9:
                continue
            schedule = canonical_list_schedule(instance, 1.0)
            if schedule is None:
                continue
            if first_two_level_completion(schedule) > 2.0 * mu + 1e-9:
                violated = True
                break
        if violated:
            violating.append(m)
    if not violating:
        return 2
    return max(violating) + 1


def inefficiency_bound(
    lam: float, area_t1: float, area_t2: float, area_t3: float, num_procs: int
) -> float:
    """Upper bound on the inefficiency factor of the optimal schedule (§4.2).

    The paper bounds the expansion factor ρ of the set of T1 tasks executed
    in time at most ``d/2`` by the optimal schedule, in terms of the
    canonical areas ``V1, V2, V3`` of T1, T2, T3 and the machine size, under
    the standing assumption ``W_m ≥ (1+λ)·m/3`` of the knapsack branch:

        ρ ≤ ((3 − (1+λ))·m·d − 2·V2 − 2·V3) / (2·V1)

    (reconstructed from the partially legible derivation; only used for
    reporting, never for correctness).  The guess is normalised to ``d = 1``.
    """
    if area_t1 <= 0:
        return float("inf")
    numerator = (3.0 - (1.0 + lam)) * num_procs - 2.0 * area_t2 - 2.0 * area_t3
    return max(1.0, numerator / (2.0 * area_t1))
