"""Malleable List Algorithm (Section 3.1, Theorem 1).

Given a guess ``d`` such that a schedule of length at most ``d`` is assumed
to exist, the algorithm works in two phases with the threshold
``θ_m = 2 − 2/(m+1)``:

* **Allotment** — every task receives the minimal number of processors whose
  execution time is at most ``θ_m·d``.  Because ``θ_m ≥ 1`` this allotment is
  component-wise at most the canonical allotment of ``d`` used by an optimal
  schedule, so Property 2 bounds its total work by ``m·d``.
* **Scheduling** — every *parallel* task (two or more processors) starts at
  time 0; Property 1 gives each of them an execution time greater than
  ``θ_m·d/2``, so their total width is less than ``2m/θ_m = m+1``, i.e. at
  most ``m`` — they all fit side by side.  The remaining *sequential* tasks
  are scheduled with the LPT rule (longest processing time first) on the
  availability profile left by the parallel tasks.

Theorem 1 shows the result is a dual ``(2 − 2/(m+1))``-approximation.  The
factor is below √3 for every ``m ≤ 6``, which is why the combined scheduler
of Section 5 only needs the knapsack machinery on larger machines.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import SchedulingError
from ..lower_bounds import canonical_area_lower_bound, trivial_lower_bound
from ..model.allotment import Allotment
from ..model.instance import Instance
from ..model.schedule import Schedule
from ..model.task import EPS
from ..scheduler import Scheduler
from .dual import DualSearchResult, dual_search
from .list_scheduling import contiguous_list_schedule

__all__ = [
    "malleable_list_guarantee",
    "MalleableListDual",
    "MalleableListScheduler",
]


def malleable_list_guarantee(num_procs: int) -> float:
    """The dual-approximation factor ``θ_m = 2 − 2/(m+1)`` of Theorem 1."""
    if num_procs < 1:
        raise ValueError("num_procs must be >= 1")
    return 2.0 - 2.0 / (num_procs + 1)


class MalleableListDual:
    """Dual ``(2 − 2/(m+1))``-approximation of Section 3.1.

    The guarantee ``rho`` depends on the machine size, so it is a constant
    of the *(algorithm, instance)* pair, not of a particular ``run`` call:
    bind it with :meth:`for_instance` (or pass it to the constructor).
    ``run`` never mutates the object — it is safe to share one dual across
    threads and across the parallel experiment runner.  The default ``rho``
    of an unbound dual is the machine-independent upper bound 2.
    """

    def __init__(self, rho: float | None = None) -> None:
        #: guarantee factor ρ = θ_m = 2 − 2/(m+1); the machine-independent
        #: upper bound 2 when the dual is not bound to an instance.
        self.rho = rho if rho is not None else 2.0

    @classmethod
    def for_instance(cls, instance: Instance) -> "MalleableListDual":
        """A dual whose ``rho`` is the exact guarantee θ_m for ``instance``."""
        return cls(malleable_list_guarantee(instance.num_procs))

    def run(self, instance: Instance, guess: float) -> Schedule | None:
        """Return a schedule of length ≤ ``θ_m·guess`` or ``None`` (reject)."""
        if guess <= 0:
            return None
        m = instance.num_procs
        theta = malleable_list_guarantee(m)
        threshold = theta * guess
        # --- allotment phase (vectorized, memoized across guesses) -----------
        alloc = instance.engine.allotment(threshold)
        if alloc is None:
            # Even m processors cannot meet θ·d, hence cannot meet d either.
            return None
        # Property 2 rejection certificate: the allotment is component-wise at
        # most the canonical allotment of ``guess`` (θ ≥ 1), so if a schedule
        # of length ``guess`` existed its total work would be at most m·guess.
        if alloc.total_work > m * guess + EPS * max(1.0, guess):
            return None
        allotment = Allotment(instance, alloc.procs)
        # --- scheduling phase -------------------------------------------------
        parallel = [i for i in range(instance.num_tasks) if allotment[i] >= 2]
        sequential = [i for i in range(instance.num_tasks) if allotment[i] == 1]
        total_parallel_width = sum(allotment[i] for i in parallel)
        if total_parallel_width > m:
            # Theorem 1 proves this cannot happen when a schedule of length
            # ``guess`` exists (each parallel task is wider than θ·guess/2 in
            # time); reaching this point is therefore a sound rejection.
            return None
        schedule = Schedule(instance, algorithm="malleable-list")
        avail = np.zeros(m)
        cursor = 0
        for i in parallel:
            width = allotment[i]
            schedule.add(i, 0.0, cursor, width)
            avail[cursor : cursor + width] = instance.tasks[i].time(width)
            cursor += width
        # LPT on the remaining availability profile: longest sequential task
        # first, each on the earliest available single processor.
        sequential.sort(key=lambda i: -instance.tasks[i].time(1))
        for i in sequential:
            proc = int(np.argmin(avail))
            start = float(avail[proc])
            duration = instance.tasks[i].time(1)
            schedule.add(i, start, proc, 1)
            avail[proc] = start + duration
        schedule.validate()
        return schedule


class MalleableListScheduler(Scheduler):
    """Stand-alone scheduler wrapping :class:`MalleableListDual` in a search.

    Guarantee: ``(2 − 2/(m+1))(1+ε)``-approximation of the optimal makespan.
    """

    name = "malleable-list"

    def __init__(self, *, eps: float = 1e-3) -> None:
        self.eps = eps
        self.last_result: DualSearchResult | None = None

    def schedule(self, instance: Instance) -> Schedule:
        dual = MalleableListDual.for_instance(instance)
        result = dual_search(dual, instance, eps=self.eps)
        self.last_result = result
        result.schedule.validate()
        return result.schedule
