"""Monotonicity properties of Section 2.1 and the canonical μ-area.

These are the small facts every algorithm of the paper is built on:

* **Canonical number of processors** γ_i(d): the minimal number of processors
  executing task ``i`` within the deadline ``d``.  When it does not exist the
  guess ``d`` is infeasible.
* **Property 1** — if γ_i(d) exists then ``W_i(γ_i(d)) > (γ_i(d) − 1)·d``;
  in particular a task canonically allotted at least two processors runs for
  strictly more than ``(γ−1)/γ · d ≥ d/2``, and a task with canonical time at
  most ``d/2`` is sequential.
* **Property 2** — if a schedule of length at most ``d`` exists, then for any
  allotment ``q`` with ``q_i ≤ γ_i^{opt}`` component-wise (in particular the
  canonical allotment of any deadline ``≥ d``), ``Σ_i W_i(q_i) ≤ m·d``.
  Violation of this inequality by the canonical allotment of ``d`` is the
  rejection certificate of every dual algorithm in the package.
* **Definition 1** — the canonical μ-area ``W_m``, the fractional area
  computed by the first ``m`` processors when the canonical allotment is laid
  out on an unbounded machine in order of non-increasing canonical time.

Functions here are deliberately small and side-effect free; they are heavily
exercised by the property-based tests.
"""

from __future__ import annotations

from ..model.instance import Instance
from ..model.task import EPS, MalleableTask
from .allotment_engine import CanonicalAllotment

__all__ = [
    "CanonicalAllotment",
    "canonical_allotment",
    "property1_holds",
    "property2_bound_holds",
    "is_small_sequential",
    "mu_area",
]


def canonical_allotment(instance: Instance, deadline: float) -> CanonicalAllotment | None:
    """Compute γ(d) for every task, or ``None`` when some task cannot meet ``d``.

    Thin wrapper over the instance's memoized
    :class:`~repro.core.allotment_engine.AllotmentEngine`: the whole γ
    vector is one vectorized pass over the stacked profile matrix, and
    repeated deadlines (dual-search guesses, the θ·d and λ·d satellites of
    the √3 scheduler) are cache hits.
    """
    return instance.engine.allotment(deadline)


def property1_holds(task: MalleableTask, deadline: float, *, tol: float = 1e-9) -> bool:
    """Check Property 1 for a single task and deadline.

    ``W(γ(d)) >= (γ(d) − 1)·d`` (with strictness relaxed to a tolerance so
    that boundary profiles built from exact rationals do not fail).  Returns
    True vacuously when γ(d) does not exist.
    """
    p = task.canonical_procs(deadline)
    if p is None:
        return True
    return task.work(p) >= (p - 1) * deadline - tol * max(1.0, deadline)


def property2_bound_holds(
    instance: Instance, deadline: float, *, tol: float = 1e-9
) -> bool | None:
    """Property 2 test: ``Σ W_i(γ_i(d)) <= m·d``.

    Returns ``None`` when some γ_i(d) does not exist (which is itself an
    infeasibility certificate), ``True``/``False`` otherwise.  ``False``
    certifies that no schedule of length at most ``d`` exists.
    """
    alloc = canonical_allotment(instance, deadline)
    if alloc is None:
        return None
    return bool(
        alloc.total_work <= instance.num_procs * deadline + tol * max(1.0, deadline)
    )


def is_small_sequential(task: MalleableTask, deadline: float) -> bool:
    """Whether the canonical execution time is at most ``d/2``.

    By Property 1 such tasks are sequential (γ = 1); they are the set T3 of
    the two-shelf partition and the "small" tasks of Lemma 1.
    """
    t = task.canonical_time(deadline)
    return t is not None and t <= deadline / 2.0 + EPS


def mu_area(instance: Instance, deadline: float) -> float | None:
    """Canonical μ-area ``W_m`` of Definition 1 (delegates to the instance)."""
    return instance.mu_area(deadline)
