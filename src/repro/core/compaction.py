"""Schedule compaction (left-shifting) post-processing.

The two-shelf schedules of Section 4 are deliberately structured: every task
of the second shelf starts exactly at the guess ``d`` even when the
processors below it fall idle earlier.  The paper only needs the structure
for its worst-case argument, but in practice the idle wedge between the
shelves can be recovered by *left-shifting*: processing tasks in
non-decreasing start order, each task's start is reduced to the latest
completion time of the tasks below it on its processor block (or 0).

Left-shifting never increases the makespan and preserves the allotment and
the processor blocks, so every guarantee proved for the original schedule
still holds for the compacted one.  :class:`CompactedScheduler` wraps any
scheduler with this post-processing; the EXP-A harness uses the raw
schedulers so that the reported numbers match the paper's constructions, and
the ablation benchmark ``bench_ablation_compaction.py`` quantifies how much
the compaction recovers.
"""

from __future__ import annotations

from ..model.schedule import Schedule, ScheduledTask
from ..model.instance import Instance
from ..scheduler import Scheduler

__all__ = ["compact_schedule", "CompactedScheduler"]


def compact_schedule(schedule: Schedule, *, tol: float = 1e-12) -> Schedule:
    """Left-shift every task as far as its processor block allows.

    Tasks are processed in non-decreasing start order (ties broken by the
    original start and processor); each keeps its processor block and
    allotment, and its new start is the maximum completion time of the
    already-shifted tasks that share a processor with it (0 if none).  The
    result is validated before being returned.
    """
    entries = sorted(schedule.entries, key=lambda e: (e.start, e.first_proc))
    m = schedule.instance.num_procs
    finish = [0.0] * m
    compacted = Schedule(schedule.instance, algorithm=schedule.algorithm or "compacted")
    for entry in entries:
        block = range(entry.first_proc, entry.first_proc + entry.num_procs)
        new_start = max((finish[p] for p in block), default=0.0)
        new_start = max(0.0, new_start)
        compacted.extend(
            [
                ScheduledTask(
                    task_index=entry.task_index,
                    start=new_start,
                    first_proc=entry.first_proc,
                    num_procs=entry.num_procs,
                    duration=entry.duration,
                )
            ]
        )
        for p in block:
            finish[p] = new_start + entry.duration
    compacted.validate(require_complete=schedule.is_complete())
    # Left-shifting can only help; guard against numerical surprises.
    assert compacted.makespan() <= schedule.makespan() + tol
    return compacted


class CompactedScheduler(Scheduler):
    """Wrap any scheduler and left-shift its output."""

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner
        self.name = f"{inner.name}+compact"

    def schedule(self, instance: Instance) -> Schedule:
        return compact_schedule(self.inner.schedule(instance))
