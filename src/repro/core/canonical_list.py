"""Canonical List Algorithm (Section 3.2, Theorem 2).

Given a guess ``d`` such that a schedule of length at most ``d`` is assumed
to exist:

* **Allotment** — every task receives its *canonical* number of processors
  γ_i(d), the minimal allotment meeting the deadline ``d``.  In any optimal
  schedule of length ≤ d each task uses at least γ_i(d) processors, so
  Property 2 bounds the canonical work by ``m·d``.
* **Scheduling** — the rigid tasks are list-scheduled in order of
  non-increasing canonical execution time, each on the contiguous block of
  processors minimising its start time, with the paper's tie-breaking rule
  (leftmost when starting at time 0, rightmost otherwise).

Theorem 2: if the instance admits a schedule of length ≤ d on ``m ≥ m*(μ)``
processors and the canonical μ-area satisfies ``W_m ≤ μ·m·d``, then the
schedule produced has length at most ``2μ·d`` — with ``μ = √3/2`` this is the
√3 guarantee.  The structural ingredients (Property 3: first-two-level tasks
finish by 2μ·d; Lemma 1: every other task is a small sequential task
finishing by 2μ·d) are exposed for the tests and the figure benchmarks
through :func:`first_two_level_completion` and
:func:`outside_levels_are_small_sequential`.

The implementation never relies on Theorem 2 for soundness: the caller
(:class:`repro.core.mrt.MRTDual`) simply measures the produced makespan and
only accepts the guess when it is within the target factor.
"""

from __future__ import annotations

import math

from ..lower_bounds import canonical_area_lower_bound, trivial_lower_bound
from ..model.allotment import Allotment
from ..model.instance import Instance
from ..model.schedule import Schedule
from ..model.task import EPS
from ..scheduler import Scheduler
from .dual import DualSearchResult, dual_search
from .list_scheduling import compute_levels, contiguous_list_schedule
from .properties import canonical_allotment

__all__ = [
    "MU_STAR",
    "canonical_list_schedule",
    "CanonicalListDual",
    "CanonicalListScheduler",
    "first_two_level_completion",
    "outside_levels_are_small_sequential",
]

#: The paper's choice of μ: 2μ = √3.
MU_STAR: float = math.sqrt(3.0) / 2.0


def canonical_list_schedule(instance: Instance, guess: float) -> Schedule | None:
    """Run the canonical list algorithm for the guess ``d``.

    Returns ``None`` when some task cannot meet the deadline on ``m``
    processors (γ_i(d) does not exist) — a sound infeasibility certificate.
    The produced schedule is always valid; its *length* is only guaranteed to
    be ≤ 2μ·d under the hypotheses of Theorem 2, which the caller must check.
    """
    if guess <= 0:
        return None
    alloc = canonical_allotment(instance, guess)
    if alloc is None:
        return None
    allotment = Allotment(instance, alloc.procs)
    order = sorted(
        range(instance.num_tasks), key=lambda i: (-alloc.times[i], i)
    )
    schedule = contiguous_list_schedule(
        allotment, order, algorithm="canonical-list"
    )
    schedule.validate()
    return schedule


def first_two_level_completion(schedule: Schedule) -> float:
    """Latest completion time among tasks of the first two levels (Property 3)."""
    levels = compute_levels(schedule)
    times = [
        entry.end
        for entry in schedule.entries
        if levels.get(entry.task_index, 1) <= 2
    ]
    return max(times, default=0.0)


def outside_levels_are_small_sequential(
    schedule: Schedule, guess: float, *, tol: float = 1e-9
) -> bool:
    """Lemma 1 check: tasks outside the first two levels are sequential and short.

    Every such task must be allotted one processor and have execution time at
    most ``guess/2``.  (Lemma 1 additionally bounds their completion time by
    2μ·guess, which is covered by the overall makespan check.)
    """
    levels = compute_levels(schedule)
    for entry in schedule.entries:
        if levels.get(entry.task_index, 1) <= 2:
            continue
        if entry.num_procs != 1:
            return False
        if entry.duration > guess / 2.0 + tol * max(1.0, guess):
            return False
    return True


class CanonicalListDual:
    """Dual 2μ-approximation built from the canonical list algorithm.

    ``run`` accepts a guess only when the produced schedule is within
    ``2μ·guess``; otherwise it rejects.  Under the hypotheses of Theorem 2 a
    rejection certifies infeasibility; outside them it merely steers the
    dichotomic search (see the module docstring of :mod:`repro.core.mrt`).
    """

    def __init__(self, mu: float = MU_STAR) -> None:
        if not 0.5 < mu <= 1.0:
            raise ValueError("mu must lie in (1/2, 1]")
        self.mu = mu
        self.rho = 2.0 * mu

    def run(self, instance: Instance, guess: float) -> Schedule | None:
        schedule = canonical_list_schedule(instance, guess)
        if schedule is None:
            return None
        target = self.rho * guess
        if schedule.makespan() > target + EPS * max(1.0, target):
            return None
        return schedule


class CanonicalListScheduler(Scheduler):
    """Stand-alone scheduler: canonical list algorithm + dichotomic search.

    Because the canonical-list dual may reject feasible guesses when the
    hypotheses of Theorem 2 do not hold, this scheduler falls back to the
    malleable-list schedule of the same guess whenever that one is shorter,
    so it always terminates with a valid schedule (guarantee ≤ 2).  It is
    primarily used to study the list branch in isolation (experiments FIG2,
    FIG7, THM2); the paper's full algorithm is
    :class:`repro.core.mrt.MRTScheduler`.
    """

    name = "canonical-list"

    def __init__(self, *, mu: float = MU_STAR, eps: float = 1e-3) -> None:
        self.mu = mu
        self.eps = eps
        self.last_result: DualSearchResult | None = None

    def schedule(self, instance: Instance) -> Schedule:
        from .malleable_list import MalleableListDual  # local import, no cycle

        dual = CanonicalListDual(self.mu)
        fallback = MalleableListDual.for_instance(instance)

        class _Combined:
            rho = dual.rho

            @staticmethod
            def run(inst: Instance, guess: float) -> Schedule | None:
                primary = dual.run(inst, guess)
                if primary is not None:
                    return primary
                # Fall back to the malleable list algorithm so that large
                # guesses are always accepted and the search terminates.
                secondary = fallback.run(inst, guess)
                if secondary is not None and secondary.makespan() <= max(
                    dual.rho, fallback.rho
                ) * guess * (1 + 1e-12):
                    return secondary
                return None

        result = dual_search(_Combined(), instance, eps=self.eps)
        self.last_result = result
        result.schedule.validate()
        return result.schedule
