"""Dual approximation framework (Section 2.2, Hochbaum & Shmoys).

A *dual ρ-approximation* is an algorithm that, given a guess ``d`` on the
optimal makespan, either

* returns a schedule of length at most ``ρ·d``, or
* rejects, certifying that no schedule of length at most ``d`` exists.

A dichotomic search over ``d`` converts a dual ρ-approximation into a
``ρ(1+ε)``-approximation: the search interval is initialised with a lower
bound and a feasible upper bound on the optimum and halved until its relative
width drops below ε.  :func:`dual_search` implements that conversion for any
object following the :class:`DualApproximation` protocol and records the full
trace of guesses for the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from ..exceptions import SearchError
from ..lower_bounds import canonical_area_lower_bound, trivial_lower_bound
from ..model.instance import Instance
from ..model.schedule import Schedule

__all__ = ["DualApproximation", "GuessOutcome", "DualSearchResult", "dual_search"]


@runtime_checkable
class DualApproximation(Protocol):
    """Protocol of a dual approximation algorithm."""

    #: Guarantee factor ρ: an accepted guess ``d`` yields a schedule ``<= ρ·d``.
    rho: float

    def run(self, instance: Instance, guess: float) -> Schedule | None:
        """Return a schedule of length at most ``rho * guess`` or ``None`` (reject)."""


@dataclass(frozen=True)
class GuessOutcome:
    """One step of the dichotomic search."""

    guess: float
    accepted: bool
    makespan: float | None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "accept" if self.accepted else "reject"
        extra = f", makespan={self.makespan:.4g}" if self.makespan is not None else ""
        return f"GuessOutcome(d={self.guess:.4g}, {state}{extra})"


@dataclass
class DualSearchResult:
    """Outcome of :func:`dual_search`.

    Attributes
    ----------
    schedule:
        Best (shortest) schedule produced over all accepted guesses.
    best_guess:
        The smallest accepted guess.
    lower_bound:
        The lower bound used to initialise the search; the final guarantee of
        the calling scheduler is ``schedule.makespan() / optimum`` which is at
        most ``rho * (1 + eps)`` whenever rejections are sound.
    trace:
        The sequence of guesses explored, in order.
    """

    schedule: Schedule
    best_guess: float
    lower_bound: float
    trace: list[GuessOutcome] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        """Number of guesses explored."""
        return len(self.trace)


def dual_search(
    dual: DualApproximation,
    instance: Instance,
    *,
    eps: float = 1e-3,
    lower_bound: float | None = None,
    upper_bound: float | None = None,
    max_iter: int = 200,
) -> DualSearchResult:
    """Convert a dual approximation into an approximation by dichotomic search.

    Parameters
    ----------
    dual:
        The dual algorithm (must expose ``rho`` and ``run``).
    instance:
        The instance to schedule.
    eps:
        Relative precision of the search; the returned schedule has length at
        most ``rho * (1 + eps) * OPT`` provided the dual's rejections are
        sound.
    lower_bound, upper_bound:
        Optional overrides of the search interval.  By default the lower
        bound is the Property-2 lower bound and the upper bound is
        ``Σ t_i(1)`` (always accepted: at that guess every task is sequential
        and a trivial LPT schedule fits, so any sensible dual accepts).
    max_iter:
        Safety cap on the number of dichotomic iterations.

    Raises
    ------
    SearchError
        If no guess in the interval is accepted (which indicates a broken
        dual algorithm, since the upper bound is always feasible).
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    lb = lower_bound if lower_bound is not None else max(
        trivial_lower_bound(instance), canonical_area_lower_bound(instance)
    )
    ub = upper_bound if upper_bound is not None else instance.upper_bound()
    ub = max(ub, lb)
    trace: list[GuessOutcome] = []
    best_schedule: Schedule | None = None
    best_guess = ub

    def attempt(guess: float) -> bool:
        nonlocal best_schedule, best_guess
        schedule = dual.run(instance, guess)
        if schedule is None:
            trace.append(GuessOutcome(guess, False, None))
            return False
        cmax = schedule.makespan()
        trace.append(GuessOutcome(guess, True, cmax))
        if best_schedule is None or cmax < best_schedule.makespan():
            best_schedule = schedule
        best_guess = min(best_guess, guess)
        return True

    # Make sure the upper end is accepted before bisecting.
    hi = ub
    if not attempt(hi):
        grown = hi
        accepted = False
        for _ in range(20):
            grown *= 2.0
            if attempt(grown):
                hi = grown
                accepted = True
                break
        if not accepted:
            raise SearchError(
                f"dual algorithm {type(dual).__name__} rejected every guess up to "
                f"{grown:.4g}; the instance upper bound {ub:.4g} should be feasible"
            )
    lo = lb
    if attempt(lo):
        hi = lo
    iterations = 0
    while hi - lo > eps * max(lo, 1e-12) and iterations < max_iter:
        mid = 0.5 * (lo + hi)
        if attempt(mid):
            hi = mid
        else:
            lo = mid
        iterations += 1
    assert best_schedule is not None  # guaranteed by the accepted upper end
    return DualSearchResult(
        schedule=best_schedule,
        best_guess=best_guess,
        lower_bound=lb,
        trace=trace,
    )
