"""Vectorized, memoized canonical-allotment engine.

Every algorithm of the paper evaluates the canonical allotment γ(d) — the
component-wise minimal processor counts meeting a deadline ``d`` — over and
over: the dichotomic searches probe dozens of guesses, each branch of the
√3 scheduler re-derives γ at a scaled deadline (θ·d for the malleable list,
λ·d for the second shelf), and the Property-2 lower bound runs its own
search.  Doing this task-by-task in Python is the dominant cost of the
package.

The :class:`AllotmentEngine` replaces the scalar loops with two ideas:

* **Vectorization** — the instance's execution-time profiles are stacked
  into one ``(n, m)`` float64 matrix, so γ(d) for *all* tasks is a single
  boolean comparison plus a row-wise ``argmax`` (the first processor count
  meeting the deadline).  Canonical times, works, the Property-2 total, the
  μ-area of Definition 1 and the T1/T2/T3 thresholds of the two-shelf
  partition all derive from the same pass.
* **Memoization** — results are cached per engine in a small LRU keyed on
  the *quantized* deadline (:func:`quantize_deadline`, 12 significant
  digits).  The dichotomic searches of the schedulers and of the lower
  bound revisit exactly the same guesses (the lower bound is recomputed by
  ``dual_search``, ``MRTScheduler`` and ``best_lower_bound`` alike), so
  repeated evaluations become dictionary hits.

The engine is deliberately model-agnostic: it only sees the stacked
matrices, so it can be unit-tested against the scalar reference
implementation in :mod:`repro.model.task` without circular imports.
:class:`repro.model.instance.Instance` owns one lazily created engine per
instance (dropped on pickling, rebuilt on demand in worker processes).

Semantics match the scalar path exactly, including for *non-monotonic*
profiles: γ_i(d) is the first ``p`` with ``t_i(p) <= d + EPS`` (a linear
scan in the scalar code, a masked ``argmax`` here), and ``d <= 0`` is
uniformly infeasible.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..exceptions import ModelError
from ..model.task import EPS

__all__ = [
    "CanonicalAllotment",
    "GammaProfile",
    "PartitionSplit",
    "AllotmentEngine",
    "quantize_deadline",
]

#: Number of significant digits of the cache key.  Guesses produced by the
#: dichotomic searches differ by far more than 1e-12 relatively (the finest
#: search tolerance is 1e-9), so quantization merges only genuinely repeated
#: deadlines and never conflates two distinct probes of the same search.
_SIG_DIGITS = 12

#: Default number of distinct deadlines remembered per engine.  A full
#: ``MRTScheduler.schedule`` call probes well under 100 distinct guesses
#: (lower-bound search + dichotomic search + the λ·d / θ·d satellites).
_DEFAULT_CACHE_SIZE = 512


def quantize_deadline(deadline: float) -> float:
    """Quantize ``deadline`` to 12 significant digits (the cache key).

    The quantized value is only used as a dictionary key; computations use
    the caller's exact float, so a cache miss always reproduces the scalar
    reference bit-for-bit.
    """
    d = float(deadline)
    if d == 0.0 or not np.isfinite(d):
        return d
    return float(f"{d:.{_SIG_DIGITS}e}")


@dataclass(frozen=True)
class CanonicalAllotment:
    """Canonical allotment γ(d) of an instance for a deadline ``d``.

    Attributes
    ----------
    deadline:
        The guess ``d`` the allotment refers to.
    procs:
        ``procs[i] = γ_i(d)``.
    times:
        ``times[i] = t_i(γ_i(d))`` — the canonical execution times.
    works:
        ``works[i] = γ_i(d) · t_i(γ_i(d))`` — the canonical works/areas.
    """

    deadline: float
    procs: np.ndarray
    times: np.ndarray
    works: np.ndarray

    @property
    def total_work(self) -> float:
        """``Σ_i W_i(γ_i(d))``."""
        return float(self.works.sum())

    @property
    def total_procs(self) -> int:
        """``Σ_i γ_i(d)``."""
        return int(self.procs.sum())

    def __len__(self) -> int:
        return int(self.procs.size)


class GammaProfile:
    """Per-deadline vectorized view of γ(d), including infeasible tasks.

    Unlike :class:`CanonicalAllotment` (which only exists when *every* task
    meets the deadline), a profile is always defined: tasks that cannot meet
    the deadline carry ``procs = 0`` and ``times = works = +inf``.  The
    two-shelf partition needs this per-task view at the second-shelf
    deadline λ·d, where individual tasks may legitimately be unreachable
    (they are then pinned to the first shelf).
    """

    __slots__ = (
        "deadline",
        "procs",
        "times",
        "works",
        "mask",
        "feasible",
        "total_work",
        "_allotment",
        "_mu_area",
    )

    def __init__(
        self,
        deadline: float,
        procs: np.ndarray,
        times: np.ndarray,
        works: np.ndarray,
        mask: np.ndarray,
    ) -> None:
        self.deadline = float(deadline)
        self.procs = procs
        self.times = times
        self.works = works
        self.mask = mask
        self.feasible = bool(mask.all())
        self.total_work = float(works.sum()) if self.feasible else float("inf")
        self._allotment: CanonicalAllotment | None = None
        self._mu_area: float | None = None

    def allotment(self) -> CanonicalAllotment | None:
        """The :class:`CanonicalAllotment`, or ``None`` when some γ_i is missing."""
        if not self.feasible:
            return None
        if self._allotment is None:
            self._allotment = CanonicalAllotment(
                deadline=self.deadline,
                procs=self.procs,
                times=self.times,
                works=self.works,
            )
        return self._allotment

    def procs_list(self) -> list[int | None]:
        """γ per task with ``None`` for unreachable tasks (scalar-API shape)."""
        return [int(p) if ok else None for p, ok in zip(self.procs, self.mask)]


@dataclass(frozen=True)
class PartitionSplit:
    """Vectorized T1/T2/T3 threshold split for a guess ``d`` and parameter λ.

    ``t1``/``t2``/``t3`` are sorted task-index arrays: canonical time
    greater than λ·d, in (d/2, λ·d], and at most d/2 respectively.
    ``shelf2_procs[i] = γ_i(λ·d)`` with 0 where the second shelf is
    unreachable (only meaningful for tasks of T1).
    """

    guess: float
    lam: float
    alloc: CanonicalAllotment
    t1: np.ndarray
    t2: np.ndarray
    t3: np.ndarray
    shelf2_procs: np.ndarray


class AllotmentEngine:
    """Vectorized γ(d) evaluation over an instance's stacked profile matrix.

    Parameters
    ----------
    times_matrix:
        ``times_matrix[i, p-1] = t_i(p)`` for every task ``i`` and processor
        count ``p`` in ``1..m`` — rectangular because instances truncate all
        profiles to exactly ``m`` columns.
    works_matrix:
        ``works_matrix[i, p-1] = p · t_i(p)``; derived from ``times_matrix``
        when omitted.
    cache_size:
        Number of distinct (quantized) deadlines remembered.
    """

    __slots__ = (
        "_times",
        "_works",
        "_m",
        "_n",
        "_cache",
        "_cache_size",
        "_lock",
        "hits",
        "misses",
    )

    def __init__(
        self,
        times_matrix: np.ndarray,
        works_matrix: np.ndarray | None = None,
        *,
        cache_size: int = _DEFAULT_CACHE_SIZE,
    ) -> None:
        times = np.ascontiguousarray(times_matrix, dtype=np.float64)
        if times.ndim != 2 or times.size == 0:
            raise ModelError("times_matrix must be a non-empty (n, m) matrix")
        if works_matrix is None:
            works = times * np.arange(1, times.shape[1] + 1, dtype=np.float64)
        else:
            works = np.ascontiguousarray(works_matrix, dtype=np.float64)
            if works.shape != times.shape:
                raise ModelError("works_matrix must have the same shape as times_matrix")
        self._times = times
        self._works = works
        self._n, self._m = times.shape
        self._cache: OrderedDict[float, GammaProfile] = OrderedDict()
        self._cache_size = int(cache_size)
        # The LRU bookkeeping (get + move_to_end + popitem) is not atomic;
        # the experiment runner's thread-pool fallback shares one engine per
        # instance across concurrent runs, so guard it with a lock.
        self._lock = threading.Lock()
        #: cache statistics (exposed for the speedup benchmark and tests)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_tasks(self) -> int:
        """Number of tasks ``n`` (rows of the profile matrix)."""
        return self._n

    @property
    def num_procs(self) -> int:
        """Number of processors ``m`` (columns of the profile matrix)."""
        return self._m

    @property
    def times_matrix(self) -> np.ndarray:
        """The stacked execution-time matrix ``times[i, p-1] = t_i(p)``."""
        return self._times

    @property
    def works_matrix(self) -> np.ndarray:
        """The stacked work matrix ``works[i, p-1] = p · t_i(p)``."""
        return self._works

    def cache_info(self) -> dict[str, int]:
        """Cache statistics: hits, misses, current size and capacity."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._cache),
            "maxsize": self._cache_size,
        }

    def clear_cache(self) -> None:
        """Drop every memoized profile and reset the statistics."""
        with self._lock:
            self._cache.clear()
            self.hits = 0
            self.misses = 0

    # ------------------------------------------------------------------ #
    # the vectorized pass
    # ------------------------------------------------------------------ #
    def _compute(self, deadline: float) -> GammaProfile:
        if deadline <= 0:
            # Matches the scalar path: non-positive guesses are uniformly
            # infeasible regardless of the profiles.
            mask = np.zeros(self._n, dtype=bool)
            procs = np.zeros(self._n, dtype=np.int64)
            times = np.full(self._n, np.inf)
            works = np.full(self._n, np.inf)
            for arr in (procs, times, works):
                arr.setflags(write=False)
            return GammaProfile(deadline, procs, times, works, mask)
        fits = self._times <= deadline + EPS
        mask = fits.any(axis=1)
        # ``argmax`` on a boolean row returns the first True — exactly the
        # minimal p with t(p) <= d + EPS, for monotonic and non-monotonic
        # profiles alike (the scalar code linear-scans the latter).
        first = fits.argmax(axis=1)
        rows = np.arange(self._n)
        procs = np.where(mask, first + 1, 0).astype(np.int64)
        times = np.where(mask, self._times[rows, first], np.inf)
        works = np.where(mask, self._works[rows, first], np.inf)
        for arr in (procs, times, works):
            arr.setflags(write=False)
        return GammaProfile(deadline, procs, times, works, mask)

    def gamma(self, deadline: float) -> GammaProfile:
        """The (memoized) vectorized γ profile for ``deadline``.

        Thread-safe: concurrent callers may redundantly compute the same
        profile (the vectorized pass is cheap and side-effect free) but the
        cache structure itself is never corrupted.
        """
        key = quantize_deadline(deadline)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self.hits += 1
                self._cache.move_to_end(key)
                return cached
            self.misses += 1
        profile = self._compute(float(deadline))
        with self._lock:
            self._cache[key] = profile
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return profile

    # ------------------------------------------------------------------ #
    # derived quantities (each a thin view over the memoized pass)
    # ------------------------------------------------------------------ #
    def allotment(self, deadline: float) -> CanonicalAllotment | None:
        """γ(d) for every task, or ``None`` when some task cannot meet ``d``."""
        return self.gamma(deadline).allotment()

    def canonical_procs(self, deadline: float) -> list[int | None]:
        """γ_i(d) per task (``None`` when unreachable)."""
        return self.gamma(deadline).procs_list()

    def total_work(self, deadline: float) -> float | None:
        """Property-2 total ``Σ_i W_i(γ_i(d))``, or ``None`` when infeasible."""
        profile = self.gamma(deadline)
        return profile.total_work if profile.feasible else None

    def property2_holds(self, deadline: float, *, tol: float = EPS) -> bool:
        """Whether the guess survives the Property-2 test ``Σ W ≤ m·d``."""
        profile = self.gamma(deadline)
        if not profile.feasible:
            return False
        return profile.total_work <= self._m * deadline + tol * max(1.0, deadline)

    def mu_area(self, deadline: float) -> float | None:
        """Canonical μ-area ``W_m`` of Definition 1 (memoized per deadline).

        The canonical tasks are laid out on an unbounded machine in order of
        non-increasing canonical time (stable on ties, like the scalar sort)
        and the area seen by the first ``m`` processors is accumulated.
        """
        profile = self.gamma(deadline)
        if not profile.feasible:
            return None
        if profile._mu_area is None:
            order = np.argsort(-profile.times, kind="stable")
            p_sorted = profile.procs[order]
            cum = np.cumsum(p_sorted)
            k = int(np.searchsorted(cum, self._m, side="left"))
            w_sorted = profile.works[order]
            if k >= self._n:
                area = float(w_sorted.sum())
            else:
                used = int(cum[k - 1]) if k > 0 else 0
                area = float(w_sorted[:k].sum()) + (self._m - used) * float(
                    profile.times[order[k]]
                )
            profile._mu_area = area
        return profile._mu_area

    def partition_split(
        self, guess: float, lam: float
    ) -> PartitionSplit | None:
        """T1/T2/T3 threshold split of Section 4.1, fully vectorized.

        Returns ``None`` when γ(d) does not exist.  The second-shelf
        allotments γ_i(λ·d) come from the memoized profile at λ·d, so the
        λ-branch of the √3 scheduler shares them across its own dichotomic
        probes.
        """
        alloc = self.allotment(guess)
        if alloc is None:
            return None
        shelf2_deadline = lam * guess
        shelf2 = self.gamma(shelf2_deadline)
        t1_mask = alloc.times > shelf2_deadline + EPS
        t2_mask = ~t1_mask & (alloc.times > guess / 2.0 + EPS)
        t3_mask = ~t1_mask & ~t2_mask
        return PartitionSplit(
            guess=float(guess),
            lam=float(lam),
            alloc=alloc,
            t1=np.flatnonzero(t1_mask),
            t2=np.flatnonzero(t2_mask),
            t3=np.flatnonzero(t3_mask),
            shelf2_procs=shelf2.procs,
        )
