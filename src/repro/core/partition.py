"""Canonical partition of the tasks used by the knapsack-based algorithm (§4.1).

For a guess ``d`` (the assumed optimal makespan) and a shelf parameter
``λ ∈ (1/2, 1]`` the tasks are partitioned by their *canonical* execution
time ``t_i(γ_i(d))``:

* ``T1`` — canonical time greater than ``λ·d``.  These tasks fit the first
  shelf (height ``d``) at their canonical allotment but need *strictly more*
  processors (``d_i = γ_i(λ·d)``) to enter the second shelf (height ``λ·d``).
* ``T2`` — canonical time in ``(d/2, λ·d]``.  They fit the second shelf at
  their canonical allotment.
* ``T3`` — canonical time at most ``d/2``.  By Property 1 these tasks are
  sequential; they are packed onto processors with First Fit.

The partition also records the quantities used throughout Section 4:
``q1 = Σ_{T1} γ_i``, ``q2 = Σ_{T2} γ_i``, ``q3 = FF(λ·d, T3)`` (processors
needed by First Fit for the small tasks under the second-shelf deadline) and
the canonical areas of the three sets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ModelError
from ..model.instance import Instance
from ..packing.bin_packing import BinPackingResult, first_fit
from .properties import CanonicalAllotment

__all__ = ["LAMBDA_STAR", "CanonicalPartition", "build_partition", "inefficiency_factor"]

#: The paper's choice of the second-shelf parameter: 1 + λ = √3.
LAMBDA_STAR: float = math.sqrt(3.0) - 1.0


def inefficiency_factor(work_parallel: float, work_canonical: float) -> float:
    """Inefficiency factor ``μ = work(q) / work(γ)`` of Section 4.2.

    The expansion of a task's area when it is executed on more processors
    than its canonical number (both areas are measured for the same guess).
    Always at least 1 for monotonic tasks.
    """
    if work_canonical <= 0:
        raise ModelError("canonical work must be positive")
    return work_parallel / work_canonical


@dataclass
class CanonicalPartition:
    """The T1/T2/T3 partition of an instance for a guess ``d`` and parameter λ.

    Attributes
    ----------
    instance, guess, lam:
        The inputs of the partition.
    alloc:
        The canonical allotment γ(d) of every task.
    t1, t2, t3:
        Task indices of the three classes (sorted).
    shelf2_procs:
        ``shelf2_procs[i] = d_i`` for tasks of ``T1`` — the minimal processors
        executing task ``i`` within ``λ·d`` — or ``None`` when even ``m``
        processors are not enough (the task is then pinned to the first
        shelf).
    q1, q2, q3:
        Processor counts of Section 4.1.
    small_packing:
        The First-Fit packing of the T3 durations under capacity ``λ·d``.
    """

    instance: Instance
    guess: float
    lam: float
    alloc: CanonicalAllotment
    t1: list[int] = field(default_factory=list)
    t2: list[int] = field(default_factory=list)
    t3: list[int] = field(default_factory=list)
    shelf2_procs: dict[int, int | None] = field(default_factory=dict)
    q1: int = 0
    q2: int = 0
    q3: int = 0
    small_packing: BinPackingResult | None = None
    _shelf1_packing: BinPackingResult | None = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    # canonical areas of the three sets (used by the theory module)
    # ------------------------------------------------------------------ #
    def canonical_area(self, indices: list[int]) -> float:
        """Total canonical work of the tasks at ``indices``."""
        return float(sum(self.alloc.works[i] for i in indices))

    @property
    def area_t1(self) -> float:
        """Canonical area of T1."""
        return self.canonical_area(self.t1)

    @property
    def area_t2(self) -> float:
        """Canonical area of T2."""
        return self.canonical_area(self.t2)

    @property
    def area_t3(self) -> float:
        """Canonical area of T3."""
        return self.canonical_area(self.t3)

    @property
    def free_shelf2(self) -> int:
        """Processors of the second shelf left free by T2 and T3: ``m − q2 − q3``."""
        return self.instance.num_procs - self.q2 - self.q3

    def required_gamma(self) -> int:
        """Minimal ``Σ_S γ_i`` a subset S ⊆ T1 moved to shelf 2 must reach.

        Shelf 1 holds the tasks of T1 not in S at their canonical allotment,
        so feasibility requires ``q1 − Σ_S γ_i ≤ m``.
        """
        return max(0, self.q1 - self.instance.num_procs)

    def knapsack_items(self) -> list[tuple[int, int, int]]:
        """Items of the knapsack (KS): ``(task_index, weight=d_i, profit=γ_i)``.

        Tasks of T1 whose ``d_i`` does not exist are pinned to shelf 1 and
        excluded.
        """
        items = []
        for i in self.t1:
            d_i = self.shelf2_procs[i]
            if d_i is not None:
                items.append((i, d_i, int(self.alloc.procs[i])))
        return items

    def pinned_to_shelf1(self) -> list[int]:
        """Tasks of T1 that cannot fit the second shelf on any allotment."""
        return [i for i in self.t1 if self.shelf2_procs[i] is None]

    def first_shelf_packing(self) -> BinPackingResult | None:
        """First-Fit packing of the T3 durations under the *first-shelf* deadline.

        The trivial-solution configuration of Section 4.5 packs T3 under the
        full deadline ``d`` (unlike :attr:`small_packing`, which packs under
        the second-shelf deadline ``λ·d``).  Cached and shared by
        :func:`repro.core.two_shelves.find_trivial_solution` and
        :func:`repro.core.two_shelves.build_trivial_schedule`, so the
        feasibility test and the builder can never disagree on the number of
        processors the small tasks occupy.  ``None`` when T3 is empty.
        """
        if not self.t3:
            return None
        if self._shelf1_packing is None:
            sizes = [float(self.alloc.times[i]) for i in self.t3]
            self._shelf1_packing = first_fit(sizes, self.guess)
        return self._shelf1_packing


def build_partition(
    instance: Instance, guess: float, lam: float = LAMBDA_STAR
) -> CanonicalPartition | None:
    """Build the T1/T2/T3 partition, or ``None`` when some γ_i(d) does not exist.

    The threshold split and both canonical allotments (at ``guess`` and at
    ``λ·guess``) come from the instance's memoized vectorized engine, so the
    dichotomic search of the √3 scheduler re-derives nothing across its
    probes of the same guess.
    """
    if guess <= 0:
        return None
    if not 0.5 < lam <= 1.0:
        raise ModelError("lambda must lie in (1/2, 1]")
    split = instance.engine.partition_split(guess, lam)
    if split is None:
        return None
    alloc = split.alloc
    part = CanonicalPartition(instance=instance, guess=guess, lam=lam, alloc=alloc)
    part.t1 = [int(i) for i in split.t1]
    part.t2 = [int(i) for i in split.t2]
    part.t3 = [int(i) for i in split.t3]
    part.shelf2_procs = {
        i: (int(split.shelf2_procs[i]) or None) for i in part.t1
    }
    shelf2_deadline = lam * guess
    part.q1 = int(alloc.procs[split.t1].sum()) if part.t1 else 0
    part.q2 = int(alloc.procs[split.t2].sum()) if part.t2 else 0
    small_sizes = [float(alloc.times[i]) for i in part.t3]
    if small_sizes:
        part.small_packing = first_fit(small_sizes, shelf2_deadline)
        part.q3 = part.small_packing.num_bins
    else:
        part.small_packing = None
        part.q3 = 0
    return part
