"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so that callers can catch
every error raised by the reproduction with a single ``except`` clause while
still being able to distinguish modelling errors (bad input data) from
algorithmic failures (a scheduler unable to honour its contract).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "MonotonicityError",
    "InvalidScheduleError",
    "InfeasibleError",
    "SchedulingError",
    "SearchError",
    "ServiceOverloadedError",
    "ClusterError",
]


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` package."""


class ModelError(ReproError, ValueError):
    """Invalid model input: malformed task profile, instance or allotment."""


class MonotonicityError(ModelError):
    """A malleable task violates the monotonic-penalty assumption.

    The paper (Section 2.1) assumes that the execution time ``t(p)`` is
    non-increasing in the number of processors ``p`` while the work
    ``p * t(p)`` is non-decreasing.  Algorithms of Sections 3 and 4 rely on
    both directions, so constructing a non-monotonic task with
    ``require_monotonic=True`` raises this error.
    """


class InvalidScheduleError(ReproError):
    """A schedule violates a structural constraint.

    Raised by :meth:`repro.model.schedule.Schedule.validate` when two tasks
    overlap on a processor, a task uses non-contiguous processors while the
    schedule requires contiguity, a processor index is out of range, or the
    allotment recorded in the schedule does not exist in the task profile.
    """


class InfeasibleError(ReproError):
    """A sub-problem has no feasible solution.

    For instance the two-shelf builder raises this when asked to realise a
    partition whose shelves do not fit on ``m`` processors.
    """


class SchedulingError(ReproError):
    """A scheduler could not produce a schedule for a valid instance."""


class SearchError(ReproError):
    """The dual-approximation dichotomic search failed to converge."""


class ServiceOverloadedError(ReproError):
    """The scheduling service rejected a request due to backpressure.

    Raised by :meth:`repro.service.SchedulerService.submit` when the number
    of in-flight requests has reached ``max_pending``; the HTTP frontend
    translates it into a ``503 Service Unavailable`` response so load
    generators can back off instead of queueing unboundedly.
    """


class ClusterError(ReproError):
    """A sharded-cluster operation failed.

    Raised by :mod:`repro.service.cluster` when a shard worker cannot be
    spawned, fails to report its listening address within the ready timeout,
    or the :class:`~repro.service.cluster.ring.ShardRing` is asked to assign
    a key while empty.
    """
