"""Inline suppression comments: ``# repro-lint: disable=RL001[,RL002]``.

A suppression on the offending line silences the listed rules for that
line; a *standalone* suppression comment (nothing but the comment on its
line) additionally covers the line directly below it, for statements too
long to carry a trailing comment.  Suppressions are per-rule by design —
there is no ``disable=all`` — so silencing one invariant never hides a
violation of another.
"""

from __future__ import annotations

import re

__all__ = ["Suppressions", "parse_suppressions"]

_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=\s*([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


class Suppressions:
    """Per-file suppression map queried by the analyzer."""

    def __init__(self) -> None:
        #: 1-based line -> set of rule ids disabled on that line.
        self._by_line: dict[int, set[str]] = {}
        #: lines whose suppression comment stands alone (covers line + 1).
        self._standalone: set[int] = set()

    def add(self, line: int, rules: set[str], *, standalone: bool) -> None:
        self._by_line.setdefault(line, set()).update(rules)
        if standalone:
            self._standalone.add(line)

    def covers(self, line: int, rule_id: str) -> bool:
        """True when ``rule_id`` is suppressed at ``line``."""
        if rule_id in self._by_line.get(line, ()):
            return True
        prev = line - 1
        return prev in self._standalone and rule_id in self._by_line.get(prev, ())

    def __len__(self) -> int:
        return len(self._by_line)


def parse_suppressions(lines: list[str]) -> Suppressions:
    """Scan source ``lines`` (0-based list) for suppression comments."""
    result = Suppressions()
    for index, text in enumerate(lines, start=1):
        match = _PATTERN.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        standalone = text[: match.start()].strip() == ""
        result.add(index, rules, standalone=standalone)
    return result
