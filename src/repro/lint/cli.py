"""The ``python -m repro lint`` subcommand (argument handling + exit code).

Kept separate from :mod:`repro.cli` so the top-level CLI only pays the
import cost when the subcommand actually runs.  Exit codes: 0 — no
findings beyond the baseline; 1 — new findings (printed); 2 — usage error
(unknown rule, unreadable baseline, bad root).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from .analyzer import LintError, render_json, render_text, run_lint
from .baseline import Baseline

__all__ = ["cmd_lint", "default_baseline_path", "default_root"]


def default_root() -> Path:
    """The installed ``repro`` package directory (what the self-check lints)."""
    return Path(__file__).resolve().parent.parent


def default_baseline_path(root: Path) -> Path | None:
    """The committed baseline: next to the checkout (``src/..``) or the cwd."""
    candidates = [
        root.parent.parent / "lint-baseline.json",  # <repo>/src/repro -> <repo>/
        Path.cwd() / "lint-baseline.json",
    ]
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    return None


def cmd_lint(args: argparse.Namespace) -> int:
    root = Path(args.root) if args.root is not None else default_root()
    baseline_path = (
        Path(args.baseline)
        if args.baseline is not None
        else default_baseline_path(root)
    )
    try:
        if args.write_baseline:
            # Findings that survive suppression get grandfathered wholesale.
            result = run_lint(root, rules=args.rule, baseline=None)
            target = baseline_path or root.parent.parent / "lint-baseline.json"
            Baseline.from_findings(
                result.new, ruleset=result.ruleset_hash
            ).save(target)
            print(
                f"repro lint: wrote {len(result.new)} grandfathered "
                f"finding(s) to {target}"
            )
            return 0
        result = run_lint(root, rules=args.rule, baseline=baseline_path)
    except (LintError, OSError, ValueError) as exc:
        print(f"repro lint: error: {exc}")
        return 2
    print(render_json(result) if args.json else render_text(result))
    return result.exit_code
