"""The committed baseline of grandfathered findings.

The baseline lets the CI gate demand *zero new findings* without forcing a
flag-day cleanup: pre-existing findings are recorded once (with the reason
reviewed at commit time) and matched by their line-independent
:attr:`~repro.lint.findings.Finding.key`, counted — ``count`` occurrences
of a key are grandfathered, the ``count + 1``-th is new.  Deleting an entry
when the underlying finding is fixed is deliberate manual work: the file
shrinking over time is the visible progress metric.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable

from .findings import Finding

__all__ = ["BASELINE_VERSION", "Baseline"]

BASELINE_VERSION = 1


class Baseline:
    """Grandfathered finding keys with per-key occurrence counts."""

    def __init__(self, counts: Counter | None = None, *, ruleset: str = "") -> None:
        self.counts: Counter = Counter(counts or ())
        self.ruleset = ruleset

    # ------------------------------------------------------------------ #
    # construction / persistence
    # ------------------------------------------------------------------ #
    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], *, ruleset: str = ""
    ) -> "Baseline":
        return cls(Counter(f.key for f in findings), ruleset=ruleset)

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        payload = json.loads(Path(path).read_text())
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path} "
                f"(expected {BASELINE_VERSION})"
            )
        counts: Counter = Counter()
        for entry in payload.get("entries", []):
            key = (
                entry["rule"],
                entry["path"],
                entry.get("symbol", ""),
                entry["message"],
            )
            counts[key] = int(entry.get("count", 1))
        return cls(counts, ruleset=payload.get("ruleset", ""))

    def save(self, path: Path | str) -> None:
        entries = [
            {
                "rule": rule,
                "path": file_path,
                "symbol": symbol,
                "message": message,
                "count": count,
            }
            for (rule, file_path, symbol, message), count in sorted(
                self.counts.items()
            )
        ]
        payload = {
            "version": BASELINE_VERSION,
            "ruleset": self.ruleset,
            "entries": entries,
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # ------------------------------------------------------------------ #
    # matching
    # ------------------------------------------------------------------ #
    def split(
        self, findings: Iterable[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Partition ``findings`` into ``(new, grandfathered)``.

        The first ``count`` findings of each baseline key (in report order)
        are grandfathered; every further occurrence is new.
        """
        remaining = Counter(self.counts)
        new: list[Finding] = []
        grandfathered: list[Finding] = []
        for finding in sorted(findings):
            if remaining.get(finding.key, 0) > 0:
                remaining[finding.key] -= 1
                grandfathered.append(finding)
            else:
                new.append(finding)
        return new, grandfathered

    def __len__(self) -> int:
        return sum(self.counts.values())
