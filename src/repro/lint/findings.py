"""The finding record shared by every lint rule and reporter.

A :class:`Finding` pins *where* (path/line/col), *what* (rule id + message)
and *which symbol* (the enclosing ``Class.method`` when the rule can name
one).  The :attr:`Finding.key` deliberately excludes the line number: the
baseline matches findings by key, so grandfathered findings survive
unrelated edits that shift line numbers, while a *new* occurrence of the
same defect in the same symbol still trips the gate through the per-key
count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One static-analysis finding, ordered by location for stable reports."""

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    symbol: str = field(default="", compare=False)

    @property
    def key(self) -> tuple[str, str, str, str]:
        """Line-independent identity used by baseline matching."""
        return (self.rule, self.path, self.symbol, self.message)

    def as_dict(self) -> dict:
        """JSON-serialisable representation (the JSON reporter's row shape)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line text form: ``path:line:col: RLxxx message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
