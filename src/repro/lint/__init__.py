"""``repro lint``: the repo-invariant static-analysis suite.

An AST-based analyzer (stdlib ``ast`` only) enforcing the invariants the
paper reproduction's guarantees rest on: float-tolerance discipline in the
simulators (RL001), bitwise-deterministic scheduling paths (RL002), pinned
serialized shapes and fingerprint domain tags (RL003), lock discipline in
the threaded service layer (RL004), the 4xx-not-500 error-mapping contract
of the HTTP frontends (RL005) and static registry/class conformance
(RL006).  ``python -m repro lint`` runs the suite over ``src/repro``
itself against the committed baseline; see the README's "Static analysis"
section for the suppression and baseline workflow.
"""

from __future__ import annotations

from .analyzer import (
    LintError,
    LintResult,
    load_project,
    render_json,
    render_text,
    report_dict,
    run_lint,
)
from .baseline import Baseline
from .findings import Finding
from .registry import LINT_VERSION, RULES, build_info, rule, ruleset_hash

__all__ = [
    "Baseline",
    "Finding",
    "LINT_VERSION",
    "LintError",
    "LintResult",
    "RULES",
    "build_info",
    "load_project",
    "render_json",
    "render_text",
    "report_dict",
    "rule",
    "ruleset_hash",
    "run_lint",
]
