"""Rule registry of the ``repro lint`` static-analysis suite.

Rules self-register through the :func:`rule` decorator (imported for their
side effect by :mod:`repro.lint.rules`).  Each rule carries a ``version``
that must be bumped whenever its semantics change; :func:`ruleset_hash`
digests the (id, version, scope) triples into a short stable hash that the
service exposes in its ``/metrics`` build-info block — a deployed shard
thereby advertises exactly which invariant set its source tree was checked
against.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = ["LINT_VERSION", "RULES", "Rule", "build_info", "rule", "ruleset_hash"]

#: Version of the lint harness itself (registry, suppressions, baseline
#: format, reporters) — independent of the per-rule versions.
LINT_VERSION = "1.0.0"


@dataclass(frozen=True)
class Rule:
    """A registered static-analysis rule.

    ``scope`` holds path prefixes relative to the analysed package root
    (e.g. ``("online/", "sim/")``); an empty scope means the whole package.
    ``project`` rules see the whole parsed project at once (cross-module
    checks); module rules run once per in-scope file.
    """

    id: str
    title: str
    rationale: str
    version: int
    scope: tuple[str, ...]
    project: bool
    check: Callable = field(compare=False)

    def in_scope(self, path: str) -> bool:
        return not self.scope or any(path.startswith(p) for p in self.scope)


#: Rule id -> :class:`Rule`; populated by the :func:`rule` decorator.
RULES: dict[str, Rule] = {}


def rule(
    rule_id: str,
    title: str,
    *,
    rationale: str,
    version: int = 1,
    scope: Iterable[str] = (),
    project: bool = False,
) -> Callable:
    """Register ``check`` under ``rule_id``; returns the function unchanged."""

    def decorator(check: Callable) -> Callable:
        if rule_id in RULES:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        RULES[rule_id] = Rule(
            id=rule_id,
            title=title,
            rationale=rationale,
            version=int(version),
            scope=tuple(scope),
            project=bool(project),
            check=check,
        )
        return check

    return decorator


def ruleset_hash(rules: Iterable[Rule] | None = None) -> str:
    """Short stable digest of the active ruleset (ids, versions, scopes)."""
    selected = sorted(RULES.values() if rules is None else rules, key=lambda r: r.id)
    digest = hashlib.sha256()
    for r in selected:
        digest.update(f"{r.id}:{r.version}:{','.join(r.scope)}\n".encode())
    return digest.hexdigest()[:12]


def build_info() -> dict:
    """The ``/metrics`` build-info block: which invariant set this tree runs.

    Imports the rule modules lazily so callers (the service layer) never
    race the registration side effects.
    """
    from . import rules as _rules  # noqa: F401 - registration side effect

    return {
        "lint_version": LINT_VERSION,
        "ruleset_hash": ruleset_hash(),
        "rules": sorted(RULES),
    }
