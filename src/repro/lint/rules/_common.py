"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast

__all__ = ["ScopedVisitor", "dict_string_keys", "dotted_name", "words_of"]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def words_of(identifier: str) -> set[str]:
    """The lower-cased snake_case segments of an identifier."""
    return {part for part in identifier.lower().split("_") if part}


def dict_string_keys(node: ast.AST) -> set[str]:
    """Every string key emitted inside ``node``.

    Covers dict literals (including nested ones and those built inside
    comprehensions) and ``target["key"] = ...`` subscript assignments — the
    two ways the repo's ``as_dict`` methods emit keys.
    """
    keys: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Dict):
            for key in child.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(child, ast.Subscript) and isinstance(child.ctx, ast.Store):
            sl = child.slice
            if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
                keys.add(sl.value)
    return keys


class ScopedVisitor(ast.NodeVisitor):
    """NodeVisitor that tracks the enclosing ``Class.method`` symbol."""

    def __init__(self) -> None:
        self._scopes: list[str] = []

    @property
    def symbol(self) -> str:
        return ".".join(self._scopes)

    def _enter(self, node) -> None:
        self._scopes.append(node.name)
        self.generic_visit(node)
        self._scopes.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter(node)
