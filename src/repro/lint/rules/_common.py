"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast

__all__ = [
    "ScopedVisitor",
    "caught_names",
    "dict_string_keys",
    "dotted_name",
    "response_statuses",
    "words_of",
]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def words_of(identifier: str) -> set[str]:
    """The lower-cased snake_case segments of an identifier."""
    return {part for part in identifier.lower().split("_") if part}


def dict_string_keys(node: ast.AST) -> set[str]:
    """Every string key emitted inside ``node``.

    Covers dict literals (including nested ones and those built inside
    comprehensions) and ``target["key"] = ...`` subscript assignments — the
    two ways the repo's ``as_dict`` methods emit keys.
    """
    keys: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Dict):
            for key in child.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(child, ast.Subscript) and isinstance(child.ctx, ast.Store):
            sl = child.slice
            if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
                keys.add(sl.value)
    return keys


def caught_names(handler: ast.ExceptHandler) -> set[str]:
    """The unqualified exception names an ``except`` clause catches.

    A bare ``except:`` reports ``{"BaseException"}``; tuples contribute
    every member; dotted references keep only the final segment
    (``exceptions.ModelError`` -> ``ModelError``).
    """
    node = handler.type
    if node is None:
        return {"BaseException"}
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    names: set[str] = set()
    for expr in exprs:
        chain = dotted_name(expr)
        if chain is not None:
            names.add(chain.rsplit(".", 1)[-1])
    return names


#: Call targets that take an HTTP status as their first argument: the legacy
#: ``self._send_json(status, payload)`` handler helper and the transport-split
#: ``Response(status, ...)`` / ``Response.json(status, ...)`` constructors.
_STATUS_CALLS = ("_send_json", "Response", "Response.json")


def response_statuses(node: ast.AST) -> set[int]:
    """Every int-constant HTTP status a response-building call sends in ``node``.

    Only literal statuses count: a status that arrives as a variable (e.g.
    the shared error mapper's return value being re-wrapped) is not an
    inline policy decision.
    """
    statuses: set[int] = set()
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        chain = dotted_name(child.func)
        if chain is None:
            continue
        if not any(chain == c or chain.endswith("." + c) for c in _STATUS_CALLS):
            continue
        exprs = list(child.args[:1]) + [
            kw.value for kw in child.keywords if kw.arg == "status"
        ]
        for expr in exprs:
            if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
                statuses.add(expr.value)
    return statuses


class ScopedVisitor(ast.NodeVisitor):
    """NodeVisitor that tracks the enclosing ``Class.method`` symbol."""

    def __init__(self) -> None:
        self._scopes: list[str] = []

    @property
    def symbol(self) -> str:
        return ".".join(self._scopes)

    def _enter(self, node) -> None:
        self._scopes.append(node.name)
        self.generic_visit(node)
        self._scopes.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter(node)
