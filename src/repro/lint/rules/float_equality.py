"""RL001: no naked float equality between computed simulation times.

The stitched online timelines shift every epoch's entries by a float epoch
start, so two logically equal timestamps routinely differ by an ulp; PR 4
introduced the ``tol``-snapped event ordering for exactly that reason.  A
naked ``==``/``!=`` between time-valued expressions therefore depends on
accumulated rounding — compare through
:func:`repro.sim.events.times_close` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import rule
from ._common import ScopedVisitor, words_of

__all__ = ["TIME_WORDS"]

#: snake_case segments that mark an expression as time-valued in this repo.
TIME_WORDS = frozenset(
    {
        "time",
        "times",
        "start",
        "end",
        "finish",
        "release",
        "releases",
        "clock",
        "makespan",
        "deadline",
        "duration",
        "busy",
        "horizon",
        "cutoff",
        "arrival",
        "arrivals",
        "elapsed",
        "wait",
        "waiting",
        "until",
        "now",
    }
)


def _is_time_like(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return bool(words_of(node.id) & TIME_WORDS)
    if isinstance(node, ast.Attribute):
        return bool(words_of(node.attr) & TIME_WORDS)
    if isinstance(node, ast.Subscript):
        return _is_time_like(node.value)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            # ``task.time(p)`` and aggregations like ``releases.max()``.
            return bool(words_of(func.attr) & TIME_WORDS) or _is_time_like(func.value)
        if isinstance(func, ast.Name):
            return bool(words_of(func.id) & TIME_WORDS)
        return False
    if isinstance(node, ast.BinOp):
        return _is_time_like(node.left) or _is_time_like(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_time_like(node.operand)
    return False


def _comparable(node: ast.AST) -> bool:
    """False for operands equality against which is clearly not a float test."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(
            node.value, bool
        )
    return True


class _Visitor(ScopedVisitor):
    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = path
        self.findings: list[Finding] = []

    def visit_Compare(self, node: ast.Compare) -> None:
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                pair = (left, right)
                if (
                    any(_is_time_like(side) for side in pair)
                    and all(_comparable(side) for side in pair)
                    and not all(isinstance(side, ast.Constant) for side in pair)
                ):
                    expr = next(side for side in pair if _is_time_like(side))
                    self.findings.append(
                        Finding(
                            path=self.path,
                            line=node.lineno,
                            col=node.col_offset,
                            rule="RL001",
                            symbol=self.symbol,
                            message=(
                                f"naked float equality on time-valued expression "
                                f"'{ast.unparse(expr)}'; compare with "
                                f"times_close() from repro.sim.events"
                            ),
                        )
                    )
            left = right
        self.generic_visit(node)


@rule(
    "RL001",
    "float equality on computed times",
    rationale=(
        "stitched online timelines accumulate float drift; equality between "
        "time expressions must go through times_close()"
    ),
    version=1,
    scope=("online/", "sim/", "packing/"),
)
def check_float_equality(module, project) -> Iterator[Finding]:
    visitor = _Visitor(module.path)
    visitor.visit(module.tree)
    yield from visitor.findings
