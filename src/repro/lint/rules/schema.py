"""RL003: serialized shapes and fingerprint domain tags are pinned.

The content-addressed result cache keys off ``Instance.fingerprint()`` and
the canonical-JSON ``as_dict`` shapes; a key silently added to (or dropped
from) one of those dicts changes the bytes on the wire, cold-starts every
warm shard and desynchronises the differential conformance suite.  This
rule pins the exact key set each registered ``as_dict`` may emit, requires
any *new* ``as_dict`` to be registered here (a reviewed, deliberate act),
and pins the byte-literal domain tags of ``profile_fingerprint``.

Changing a serialized shape is legitimate — do it by updating
:data:`SCHEMAS` in the same commit, which makes the cache-compatibility
break visible in review instead of implicit in a model edit.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import rule
from ._common import dict_string_keys

__all__ = ["FINGERPRINT_TAGS", "SCHEMAS"]

#: ``path::Qualname`` -> the exact key set that ``as_dict`` may emit.
SCHEMAS: dict[str, frozenset[str]] = {
    "model/task.py::MalleableTask.as_dict": frozenset(
        {"name", "times", "release"}
    ),
    "model/instance.py::Instance.as_dict": frozenset(
        {"name", "num_procs", "tasks"}
    ),
    "model/schedule.py::Schedule.as_dict": frozenset(
        {"algorithm", "entries", "task_index", "start", "first_proc", "num_procs", "duration"}
    ),
    "online/epoch.py::EpochReport.as_dict": frozenset(
        {"index", "start", "end", "num_tasks", "makespan", "waiting",
         "compute_ms", "engine"}
    ),
    "obs/histogram.py::LatencyHistogram.as_dict": frozenset(
        {"scheme", "count", "sum_ms", "min_ms", "max_ms", "counts"}
    ),
    "obs/tracing.py::Span.as_dict": frozenset(
        {"span_id", "name", "start_ms", "duration_ms", "parent_id", "meta"}
    ),
    "obs/tracing.py::Trace.as_dict": frozenset(
        {"trace_id", "component", "started_at", "duration_ms", "spans"}
    ),
    "obs/timeseries.py::MetricSample.as_dict": frozenset(
        {"t", "gauges", "counters", "latency"}
    ),
    "obs/timeseries.py::WindowDelta.as_dict": frozenset(
        {"duration_s", "samples", "counters", "gauges", "latency"}
    ),
    "obs/slo.py::SLO.as_dict": frozenset(
        {"p99_ms", "availability", "fast_window_s", "slow_window_s",
         "fast_burn_threshold", "slow_burn_threshold"}
    ),
    "service/cache.py::CacheStats.as_dict": frozenset(
        {"hits", "misses", "evictions_lru", "evictions_ttl", "expired_purged", "hit_rate"}
    ),
    "service/loadtest.py::PhaseStats.as_dict": frozenset(
        {"name", "requests", "errors", "seconds", "rps", "cache_hits", "p50_ms", "p99_ms"}
    ),
    "lint/findings.py::Finding.as_dict": frozenset(
        {"rule", "path", "line", "col", "symbol", "message"}
    ),
}

#: ``path::funcname`` -> the byte-literal domain tags the digest must use.
FINGERPRINT_TAGS: dict[str, frozenset[bytes]] = {
    "model/instance.py::profile_fingerprint": frozenset(
        {b"repro-instance-v1", b"releases-v1"}
    ),
    "online/plancache.py::plan_key": frozenset({b"repro-plan-v1"}),
}


def _qualified_functions(tree: ast.Module) -> Iterator[tuple[str, ast.FunctionDef]]:
    """Yield ``(Qualname, node)`` for every function, with class prefixes."""

    def walk(node: ast.AST, prefix: str) -> Iterator[tuple[str, ast.FunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from walk(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, "")


def _bytes_constants(node: ast.AST) -> frozenset[bytes]:
    return frozenset(
        child.value
        for child in ast.walk(node)
        if isinstance(child, ast.Constant) and isinstance(child.value, bytes)
    )


@rule(
    "RL003",
    "fingerprint / serialized-shape stability",
    rationale=(
        "cache keys and wire bytes derive from as_dict key sets and the "
        "fingerprint domain tags; drift must be explicit, not accidental"
    ),
    version=1,
)
def check_schema_stability(module, project) -> Iterator[Finding]:
    seen: set[str] = set()
    for qualname, node in _qualified_functions(module.tree):
        key = f"{module.path}::{qualname}"
        simple_name = qualname.rsplit(".", 1)[-1]
        if simple_name == "as_dict":
            seen.add(key)
            emitted = dict_string_keys(node)
            pinned = SCHEMAS.get(key)
            if pinned is None:
                yield Finding(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="RL003",
                    symbol=qualname,
                    message=(
                        f"'{qualname}' is not registered in the serialized-"
                        f"shape registry (repro.lint.rules.schema.SCHEMAS); "
                        f"register its key set {sorted(emitted)}"
                    ),
                )
            elif emitted != pinned:
                added = sorted(emitted - pinned)
                missing = sorted(pinned - emitted)
                yield Finding(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="RL003",
                    symbol=qualname,
                    message=(
                        f"'{qualname}' drifted from its pinned key set: "
                        f"added {added}, missing {missing}; update SCHEMAS "
                        f"deliberately if the shape change is intended"
                    ),
                )
        if key in FINGERPRINT_TAGS:
            seen.add(key)
            tags = _bytes_constants(node)
            pinned_tags = FINGERPRINT_TAGS[key]
            if tags != pinned_tags:
                yield Finding(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="RL003",
                    symbol=qualname,
                    message=(
                        f"'{qualname}' domain tags {sorted(tags)} differ from "
                        f"the pinned {sorted(pinned_tags)}; changing them "
                        f"invalidates every existing fingerprint"
                    ),
                )
    # A registered entry whose function vanished is schema drift too: the
    # shape moved or was renamed without updating the registry.
    for key in set(SCHEMAS) | set(FINGERPRINT_TAGS):
        path, _, qualname = key.partition("::")
        if path == module.path and key not in seen:
            yield Finding(
                path=module.path,
                line=1,
                col=0,
                rule="RL003",
                symbol=qualname,
                message=(
                    f"registered serialized shape '{qualname}' no longer "
                    f"exists in this module; update SCHEMAS/FINGERPRINT_TAGS"
                ),
            )
