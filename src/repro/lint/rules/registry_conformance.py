"""RL006: every class reachable from ``registry.py`` declares its contract.

The registry keys schedulers by name and the online kernels by each class's
own ``kernel`` attribute; the CLI builds its ``--kernel`` choices from
``ONLINE_KERNELS`` at import time.  This rule re-derives all of that
*statically*: every scheduler class registered in ``ALGORITHMS`` must
declare a class-level ``name`` string and a ``schedule`` method, every
kernel class in ``make_rescheduler``'s factory tuple must declare a
class-level ``kernel`` string (matching an ``ONLINE_KERNELS`` entry) and a
``replay`` method, and the set of declared kernels must equal
``ONLINE_KERNELS`` exactly — so the CLI choices, the service's 400
diagnostics and the classes themselves can never drift apart.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import rule


def _import_map(tree: ast.Module) -> dict[str, tuple[str, str]]:
    """Local name -> (relative module path, original name) from ImportFrom."""
    table: dict[str, tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.level >= 1 and node.module:
            path = node.module.replace(".", "/") + ".py"
            for alias in node.names:
                table[alias.asname or alias.name] = (path, alias.name)
    return table


def _algorithm_classes(tree: ast.Module) -> dict[str, str]:
    """Registered algorithm name -> local class name, from ``ALGORITHMS``."""
    classes: dict[str, str] = {}
    for node in ast.walk(tree):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "ALGORITHMS" for t in targets
        ):
            continue
        value = node.value
        if isinstance(value, ast.Dict):
            for key, val in zip(value.keys, value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(val, ast.Name)
                ):
                    classes[key.value] = val.id
    return classes


def _kernel_classes(tree: ast.Module) -> list[str]:
    """Local class names in ``make_rescheduler``'s factory tuple."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "make_rescheduler":
            for child in ast.walk(node):
                if isinstance(child, ast.DictComp) and isinstance(
                    child.generators[0].iter, (ast.Tuple, ast.List)
                ):
                    return [
                        elt.id
                        for elt in child.generators[0].iter.elts
                        if isinstance(elt, ast.Name)
                    ]
    return []


def _online_kernels(tree: ast.Module) -> tuple[set[str], int]:
    """The ``ONLINE_KERNELS`` literal values and their line number."""
    for node in ast.walk(tree):
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            target = node.target
        if (
            isinstance(target, ast.Name)
            and target.id == "ONLINE_KERNELS"
            and node.value is not None
            and isinstance(node.value, (ast.Tuple, ast.List))
        ):
            values = {
                elt.value
                for elt in node.value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            }
            return values, node.lineno
    return set(), 1


def _class_attr_string(classdef: ast.ClassDef, attr: str) -> str | None:
    """Value of a class-level ``attr = "literal"`` declaration, if any."""
    for stmt in classdef.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == attr:
                if isinstance(stmt.value, ast.Constant) and isinstance(
                    stmt.value.value, str
                ):
                    return stmt.value.value
    return None


def _has_method(classdef: ast.ClassDef, name: str) -> bool:
    return any(
        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        and stmt.name == name
        for stmt in classdef.body
    )


def _find_class(project, path: str, name: str):
    module = project.module(path)
    if module is None:
        return None, None
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return module, node
    return module, None


@rule(
    "RL006",
    "registry class contract conformance",
    rationale=(
        "ALGORITHMS/ONLINE_KERNELS, the CLI choices and the classes "
        "themselves must agree statically on name/kernel declarations"
    ),
    version=1,
    project=True,
)
def check_registry_conformance(project) -> Iterator[Finding]:
    registry = project.module("registry.py")
    if registry is None:
        return
    imports = _import_map(registry.tree)
    declared_kernels: set[str] = set()

    def resolve(local: str, registered_as: str, kind: str) -> Iterator[Finding]:
        if local not in imports:
            yield Finding(
                path="registry.py",
                line=1,
                col=0,
                rule="RL006",
                symbol=local,
                message=(
                    f"{kind} class '{local}' (registered as "
                    f"'{registered_as}') is not resolvable from registry.py "
                    f"imports"
                ),
            )
            return
        path, original = imports[local]
        module, classdef = _find_class(project, path, original)
        if module is None:
            return  # module outside the analysed root; nothing to check
        if classdef is None:
            yield Finding(
                path=path,
                line=1,
                col=0,
                rule="RL006",
                symbol=original,
                message=(
                    f"{kind} class '{original}' registered in registry.py "
                    f"does not exist in {path}"
                ),
            )
            return
        if kind == "scheduler":
            if _class_attr_string(classdef, "name") is None:
                yield Finding(
                    path=path,
                    line=classdef.lineno,
                    col=classdef.col_offset,
                    rule="RL006",
                    symbol=original,
                    message=(
                        f"scheduler class '{original}' (ALGORITHMS entry "
                        f"'{registered_as}') declares no class-level 'name' "
                        f"string; registry consumers cannot read it "
                        f"statically"
                    ),
                )
            if not _has_method(classdef, "schedule"):
                yield Finding(
                    path=path,
                    line=classdef.lineno,
                    col=classdef.col_offset,
                    rule="RL006",
                    symbol=original,
                    message=(
                        f"scheduler class '{original}' defines no "
                        f"'schedule' method"
                    ),
                )
        else:
            kernel = _class_attr_string(classdef, "kernel")
            if kernel is None:
                yield Finding(
                    path=path,
                    line=classdef.lineno,
                    col=classdef.col_offset,
                    rule="RL006",
                    symbol=original,
                    message=(
                        f"kernel class '{original}' declares no class-level "
                        f"'kernel' string; make_rescheduler keys factories "
                        f"off it"
                    ),
                )
            else:
                declared_kernels.add(kernel)
            if not _has_method(classdef, "replay"):
                yield Finding(
                    path=path,
                    line=classdef.lineno,
                    col=classdef.col_offset,
                    rule="RL006",
                    symbol=original,
                    message=(
                        f"kernel class '{original}' defines no 'replay' "
                        f"method"
                    ),
                )

    for registered_as, local in sorted(_algorithm_classes(registry.tree).items()):
        yield from resolve(local, registered_as, "scheduler")
    kernel_locals = _kernel_classes(registry.tree)
    for local in kernel_locals:
        yield from resolve(local, local, "kernel")
    online_kernels, line = _online_kernels(registry.tree)
    if kernel_locals and online_kernels != declared_kernels:
        yield Finding(
            path="registry.py",
            line=line,
            col=0,
            rule="RL006",
            symbol="ONLINE_KERNELS",
            message=(
                f"ONLINE_KERNELS {sorted(online_kernels)} does not match the "
                f"kernels declared by the factory classes "
                f"{sorted(declared_kernels)}"
            ),
        )
