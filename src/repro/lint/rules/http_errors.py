"""RL005: HTTP handlers must map model errors to 4xx, never bare 500.

The recurring PR 4/5 review theme: a client sending a malformed instance
must get a 400 with a diagnostic, not a 500 — a 500 means *our* bug and is
what the load generator counts as a server error.  Concretely, inside any
``try`` statement that sends a 500 from a broad handler (``Exception``,
``BaseException`` or the ``ReproError`` root), an earlier handler must
already have mapped ``ModelError`` to a 4xx; and no handler that catches
``ModelError`` may answer with a 5xx.

Version 2 recognises the transport-split response constructors
(``Response(status, ...)`` / ``Response.json(status, ...)``) alongside the
legacy ``self._send_json(status, ...)`` helper.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import rule
from ._common import ScopedVisitor, caught_names, response_statuses

_BROAD = frozenset({"Exception", "BaseException", "ReproError"})


class _Visitor(ScopedVisitor):
    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = path
        self.findings: list[Finding] = []

    def visit_Try(self, node: ast.Try) -> None:
        model_mapped_4xx = False
        for handler in node.handlers:
            caught = caught_names(handler)
            statuses = response_statuses(handler)
            if "ModelError" in caught:
                if any(s >= 500 for s in statuses):
                    self.findings.append(
                        Finding(
                            path=self.path,
                            line=handler.lineno,
                            col=handler.col_offset,
                            rule="RL005",
                            symbol=self.symbol,
                            message=(
                                "handler catching ModelError answers with a "
                                "5xx; client-input errors must map to 4xx"
                            ),
                        )
                    )
                if any(400 <= s < 500 for s in statuses):
                    model_mapped_4xx = True
            elif caught & _BROAD and 500 in statuses and not model_mapped_4xx:
                self.findings.append(
                    Finding(
                        path=self.path,
                        line=handler.lineno,
                        col=handler.col_offset,
                        rule="RL005",
                        symbol=self.symbol,
                        message=(
                            f"broad handler ({', '.join(sorted(caught & _BROAD))}) "
                            f"maps ReproError subclasses to a bare 500; add a "
                            f"preceding 'except ModelError' answering 4xx"
                        ),
                    )
                )
        self.generic_visit(node)


@rule(
    "RL005",
    "ReproError subclasses must map to 4xx, not bare 500",
    rationale=(
        "malformed client input must surface as 400-with-diagnostic; a 500 "
        "is reserved for genuine server bugs"
    ),
    version=2,
    scope=("service/",),
)
def check_http_error_mapping(module, project) -> Iterator[Finding]:
    visitor = _Visitor(module.path)
    visitor.visit(module.tree)
    yield from visitor.findings
