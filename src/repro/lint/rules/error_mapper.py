"""RL008: exception→status policy belongs in the shared HTTP error mapper.

The transport/app split centralises the wire contract for failures in
``repro.service.http.errors.map_exception`` — ``ModelError`` → 400,
``ServiceOverloadedError`` → 503, timeouts → 504, fallback 500 — so the
daemon and the router can never drift apart on what a malformed instance or
an overloaded queue looks like to a client.  This rule flags any
except-handler elsewhere in the service layer that catches one of those
domain exceptions (or a broad ``Exception``/``BaseException``) and
hand-builds a constant-status response instead of deferring to the mapper.

Deliberately out of scope: routing-availability errors (``ClusterError``,
``OSError`` on a forwarding socket) — the router's "shard unavailable" 503s
are transport policy, not exception→status mapping, and stay where the
retry loop lives.  The mapper module itself is exempt; it is the one place
allowed to spell the numbers out.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import rule
from ._common import ScopedVisitor, caught_names, response_statuses

#: Exceptions whose HTTP status is the shared mapper's decision.
_MAPPED = frozenset(
    {
        "ModelError",
        "ServiceOverloadedError",
        "ReproError",
        "TimeoutError",
        "FuturesTimeoutError",
        "Exception",
        "BaseException",
    }
)

#: The one module allowed to map these exceptions to literal statuses.
_MAPPER_MODULE = "http/errors.py"


class _Visitor(ScopedVisitor):
    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = path
        self.findings: list[Finding] = []

    def visit_Try(self, node: ast.Try) -> None:
        for handler in node.handlers:
            mapped = caught_names(handler) & _MAPPED
            statuses = response_statuses(handler)
            if mapped and statuses:
                self.findings.append(
                    Finding(
                        path=self.path,
                        line=handler.lineno,
                        col=handler.col_offset,
                        rule="RL008",
                        symbol=self.symbol,
                        message=(
                            f"handler catching {', '.join(sorted(mapped))} "
                            f"builds a constant-status response "
                            f"({', '.join(str(s) for s in sorted(statuses))}) "
                            f"inline; route it through "
                            f"repro.service.http.errors.map_exception"
                        ),
                    )
                )
        self.generic_visit(node)


@rule(
    "RL008",
    "exception→status mapping outside the shared HTTP error mapper",
    rationale=(
        "one mapper keeps daemon and router byte-identical on failure "
        "responses; inline status literals drift"
    ),
    version=1,
    scope=("service/",),
)
def check_error_mapper_centralised(module, project) -> Iterator[Finding]:
    if module.path.endswith(_MAPPER_MODULE):
        return
    visitor = _Visitor(module.path)
    visitor.visit(module.tree)
    yield from visitor.findings
