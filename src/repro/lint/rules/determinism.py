"""RL002: scheduling hot paths must stay bitwise deterministic.

Byte-identical shard responses (the differential conformance suite and the
warm/cold consistency check of the load generator) require that identical
requests take identical code paths.  Two classic leaks are flagged: drawing
from an unseeded random source (the stdlib ``random`` module's hidden
global state, numpy's legacy ``np.random.*`` globals, or
``default_rng()`` without an explicit seed) and iterating directly over a
``set`` (whose order depends on the hash salt and insertion history) —
sort first.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import rule
from ._common import ScopedVisitor, dotted_name

#: numpy.random members that are seedable constructors, not global draws.
_NP_SEEDED = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"}
)
#: stdlib random members that construct an *explicitly seeded* source.
_STDLIB_SEEDED = frozenset({"Random", "SystemRandom"})


class _Visitor(ScopedVisitor):
    def __init__(self, path: str, random_aliases: set[str], numpy_aliases: set[str]):
        super().__init__()
        self.path = path
        self.random_aliases = random_aliases
        self.numpy_aliases = numpy_aliases
        self.findings: list[Finding] = []

    def _emit(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=node.lineno,
                col=node.col_offset,
                rule="RL002",
                symbol=self.symbol,
                message=message,
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_name(node.func)
        if chain is not None:
            parts = chain.split(".")
            if (
                len(parts) == 2
                and parts[0] in self.random_aliases
                and parts[1] not in _STDLIB_SEEDED
            ):
                self._emit(
                    node,
                    f"call to '{chain}' draws from the unseeded global stdlib "
                    f"RNG; use a seeded np.random.default_rng(seed) instead",
                )
            elif (
                len(parts) == 3
                and parts[0] in self.numpy_aliases
                and parts[1] == "random"
                and parts[2] not in _NP_SEEDED
            ):
                self._emit(
                    node,
                    f"call to '{chain}' uses numpy's legacy global RNG; use a "
                    f"seeded np.random.default_rng(seed) instead",
                )
            if parts[-1] == "default_rng":
                args = node.args
                if not args or (
                    len(args) == 1
                    and isinstance(args[0], ast.Constant)
                    and args[0].value is None
                ):
                    self._emit(
                        node,
                        "default_rng() without an explicit seed is "
                        "nondeterministic across runs; pass a seed",
                    )
        self.generic_visit(node)

    def _check_iter(self, node: ast.AST) -> None:
        target = node
        if isinstance(target, ast.Call):
            func = dotted_name(target.func)
            if func not in ("set", "frozenset"):
                return
        elif not isinstance(target, (ast.Set, ast.SetComp)):
            return
        self._emit(
            target,
            "iteration order over a set is unspecified and breaks "
            "byte-identical responses; iterate over sorted(...) instead",
        )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def _module_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    random_aliases: set[str] = set()
    numpy_aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    random_aliases.add(alias.asname or alias.name)
                elif alias.name == "numpy":
                    numpy_aliases.add(alias.asname or alias.name)
    return random_aliases, numpy_aliases


@rule(
    "RL002",
    "nondeterminism in scheduling hot paths",
    rationale=(
        "byte-identical responses across shards and replays require seeded "
        "RNGs and order-stable iteration"
    ),
    version=1,
    scope=(
        "core/",
        "online/",
        "sim/",
        "packing/",
        "baselines/",
        "model/",
        "workloads/",
        "service/",
    ),
)
def check_determinism(module, project) -> Iterator[Finding]:
    random_aliases, numpy_aliases = _module_aliases(module.tree)
    visitor = _Visitor(module.path, random_aliases, numpy_aliases)
    visitor.visit(module.tree)
    yield from visitor.findings
