"""RL004: the thread-safety auditor for the service layer.

Infers, per class, which ``self.*`` attributes a class treats as
lock-guarded — those accessed inside a ``with self.<lock>:`` scope (any
attribute whose name contains ``lock``) *and* mutated outside
``__init__`` somewhere — then flags every access to a guarded attribute
that happens outside a lock scope.  ``__init__`` is exempt (construction
happens-before publication to other threads), and code inside nested
functions/lambdas is skipped (deferred execution cannot be audited
statically).  Immutable configuration attributes never trip the rule: an
attribute only *read* under a lock, and never written after construction,
is not considered guarded.

This is deliberately a lightweight race detector, not a proof system: it
catches the recurring review bug — a counter incremented under
``self._lock`` in one method and read bare in another — in
``SchedulerService``, the router's connection pool and the cluster
supervisor.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from ..findings import Finding
from ..registry import rule

#: method names that mutate their receiver in-place.
_MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)


def _self_attr(node: ast.AST) -> str | None:
    """``X`` when ``node`` is exactly ``self.X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@dataclass
class _Access:
    attr: str
    line: int
    col: int
    method: str
    locked: bool
    is_write: bool


class _MethodAuditor:
    """Collect self-attribute accesses of one method with lock tracking."""

    def __init__(self, method: str, lock_attrs: set[str]) -> None:
        self.method = method
        self.lock_attrs = lock_attrs
        self.accesses: list[_Access] = []

    def audit(self, fn: ast.FunctionDef) -> list[_Access]:
        for stmt in fn.body:
            self._visit(stmt, locked=False)
        return self.accesses

    def _record(self, node: ast.AST, attr: str, *, locked: bool, write: bool) -> None:
        if attr in self.lock_attrs:
            return
        self.accesses.append(
            _Access(attr, node.lineno, node.col_offset, self.method, locked, write)
        )

    def _is_lock_scope(self, item: ast.withitem) -> bool:
        attr = _self_attr(item.context_expr)
        return attr is not None and attr in self.lock_attrs

    def _visit(self, node: ast.AST, *, locked: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # deferred execution: lock state at call time is unknown
        if isinstance(node, ast.With):
            inner = locked or any(self._is_lock_scope(item) for item in node.items)
            for item in node.items:
                self._visit(item.context_expr, locked=locked)
            for stmt in node.body:
                self._visit(stmt, locked=inner)
            return
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None:
                write = isinstance(node.ctx, (ast.Store, ast.Del))
                self._record(node, attr, locked=locked, write=write)
                return
        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            attr = _self_attr(node.value)
            if attr is not None:
                self._record(node.value, attr, locked=locked, write=True)
                self._visit(node.slice, locked=locked)
                return
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                attr = _self_attr(func.value)
                if attr is not None:
                    self._record(func.value, attr, locked=locked, write=True)
                    for arg in node.args:
                        self._visit(arg, locked=locked)
                    for kw in node.keywords:
                        self._visit(kw.value, locked=locked)
                    return
        for child in ast.iter_child_nodes(node):
            self._visit(child, locked=locked)


def _lock_attrs_of(classdef: ast.ClassDef) -> set[str]:
    locks: set[str] = set()
    for node in ast.walk(classdef):
        if isinstance(node, ast.With):
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None and "lock" in attr.lower():
                    locks.add(attr)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None and "lock" in attr.lower():
                    locks.add(attr)
    return locks


def _method_names(classdef: ast.ClassDef) -> set[str]:
    return {
        stmt.name
        for stmt in classdef.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


@rule(
    "RL004",
    "lock-guarded attribute accessed outside its lock",
    rationale=(
        "counters and caches guarded by self._lock in one method must not "
        "be touched bare in another; a static race detector for service/"
    ),
    version=1,
    scope=("service/",),
)
def check_thread_safety(module, project) -> Iterator[Finding]:
    for classdef in [n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)]:
        lock_attrs = _lock_attrs_of(classdef)
        if not lock_attrs:
            continue
        methods = _method_names(classdef)
        accesses: list[_Access] = []
        for stmt in classdef.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                accesses.extend(
                    _MethodAuditor(stmt.name, lock_attrs).audit(stmt)
                )
        locked_attrs = {a.attr for a in accesses if a.locked}
        written_late = {
            a.attr for a in accesses if a.is_write and a.method != "__init__"
        }
        guarded = (locked_attrs & written_late) - methods
        for access in accesses:
            if (
                access.attr in guarded
                and not access.locked
                and access.method != "__init__"
            ):
                yield Finding(
                    path=module.path,
                    line=access.line,
                    col=access.col,
                    rule="RL004",
                    symbol=f"{classdef.name}.{access.method}",
                    message=(
                        f"attribute '{access.attr}' of {classdef.name} is "
                        f"lock-guarded elsewhere but "
                        f"{'written' if access.is_write else 'read'} outside "
                        f"any lock scope in {access.method}()"
                    ),
                )
