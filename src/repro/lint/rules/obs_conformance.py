"""RL007: span and metric names come from the pinned ``repro.obs.names`` registry.

Trace spans and Prometheus metric families are cross-component contracts:
the router's ``/trace/<id>`` stitches shard spans by *name*, dashboards and
scrape configs key off the ``repro_*`` family names, and the exposition
renderer derives HELP/TYPE metadata from :data:`repro.obs.names.METRICS`.
An ad-hoc literal at a call site ("serialise" next to "serialize", a
``repro_latency`` family nobody declared) silently forks that contract.

This rule re-derives the registry *statically* from ``obs/names.py`` and
checks every other module against it:

* the first argument of every ``.span(...)`` / ``.record_span(...)`` call
  must be a ``SPAN_*`` constant defined in the registry — never a string
  literal, and never an identifier the registry does not define;
* every string literal matching ``repro_[a-z0-9_]+`` outside
  ``obs/names.py`` must be a declared metric family in ``METRICS``.

Adding a span or metric stays a one-line, reviewed change to
``obs/names.py`` — exactly like RL003's serialized-shape registry.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..findings import Finding
from ..registry import rule

#: Path of the pinned name registry, relative to the analysis root.
NAMES_PATH = "obs/names.py"

_METRIC_LITERAL = re.compile(r"repro_[a-z0-9_]+\Z")


def _registry_names(tree: ast.Module) -> tuple[set[str], set[str]]:
    """``(span_constants, metric_names)`` declared by ``obs/names.py``.

    Span constants are the module-level ``SPAN_* = "literal"`` assignments;
    metric names are the string keys of the ``METRICS`` dict literal plus
    every ``METRIC_* = "repro_..."`` assignment (the constants and the dict
    are kept in sync by construction — both sides are accepted here so the
    rule never depends on which one a call site references).
    """
    spans: set[str] = set()
    metrics: set[str] = set()
    for node in ast.walk(tree):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            continue
        value = node.value
        if any(n.startswith("SPAN_") for n in names):
            spans.update(n for n in names if n.startswith("SPAN_"))
        if any(n.startswith("METRIC_") for n in names) and isinstance(
            value, ast.Constant
        ):
            if isinstance(value.value, str):
                metrics.add(value.value)
        if "METRICS" in names and isinstance(value, ast.Dict):
            metrics.update(
                key.value
                for key in value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            )
    return spans, metrics


def _span_arg_findings(
    module, spans: set[str]
) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in ("span", "record_span")
        ):
            continue
        if not node.args:
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            yield Finding(
                path=module.path,
                line=arg.lineno,
                col=arg.col_offset,
                rule="RL007",
                symbol=func.attr,
                message=(
                    f"span name {arg.value!r} is a string literal; reference "
                    f"the pinned SPAN_* constant from repro.obs.names so the "
                    f"cross-component span vocabulary cannot fork"
                ),
            )
        elif isinstance(arg, ast.Name):
            if not arg.id.startswith("SPAN_") or arg.id not in spans:
                yield Finding(
                    path=module.path,
                    line=arg.lineno,
                    col=arg.col_offset,
                    rule="RL007",
                    symbol=func.attr,
                    message=(
                        f"span name identifier '{arg.id}' is not a SPAN_* "
                        f"constant declared in {NAMES_PATH}; add it to the "
                        f"registry first"
                    ),
                )
        elif isinstance(arg, ast.Attribute):
            if not arg.attr.startswith("SPAN_") or arg.attr not in spans:
                yield Finding(
                    path=module.path,
                    line=arg.lineno,
                    col=arg.col_offset,
                    rule="RL007",
                    symbol=func.attr,
                    message=(
                        f"span name attribute '{arg.attr}' is not a SPAN_* "
                        f"constant declared in {NAMES_PATH}; add it to the "
                        f"registry first"
                    ),
                )
        # Subscripts, f-strings and other computed expressions are out of
        # static reach; the Trace implementation still rejects unknown
        # names at runtime, and deliberate forwarding wrappers suppress
        # the line explicitly.


def _metric_literal_findings(
    module, metrics: set[str]
) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Constant) and isinstance(node.value, str)):
            continue
        if not _METRIC_LITERAL.fullmatch(node.value):
            continue
        if node.value not in metrics:
            yield Finding(
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                rule="RL007",
                symbol=node.value,
                message=(
                    f"metric family {node.value!r} is not declared in "
                    f"{NAMES_PATH} METRICS; declare it (name, type, help) "
                    f"before emitting or scraping it"
                ),
            )


@rule(
    "RL007",
    "observability name registry conformance",
    rationale=(
        "span names stitch traces across components and repro_* metric "
        "families feed scrape configs; both vocabularies must be declared "
        "once in repro.obs.names, never forked at a call site"
    ),
    version=1,
    project=True,
)
def check_obs_conformance(project) -> Iterator[Finding]:
    registry = project.module(NAMES_PATH)
    if registry is None:
        return  # analysing a tree without the obs package; nothing to pin
    spans, metrics = _registry_names(registry.tree)
    for module in project.modules.values():
        if module.path == NAMES_PATH:
            continue
        yield from _span_arg_findings(module, spans)
        yield from _metric_literal_findings(module, metrics)
