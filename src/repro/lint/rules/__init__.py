"""Rule implementations; importing this package registers every rule."""

from __future__ import annotations

from . import (  # noqa: F401 - imported for the registration side effect
    determinism,
    error_mapper,
    float_equality,
    http_errors,
    obs_conformance,
    registry_conformance,
    schema,
    thread_safety,
)

__all__ = [
    "determinism",
    "error_mapper",
    "float_equality",
    "http_errors",
    "obs_conformance",
    "registry_conformance",
    "schema",
    "thread_safety",
]
