"""Orchestration: load a package, run the rules, filter, report.

The analyzer parses every ``*.py`` under the package root once (stdlib
``ast`` only), hands module rules each in-scope file and project rules the
whole parsed tree, then filters the raw findings through the inline
suppressions and the committed baseline.  Paths are reported relative to
the package root (``service/core.py``), which keeps the baseline stable
across checkouts and lets the same rules run over the tiny fixture
packages the tests build in temporary directories.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline
from .findings import Finding
from .registry import LINT_VERSION, RULES, Rule, ruleset_hash
from .suppress import Suppressions, parse_suppressions

__all__ = [
    "LintError",
    "LintResult",
    "Module",
    "Project",
    "load_project",
    "render_json",
    "render_text",
    "report_dict",
    "run_lint",
]


class LintError(ValueError):
    """The analyzer itself cannot proceed (unparsable source, bad rule id)."""


@dataclass
class Module:
    """One parsed source file."""

    path: str  # posix path relative to the package root
    abspath: Path
    source: str
    lines: list[str]
    tree: ast.Module
    suppressions: Suppressions


@dataclass
class Project:
    """The parsed package: root directory plus every module keyed by path."""

    root: Path
    modules: dict[str, Module] = field(default_factory=dict)

    def module(self, path: str) -> Module | None:
        return self.modules.get(path)


def load_project(root: Path | str) -> Project:
    """Parse every ``*.py`` below ``root`` (skipping ``__pycache__``)."""
    root = Path(root).resolve()
    if not root.is_dir():
        raise LintError(f"lint root {root} is not a directory")
    project = Project(root=root)
    for abspath in sorted(root.rglob("*.py")):
        if "__pycache__" in abspath.parts:
            continue
        rel = abspath.relative_to(root).as_posix()
        source = abspath.read_text()
        try:
            tree = ast.parse(source, filename=str(abspath))
        except SyntaxError as exc:
            raise LintError(f"cannot parse {rel}: {exc}") from exc
        lines = source.splitlines()
        project.modules[rel] = Module(
            path=rel,
            abspath=abspath,
            source=source,
            lines=lines,
            tree=tree,
            suppressions=parse_suppressions(lines),
        )
    return project


@dataclass
class LintResult:
    """Everything one lint run produced, pre-partitioned for the gate."""

    root: str
    rules: list[Rule]
    new: list[Finding]
    grandfathered: list[Finding]
    suppressed: list[Finding]
    files_scanned: int
    baseline_entries: int

    @property
    def ruleset_hash(self) -> str:
        return ruleset_hash(self.rules)

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0


def _select_rules(rule_ids: list[str] | None) -> list[Rule]:
    # Import for the registration side effect; lazy so the service layer can
    # import repro.lint.registry without paying for the rule modules.
    from . import rules as _rules  # noqa: F401

    if rule_ids is None:
        return sorted(RULES.values(), key=lambda r: r.id)
    selected = []
    for rule_id in rule_ids:
        if rule_id not in RULES:
            raise LintError(
                f"unknown lint rule {rule_id!r}; choose from {sorted(RULES)}"
            )
        selected.append(RULES[rule_id])
    return sorted(set(selected), key=lambda r: r.id)


def run_lint(
    root: Path | str,
    *,
    rules: list[str] | None = None,
    baseline: Baseline | Path | str | None = None,
) -> LintResult:
    """Run the (selected) rules over the package at ``root``."""
    selected = _select_rules(rules)
    project = load_project(root)
    raw: list[Finding] = []
    for rule in selected:
        if rule.project:
            raw.extend(rule.check(project))
        else:
            for module in project.modules.values():
                if rule.in_scope(module.path):
                    raw.extend(rule.check(module, project))
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in sorted(raw):
        module = project.module(finding.path)
        if module is not None and module.suppressions.covers(
            finding.line, finding.rule
        ):
            suppressed.append(finding)
        else:
            kept.append(finding)
    if baseline is None:
        base = Baseline()
    elif isinstance(baseline, Baseline):
        base = baseline
    else:
        base = Baseline.load(baseline)
    new, grandfathered = base.split(kept)
    return LintResult(
        root=str(project.root),
        rules=selected,
        new=new,
        grandfathered=grandfathered,
        suppressed=suppressed,
        files_scanned=len(project.modules),
        baseline_entries=len(base),
    )


# ---------------------------------------------------------------------- #
# reporters
# ---------------------------------------------------------------------- #
def render_text(result: LintResult) -> str:
    """Human-readable report: one line per new finding plus a summary."""
    out = [finding.render() for finding in result.new]
    out.append(
        f"repro lint: {len(result.new)} finding(s) "
        f"({len(result.grandfathered)} grandfathered, "
        f"{len(result.suppressed)} suppressed) in {result.files_scanned} files "
        f"[ruleset {result.ruleset_hash}, "
        f"rules {', '.join(r.id for r in result.rules)}]"
    )
    return "\n".join(out)


def report_dict(result: LintResult) -> dict:
    """The JSON reporter's document shape (pinned by ``tests/test_lint.py``)."""
    return {
        "lint_version": LINT_VERSION,
        "ruleset_hash": result.ruleset_hash,
        "root": result.root,
        "rules": [
            {
                "id": r.id,
                "title": r.title,
                "version": r.version,
                "scope": list(r.scope),
                "project": r.project,
            }
            for r in result.rules
        ],
        "summary": {
            "files_scanned": result.files_scanned,
            "new": len(result.new),
            "grandfathered": len(result.grandfathered),
            "suppressed": len(result.suppressed),
            "baseline_entries": result.baseline_entries,
        },
        "findings": [f.as_dict() for f in result.new],
        "grandfathered": [f.as_dict() for f in result.grandfathered],
    }


def render_json(result: LintResult) -> str:
    return json.dumps(report_dict(result), indent=2, sort_keys=True)
