"""Epoch rescheduling: the paper's offline kernel driving an online timeline.

Tasks arrive over time (``MalleableTask.release_time``); whenever the machine
drains, the :class:`EpochRescheduler` gathers every *pending* task (released,
not yet started), schedules that batch with a registry algorithm (the MRT
dual approximation by default) as a fresh offline instance, and appends the
resulting schedule — shifted to the epoch start — to a global timeline.

Epoch semantics
---------------
``quantum=None`` (event-driven)
    A new epoch starts as soon as the previous batch has finished *and* at
    least one task is pending; if the machine drains with nothing pending,
    the clock jumps to the next release.
``quantum=q``
    Epoch starts are additionally spaced at least ``q`` apart: arrivals are
    batched for up to ``q`` time units before the next rescheduling, which
    trades response time for larger (better-packed) batches.

Epochs never overlap: a batch owns the machine until its offline schedule
completes, so the stitched timeline is valid by construction (and is still
re-validated end to end, including release dates).  Work completed in
earlier epochs is carried over — the pending set only ever contains tasks
that have not been started, so no work is re-run.  Because the offline
kernel is non-preemptive and contiguous, every per-epoch guarantee of the
paper (√3 for MRT) applies batch-wise to the stitched timeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..exceptions import ModelError, SchedulingError
from ..model.instance import Instance
from ..model.schedule import Schedule
from ..model.task import EPS
from ..registry import make_scheduler
from ..scheduler import Scheduler
from .plancache import PLAN_MISS, CachedPlan, PlanCache, plan_key

__all__ = [
    "EpochReport",
    "EpochRescheduler",
    "ReplayResult",
    "engine_stats",
    "plan_batch",
]


def plan_batch(
    scheduler: Scheduler,
    batch: Instance,
    plan_cache: PlanCache | None,
    algorithm: str,
    params_json: str,
) -> tuple[Schedule, float, dict]:
    """Schedule one epoch batch, memoised through the plan cache.

    Returns ``(schedule, compute_ms, engine)``.  On a cache hit the stored
    plan is materialised against ``batch`` and the *recorded* engine
    counters are returned, so a warm replay reports byte-identical epochs
    (``compute_ms`` is the only field a hit may change).  A failed epoch
    caches nothing — the scheduler's exception propagates before ``store``.
    """
    if plan_cache is None:
        compute_start = time.perf_counter()
        schedule = scheduler.schedule(batch)
        return (
            schedule,
            (time.perf_counter() - compute_start) * 1e3,
            engine_stats(batch),
        )
    key = plan_key(batch, algorithm, params_json)
    compute_start = time.perf_counter()
    plan = plan_cache.fetch(key)
    if plan is not PLAN_MISS:
        schedule = plan.build_schedule(batch)
        return (
            schedule,
            (time.perf_counter() - compute_start) * 1e3,
            plan.engine_stats(),
        )
    schedule = scheduler.schedule(batch)
    compute_ms = (time.perf_counter() - compute_start) * 1e3
    engine = engine_stats(batch)
    plan_cache.store(key, CachedPlan.from_schedule(schedule, engine))
    return schedule, compute_ms, engine


def engine_stats(batch: Instance) -> dict:
    """Memo statistics of one epoch batch, in the :class:`EpochReport` shape.

    Each epoch schedules a *fresh* subset instance, so its engine counters
    are exactly that epoch's γ(d) evaluations — no cross-epoch reset needed.
    Kernels that never probe γ (the engine was never built) report zeros.
    """
    info = batch.engine_cache_info()
    if info is None:
        return {"memo_hits": 0, "memo_misses": 0, "guesses": 0}
    return {
        "memo_hits": info["hits"],
        "memo_misses": info["misses"],
        "guesses": info["hits"] + info["misses"],
    }


@dataclass(frozen=True)
class EpochReport:
    """Metrics of one rescheduling epoch.

    Attributes
    ----------
    index:
        Epoch number (0-based).
    start:
        Time at which the batch was rescheduled.
    end:
        Completion time of the batch (``start`` + batch makespan).
    num_tasks:
        Number of pending tasks scheduled in this epoch.
    makespan:
        Length of the epoch's committed work: the barrier kernel commits
        whole batches, so this is the batch's offline makespan; the
        availability kernel reports the committed span ``end - start``
        (deferred entries are counted by the epoch that finally commits
        them).
    waiting:
        Mean time the batch's tasks spent between release and epoch start.
    compute_ms:
        Wall-clock milliseconds the offline kernel spent scheduling this
        epoch's batch (the dichotomic search, not the replay bookkeeping).
    engine:
        Allotment-engine memo statistics of the batch: ``memo_hits``,
        ``memo_misses`` and ``guesses`` (distinct γ(d) evaluations, i.e.
        hits + misses).  All zero for kernels that never probe γ.
    """

    index: int
    start: float
    end: float
    num_tasks: int
    makespan: float
    waiting: float
    compute_ms: float = 0.0
    engine: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "num_tasks": self.num_tasks,
            "makespan": self.makespan,
            "waiting": self.waiting,
            "compute_ms": self.compute_ms,
            "engine": dict(self.engine),
        }


@dataclass
class ReplayResult:
    """Outcome of replaying an arrival trace through epoch rescheduling.

    ``schedule`` is the stitched timeline over the *full* instance; it is
    validated (including release dates) before being returned.  Flow time of
    a task is ``completion − release``; its stretch divides the flow by the
    shortest execution time the task could ever achieve (``t(m)``), so a
    stretch of 1 means the task ran immediately at full parallelism.
    Utilisation is measured over the active horizon ``[first epoch start,
    makespan]``.
    """

    schedule: Schedule
    epochs: list[EpochReport] = field(default_factory=list)
    quantum: float | None = None
    algorithm: str = "mrt"
    #: Which online kernel produced the timeline (``"barrier"`` or
    #: ``"availability"`` — see :data:`repro.registry.ONLINE_KERNELS`).  Both
    #: kernels return this same class with the same field shapes; the
    #: differential suite pins that invariant.
    kernel: str = "barrier"

    @property
    def makespan(self) -> float:
        return self.schedule.makespan()

    @property
    def num_epochs(self) -> int:
        return len(self.epochs)

    def flow_times(self) -> np.ndarray:
        """Per-task flow times ``completion_i − release_i`` (task order)."""
        instance = self.schedule.instance
        flows = np.zeros(instance.num_tasks)
        for entry in self.schedule.entries:
            release = instance.tasks[entry.task_index].release_time
            flows[entry.task_index] = entry.end - release
        return flows

    def stretches(self) -> np.ndarray:
        """Per-task stretches ``flow_i / t_i(m)`` (≥ 1 up to rounding)."""
        instance = self.schedule.instance
        min_times = np.array([t.min_time() for t in instance.tasks])
        return self.flow_times() / min_times

    def utilization(self) -> float:
        """Busy fraction of the machine over the active horizon."""
        if not self.epochs:
            return 0.0
        horizon = self.makespan - self.epochs[0].start
        if horizon <= 0:
            return 0.0
        return self.schedule.total_work() / (
            self.schedule.instance.num_procs * horizon
        )

    def compute_ms(self) -> float:
        """Total kernel compute time across epochs (milliseconds)."""
        return float(sum(epoch.compute_ms for epoch in self.epochs))

    def engine_totals(self) -> dict:
        """Allotment-engine memo statistics summed over every epoch."""
        totals = {"memo_hits": 0, "memo_misses": 0, "guesses": 0}
        for epoch in self.epochs:
            for key in totals:
                totals[key] += int(epoch.engine.get(key, 0))
        return totals

    def metrics(self) -> dict:
        """Summary metrics in the shape streamed by the CLI and the service."""
        flows = self.flow_times()
        stretches = self.stretches()
        return {
            "kernel": self.kernel,
            "algorithm": self.algorithm,
            "quantum": self.quantum,
            "num_epochs": self.num_epochs,
            "num_tasks": self.schedule.instance.num_tasks,
            "makespan": self.makespan,
            "mean_flow": float(flows.mean()),
            "max_flow": float(flows.max()),
            "mean_stretch": float(stretches.mean()),
            "max_stretch": float(stretches.max()),
            "utilization": self.utilization(),
            "compute_ms": self.compute_ms(),
            "engine": self.engine_totals(),
        }


class EpochRescheduler:
    """Replay an arrival trace with an offline scheduler as the epoch kernel.

    Parameters
    ----------
    algorithm:
        Registry name of the offline kernel (default ``"mrt"``); resolved
        through :func:`repro.registry.make_scheduler` so the CLI and the
        service accept exactly the same names.
    params:
        Keyword arguments for the kernel's factory.
    quantum:
        Minimum spacing between epoch starts (``None`` = event-driven; see
        the module docstring for the exact semantics).
    scheduler:
        Explicit :class:`~repro.scheduler.Scheduler` instance overriding
        ``algorithm``/``params`` (tests, custom kernels).
    plan_cache:
        Optional :class:`~repro.online.plancache.PlanCache`: epoch batches
        are then content-addressed and repeated batches skip the offline
        kernel entirely (the streaming ``/replay`` shards share one per
        service).  ``None`` (the default) schedules every batch fresh.
    """

    kernel = "barrier"

    def __init__(
        self,
        algorithm: str = "mrt",
        params: dict | None = None,
        *,
        quantum: float | None = None,
        scheduler: Scheduler | None = None,
        plan_cache: PlanCache | None = None,
    ) -> None:
        if quantum is not None and quantum < 0:
            raise ModelError("quantum must be non-negative (or None)")
        self.algorithm = algorithm
        self.params = dict(params or {})
        self.quantum = None if not quantum else float(quantum)
        self._scheduler = scheduler or make_scheduler(algorithm, self.params)
        self.plan_cache = plan_cache
        self._params_json = PlanCache.params_json(self.params)

    # ------------------------------------------------------------------ #
    def replay(
        self,
        instance: Instance,
        *,
        on_epoch: Callable[[EpochReport], None] | None = None,
    ) -> ReplayResult:
        """Replay ``instance``'s arrival trace; returns the stitched timeline.

        ``on_epoch`` is invoked with each :class:`EpochReport` as soon as its
        batch has been scheduled (the CLI streams per-epoch metrics through
        it).  Works on offline instances too (all releases 0): the replay
        then degenerates to a single epoch whose schedule *is* the kernel's
        offline schedule.
        """
        releases = instance.release_times
        timeline = Schedule(instance, algorithm=f"epoch-{self.algorithm}")
        unscheduled = sorted(range(instance.num_tasks), key=lambda i: releases[i])
        epochs: list[EpochReport] = []
        clock = float(releases[unscheduled[0]]) if unscheduled else 0.0
        guard = 0
        while unscheduled:
            guard += 1
            if guard > 2 * instance.num_tasks + 2:
                raise SchedulingError(
                    "epoch replay failed to make progress"
                )  # pragma: no cover - defensive
            pending = [i for i in unscheduled if releases[i] <= clock + EPS]
            if not pending:
                # Empty epoch slot (quantum boundaries can land between
                # arrivals, and the EPS release test keeps boundary arrivals
                # in the *following* slot): skip it entirely — epochs always
                # carry at least one task, pinned by the quantum-boundary
                # regression test.  The jump is forward: every unscheduled
                # release is > clock + EPS here.
                clock = float(min(releases[i] for i in unscheduled))
                continue
            batch = instance.subset(
                pending, name=f"{instance.name}@epoch{len(epochs)}"
            )
            batch_schedule, compute_ms, batch_engine = plan_batch(
                self._scheduler, batch, self.plan_cache,
                self.algorithm, self._params_json,
            )
            # The epoch end is the max finish of the *stitched* entries (not
            # ``clock + batch makespan``): the two differ by float rounding,
            # and the next epoch must start bit-exactly when the machine
            # drains or the simulator sees a one-ulp overlap.
            end = clock
            for entry in batch_schedule.entries:
                placed = timeline.add(
                    pending[entry.task_index],
                    entry.start + clock,
                    entry.first_proc,
                    entry.num_procs,
                )
                end = max(end, placed.end)
            report = EpochReport(
                index=len(epochs),
                start=clock,
                end=end,
                num_tasks=len(pending),
                makespan=batch_schedule.makespan(),
                waiting=float(np.mean([clock - releases[i] for i in pending])),
                compute_ms=compute_ms,
                engine=batch_engine,
            )
            epochs.append(report)
            if on_epoch is not None:
                on_epoch(report)
            scheduled = set(pending)
            unscheduled = [i for i in unscheduled if i not in scheduled]
            clock = end if self.quantum is None else max(end, clock + self.quantum)
        timeline.validate(respect_release=True)
        return ReplayResult(
            schedule=timeline,
            epochs=epochs,
            quantum=self.quantum,
            algorithm=self.algorithm,
            kernel=self.kernel,
        )
