"""Service and CLI integration for online replays (``POST /replay``).

Translates a decoded JSON payload into an :class:`~repro.online.epoch.
EpochRescheduler` run and shapes the response the HTTP frontend and the CLI
stream back:

``replay_from_payload``
    Parse ``{"trace" | "generate", "kernel", "algorithm", "params",
    "quantum", "validate"}`` into ``(Instance, rescheduler, validate)``.  A
    ``"trace"`` is an :meth:`Instance.as_dict` payload (tasks may carry
    ``"release"``); a ``"generate"`` spec draws a synthetic trace from
    :mod:`repro.workloads.arrivals` (``{"pattern", "family", "tasks",
    "procs", "seed", ...}``); ``"kernel"`` selects the replay kernel from
    :data:`repro.registry.ONLINE_KERNELS` (default ``"barrier"``).
``compute_replay_response``
    Run the replay and build the JSON-serialisable response: the summary
    metrics, the per-epoch reports, the stitched schedule, the trace
    fingerprint and (optionally) an independent simulate-and-check
    validation with release dates enforced.
"""

from __future__ import annotations

from ..exceptions import ModelError
from ..model.instance import Instance
from ..registry import make_rescheduler
from ..sim.validate import simulate_and_check
from ..workloads.arrivals import ARRIVAL_PATTERNS, make_trace
from .availability import AvailabilityRescheduler
from .epoch import EpochRescheduler

__all__ = ["compute_replay_response", "replay_from_payload"]

#: ``generate`` keys forwarded to the arrival-pattern generators verbatim.
_GENERATE_OPTIONS = (
    "rate",
    "horizon",
    "bursts",
    "jitter",
    "periods",
    "peak_to_trough",
    "alpha",
)


def replay_from_payload(
    payload: dict,
) -> tuple[Instance, EpochRescheduler | AvailabilityRescheduler, bool]:
    """Parse a ``POST /replay`` body; raises :class:`ModelError` on bad input."""
    if not isinstance(payload, dict):
        raise ModelError("request body must be a JSON object")
    if ("trace" in payload) == ("generate" in payload):
        raise ModelError("request must carry exactly one of 'trace' or 'generate'")
    try:
        if "trace" in payload:
            trace = Instance.from_dict(payload["trace"])
        else:
            spec = payload["generate"]
            if not isinstance(spec, dict):
                raise ModelError("'generate' must be an object")
            pattern = spec.get("pattern", "poisson")
            if pattern not in ARRIVAL_PATTERNS:
                raise ModelError(
                    f"unknown arrival pattern {pattern!r}; choose from "
                    f"{sorted(ARRIVAL_PATTERNS)}"
                )
            options = {
                key: spec[key] for key in _GENERATE_OPTIONS if key in spec
            }
            trace = make_trace(
                pattern,
                spec.get("family", "mixed"),
                int(spec.get("tasks", 32)),
                int(spec.get("procs", 16)),
                seed=int(spec.get("seed", 0)),
                **options,
            )
    except ModelError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ModelError(f"malformed replay request: {exc}") from exc
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ModelError("'params' must be an object")
    algorithm = payload.get("algorithm", "mrt")
    if not isinstance(algorithm, str):
        raise ModelError("'algorithm' must be a string")
    quantum = payload.get("quantum")
    if quantum is not None:
        try:
            quantum = float(quantum)
        except (TypeError, ValueError) as exc:
            raise ModelError("'quantum' must be a number or null") from exc
    kernel = payload.get("kernel", "barrier")
    if not isinstance(kernel, str):
        raise ModelError("'kernel' must be a string")
    rescheduler = make_rescheduler(kernel, algorithm, params, quantum=quantum)
    return trace, rescheduler, bool(payload.get("validate", False))


def compute_replay_response(
    trace: Instance,
    rescheduler: EpochRescheduler | AvailabilityRescheduler,
    validate: bool,
) -> dict:
    """Run the replay and shape the ``POST /replay`` response payload."""
    result = rescheduler.replay(trace)
    payload: dict = {
        "result": {
            **result.metrics(),
            "epochs": [epoch.as_dict() for epoch in result.epochs],
            "schedule": result.schedule.as_dict(),
        },
        "fingerprint": trace.fingerprint(),
        "validation": None,
    }
    if validate:
        sim = simulate_and_check(result.schedule, respect_release=True)
        payload["validation"] = {
            "simulated_makespan": sim.makespan,
            "utilization": sim.utilization,
            "events": len(sim.events),
        }
    return payload
