"""Service and CLI integration for online replays (``POST /replay``).

Translates a decoded JSON payload into an :class:`~repro.online.epoch.
EpochRescheduler` run and shapes the response the HTTP frontend and the CLI
stream back:

``replay_from_payload``
    Parse ``{"trace" | "generate", "kernel", "algorithm", "params",
    "quantum", "validate"}`` into ``(Instance, rescheduler, validate)``.  A
    ``"trace"`` is an :meth:`Instance.as_dict` payload (tasks may carry
    ``"release"``); a ``"generate"`` spec draws a synthetic trace from
    :mod:`repro.workloads.arrivals` (``{"pattern", "family", "tasks",
    "procs", "seed", ...}``); ``"kernel"`` selects the replay kernel from
    :data:`repro.registry.ONLINE_KERNELS` (default ``"barrier"``).
``compute_replay_response``
    Run the replay and build the JSON-serialisable response: the summary
    metrics, the per-epoch reports, the stitched schedule, the trace
    fingerprint and (optionally) an independent simulate-and-check
    validation with release dates enforced.
``iter_replay_frames``
    The streaming producer behind the chunked ``POST /replay``: a generator
    of NDJSON frames — one ``{"epoch": ...}`` line per
    :class:`~repro.online.epoch.EpochReport` as it is scheduled, then the
    full ``compute_replay_response`` document as the final line, so a
    client that concatenates the final frame sees exactly the legacy
    synchronous response.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from typing import Iterator

from ..exceptions import ModelError
from ..model.instance import Instance
from ..registry import make_rescheduler
from ..sim.validate import simulate_and_check
from ..workloads.arrivals import ARRIVAL_PATTERNS, make_trace
from .availability import AvailabilityRescheduler
from .epoch import EpochRescheduler

__all__ = [
    "compute_replay_response",
    "iter_replay_frames",
    "replay_from_payload",
]

#: ``generate`` keys forwarded to the arrival-pattern generators verbatim.
_GENERATE_OPTIONS = (
    "rate",
    "horizon",
    "bursts",
    "jitter",
    "periods",
    "peak_to_trough",
    "alpha",
)


def replay_from_payload(
    payload: dict,
    *,
    plan_cache=None,
) -> tuple[Instance, EpochRescheduler | AvailabilityRescheduler, bool]:
    """Parse a ``POST /replay`` body; raises :class:`ModelError` on bad input.

    ``plan_cache`` (an optional :class:`~repro.online.plancache.PlanCache`)
    is handed to the kernel so the serving daemon memoises per-epoch batch
    plans across requests.
    """
    if not isinstance(payload, dict):
        raise ModelError("request body must be a JSON object")
    if ("trace" in payload) == ("generate" in payload):
        raise ModelError("request must carry exactly one of 'trace' or 'generate'")
    try:
        if "trace" in payload:
            trace = Instance.from_dict(payload["trace"])
        else:
            spec = payload["generate"]
            if not isinstance(spec, dict):
                raise ModelError("'generate' must be an object")
            pattern = spec.get("pattern", "poisson")
            if pattern not in ARRIVAL_PATTERNS:
                raise ModelError(
                    f"unknown arrival pattern {pattern!r}; choose from "
                    f"{sorted(ARRIVAL_PATTERNS)}"
                )
            options = {
                key: spec[key] for key in _GENERATE_OPTIONS if key in spec
            }
            trace = make_trace(
                pattern,
                spec.get("family", "mixed"),
                int(spec.get("tasks", 32)),
                int(spec.get("procs", 16)),
                seed=int(spec.get("seed", 0)),
                **options,
            )
    except ModelError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ModelError(f"malformed replay request: {exc}") from exc
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ModelError("'params' must be an object")
    algorithm = payload.get("algorithm", "mrt")
    if not isinstance(algorithm, str):
        raise ModelError("'algorithm' must be a string")
    quantum = payload.get("quantum")
    if quantum is not None:
        try:
            quantum = float(quantum)
        except (TypeError, ValueError) as exc:
            raise ModelError("'quantum' must be a number or null") from exc
    kernel = payload.get("kernel", "barrier")
    if not isinstance(kernel, str):
        raise ModelError("'kernel' must be a string")
    rescheduler = make_rescheduler(
        kernel, algorithm, params, quantum=quantum, plan_cache=plan_cache
    )
    return trace, rescheduler, bool(payload.get("validate", False))


def compute_replay_response(
    trace: Instance,
    rescheduler: EpochRescheduler | AvailabilityRescheduler,
    validate: bool,
    *,
    on_epoch=None,
) -> dict:
    """Run the replay and shape the ``POST /replay`` response payload.

    ``on_epoch`` is forwarded to :meth:`replay` — the streaming frontend
    hooks it to emit one frame per :class:`~repro.online.epoch.EpochReport`.
    """
    result = rescheduler.replay(trace, on_epoch=on_epoch)
    payload: dict = {
        "result": {
            **result.metrics(),
            "epochs": [epoch.as_dict() for epoch in result.epochs],
            "schedule": result.schedule.as_dict(),
        },
        "fingerprint": trace.fingerprint(),
        "validation": None,
    }
    if validate:
        sim = simulate_and_check(result.schedule, respect_release=True)
        payload["validation"] = {
            "simulated_makespan": sim.makespan,
            "utilization": sim.utilization,
            "events": len(sim.events),
        }
    return payload


class _StreamClosed(Exception):
    """Raised inside the producer when the consumer abandoned the stream."""


#: Queue sentinel: the producer is done, every frame has been enqueued.
_DONE = object()


def iter_replay_frames(
    trace: Instance,
    rescheduler: EpochRescheduler | AvailabilityRescheduler,
    validate: bool,
    *,
    queue_size: int = 32,
) -> Iterator[bytes]:
    """NDJSON frames of one streamed replay, produced as epochs complete.

    Bridges the kernel's push-style ``on_epoch`` callback into the
    pull-style iterable the transports consume: the replay runs on a
    producer thread feeding a bounded queue; each yielded frame is one
    ``{"epoch": <EpochReport.as_dict()>}\\n`` line, and the final frame is
    the complete :func:`compute_replay_response` document (plus
    ``elapsed_ms``) — concatenating nothing but the last line reproduces
    the legacy synchronous response byte-for-byte.

    Error contract: a kernel exception is re-raised *here*, mid-iteration —
    the transport then aborts the chunked stream without the terminating
    zero chunk, so truncation is the client's error signal.  Closing the
    generator early (client went away) sets a cancel flag that the
    producer's next ``put`` turns into a clean thread exit: no thread leak,
    no unbounded buffering of an abandoned replay.
    """
    frames: queue.Queue = queue.Queue(maxsize=queue_size)
    cancelled = threading.Event()

    def put(item) -> None:
        while True:
            if cancelled.is_set():
                raise _StreamClosed
            try:
                frames.put(item, timeout=0.1)
                return
            except queue.Full:
                continue

    def produce() -> None:
        start = time.perf_counter()
        try:
            payload = compute_replay_response(
                trace,
                rescheduler,
                validate,
                on_epoch=lambda report: put({"epoch": report.as_dict()}),
            )
            payload["elapsed_ms"] = (time.perf_counter() - start) * 1e3
            put(payload)
            put(_DONE)
        except _StreamClosed:
            pass
        except BaseException as exc:  # noqa: BLE001 — relayed to the consumer
            try:
                put(exc)
            except _StreamClosed:
                pass

    producer = threading.Thread(
        target=produce, name="repro-replay-stream", daemon=True
    )
    producer.start()
    try:
        while True:
            item = frames.get()
            if item is _DONE:
                return
            if isinstance(item, BaseException):
                raise item
            yield json.dumps(item).encode() + b"\n"
    finally:
        cancelled.set()
