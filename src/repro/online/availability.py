"""Availability-aware online kernel: partial-machine carry-over, no barrier.

The barrier kernel (:class:`~repro.online.epoch.EpochRescheduler`) only
starts a new batch once the previous one has drained the *whole* machine.
That reproduces the paper's batch-wise guarantee but wastes every processor
that frees up early and inflates flow time.  This module replaces the
barrier with a machine-availability-aware kernel:

:class:`AvailabilityProfile`
    The availability *staircase* at an instant ``now``: for every processor
    the time at which the still-running carry-over entries hand it back
    (``busy_until``), plus the derived free-capacity step function
    ``t -> #{p : busy_until[p] <= t}`` — non-negative, non-decreasing, a
    monotone merge of the carry-over finish events.

:class:`AvailabilityRescheduler`
    At every arrival epoch the pending set is scheduled as a fresh offline
    batch (same registry kernel as the barrier), but the batch is stitched
    into the *remaining* capacity instead of waiting for a drain: entries
    are replayed in batch-start order and each placement is shifted
    per-processor by the staircase —

        ``start = max(epoch + batch_start, max_{p in block} busy_until[p])``

    which is overlap-free by construction and delays every entry by at most
    the tallest carry-over step (the shift preserves the batch's relative
    order on shared processors).  Only the entries that start *before the
    next epoch* are committed; the rest stay pending and are re-planned
    together with the next arrivals, so packing quality is not sacrificed
    to early commitment.  Committed work is debited exactly as under the
    barrier: a task is scheduled at most once and never re-run, so stitched
    timelines stay ``simulate_and_check(respect_release=True)``-valid.

With all release times zero the replay degenerates to a single epoch with
an empty staircase and reproduces the offline kernel's schedule bit-exactly
— the anchor of the differential conformance suite
(``tests/test_online_differential.py``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..exceptions import ModelError, SchedulingError
from ..model.instance import Instance
from ..model.schedule import Schedule
from ..model.task import EPS
from ..registry import make_scheduler
from ..scheduler import Scheduler
from .epoch import EpochReport, EpochRescheduler, ReplayResult, plan_batch
from .plancache import PlanCache

__all__ = ["AvailabilityProfile", "AvailabilityRescheduler"]


class AvailabilityProfile:
    """The free-processor staircase of a machine at a given instant.

    Parameters
    ----------
    busy_until:
        ``busy_until[p]`` is the time at which processor ``p`` is handed
        back by the committed carry-over entries; values below ``now`` are
        floored at ``now`` (already free).
    now:
        The instant the profile describes.
    """

    __slots__ = ("now", "busy_until")

    def __init__(
        self, busy_until: np.ndarray | list[float], now: float = 0.0
    ) -> None:
        self.now = float(now)
        arr = np.asarray(busy_until, dtype=float)
        if arr.ndim != 1 or arr.size < 1:
            raise ModelError("busy_until must be a non-empty 1-D array")
        if not np.all(np.isfinite(arr)):
            raise ModelError("busy_until entries must be finite")
        self.busy_until = np.maximum(arr, self.now)

    @classmethod
    def from_schedule(
        cls, schedule: Schedule, now: float = 0.0
    ) -> "AvailabilityProfile":
        """Profile of the carry-over of ``schedule`` still running at ``now``."""
        return cls(schedule.busy_until(now), now)

    @property
    def num_procs(self) -> int:
        return int(self.busy_until.size)

    def free_capacity(self, time: float) -> int:
        """Number of processors free (for good) at ``time``."""
        return int(np.count_nonzero(self.busy_until <= time + EPS))

    def block_ready(self, first_proc: int, num_procs: int) -> float:
        """When the contiguous block ``first_proc .. first_proc+num_procs-1``
        is entirely free — the per-processor shift the kernel applies."""
        if num_procs < 1 or first_proc < 0 or first_proc + num_procs > self.num_procs:
            raise ModelError(
                f"block {first_proc}..{first_proc + num_procs - 1} outside "
                f"0..{self.num_procs - 1}"
            )
        return float(self.busy_until[first_proc : first_proc + num_procs].max())

    def next_free(self) -> float:
        """Earliest time any processor frees up (``now`` if one already is)."""
        return float(self.busy_until.min())

    def drain_time(self) -> float:
        """When the whole machine is free — the barrier kernel's epoch start."""
        return float(self.busy_until.max())

    def steps(self) -> list[tuple[float, int]]:
        """The staircase as ``(time, free_capacity)`` breakpoints.

        Starts at ``(now, free_capacity(now))`` and adds one step per
        distinct carry-over finish event; both coordinates are strictly
        increasing across steps and the last step reaches the full machine
        — the monotone merge the property tests pin.
        """
        points = [(self.now, self.free_capacity(self.now))]
        for t in np.unique(self.busy_until):
            time = float(t)
            capacity = self.free_capacity(time)
            if time > self.now + EPS and capacity > points[-1][1]:
                points.append((time, capacity))
        return points


class AvailabilityRescheduler:
    """Replay an arrival trace scheduling into the *remaining* capacity.

    Drop-in alternative to :class:`~repro.online.epoch.EpochRescheduler`
    (same constructor, same :class:`~repro.online.epoch.ReplayResult`), the
    ``"availability"`` entry of :data:`repro.registry.ONLINE_KERNELS`.

    Parameters
    ----------
    algorithm:
        Registry name of the offline batch kernel (default ``"mrt"``).
    params:
        Keyword arguments for the kernel's factory.
    quantum:
        Minimum spacing between arrival epochs (``None`` = event-driven: one
        epoch per distinct release time).  Larger quanta batch more arrivals
        per planning round *and* commit further ahead (entries starting
        before the next epoch are locked in).
    scheduler:
        Explicit :class:`~repro.scheduler.Scheduler` overriding
        ``algorithm``/``params``.
    fallback:
        With the default ``True``, the replay also stitches the barrier
        timeline (same kernel, same quantum) and returns it on the rare
        traces where partial carry-over regresses — a no-regret guard.  Two
        online policies cannot per-trace dominate each other in general
        (early commitment occasionally hurts a later arrival), but the
        replay abstraction sees the whole trace, so keeping the barrier as
        a fallback plan makes two invariants hold rather than tend:
        ``mean_flow(availability) <= mean_flow(barrier)``, and the
        availability makespan never exceeds both the barrier makespan and
        :attr:`makespan_budget` times the trace's offline lower bound (the
        lower bound never exceeds the clairvoyant offline makespan, so
        staying within the budget certifies the benchmark's competitive
        bar whenever the barrier meets it).  The differential suite pins
        the flow invariant and the benchmark reports how often the
        carry-over path wins outright.  ``False`` returns the raw
        carry-over stitching unconditionally.
    plan_cache:
        Optional :class:`~repro.online.plancache.PlanCache` shared with the
        barrier kernel: repeated epoch batches (including the fallback
        pass's) skip the offline kernel.  ``None`` schedules every batch
        fresh.
    """

    kernel = "availability"

    #: Carry-over makespan budget as a multiple of the trace's offline
    #: lower bound — the online subsystem's certified competitive target.
    #: A carry-over timeline above the budget *and* above the barrier's
    #: makespan is discarded in favour of the barrier stitching.
    makespan_budget = 2.0

    def __init__(
        self,
        algorithm: str = "mrt",
        params: dict | None = None,
        *,
        quantum: float | None = None,
        scheduler: Scheduler | None = None,
        fallback: bool = True,
        plan_cache: PlanCache | None = None,
    ) -> None:
        if quantum is not None and quantum < 0:
            raise ModelError("quantum must be non-negative (or None)")
        self.algorithm = algorithm
        self.params = dict(params or {})
        self.quantum = None if not quantum else float(quantum)
        self.fallback = bool(fallback)
        self._scheduler = scheduler or make_scheduler(algorithm, self.params)
        self.plan_cache = plan_cache
        self._params_json = PlanCache.params_json(self.params)

    # ------------------------------------------------------------------ #
    def replay(
        self,
        instance: Instance,
        *,
        on_epoch: Callable[[EpochReport], None] | None = None,
    ) -> ReplayResult:
        """Replay ``instance``'s arrival trace; returns the stitched timeline.

        Runs the carry-over pass (:meth:`carryover_replay`) and, with
        ``fallback`` enabled, the barrier pass too, returning whichever
        timeline achieves the better mean flow (ties favour carry-over, so
        offline instances keep the bit-exact single-epoch schedule).
        Because the winner is only known afterwards, ``on_epoch`` streams
        the chosen result's epochs after the decision rather than during
        scheduling.
        """
        result = self.carryover_replay(instance)
        if self.fallback:
            barrier = EpochRescheduler(
                self.algorithm,
                self.params,
                quantum=self.quantum,
                scheduler=self._scheduler,
                plan_cache=self.plan_cache,
            ).replay(instance)
            flow_ok = float(result.flow_times().mean()) <= float(
                barrier.flow_times().mean()
            )
            makespan_ok = (
                result.makespan <= barrier.makespan
                or result.makespan
                <= self.makespan_budget * instance.lower_bound()
            )
            if not (flow_ok and makespan_ok):
                # Relabel the adopted barrier timeline so clients never see
                # contradictory metadata (kernel="availability" but an
                # "epoch-..." schedule tag).  The epochs *are* the barrier's
                # full-machine epochs: they describe the timeline actually
                # returned.
                adopted = Schedule(
                    instance, algorithm=f"availability-{self.algorithm}"
                )
                adopted.extend(barrier.schedule.entries)
                result = ReplayResult(
                    schedule=adopted,
                    epochs=barrier.epochs,
                    quantum=self.quantum,
                    algorithm=self.algorithm,
                    kernel=self.kernel,
                )
        if on_epoch is not None:
            for report in result.epochs:
                on_epoch(report)
        return result

    def carryover_replay(self, instance: Instance) -> ReplayResult:
        """The raw partial-machine carry-over pass (no barrier fallback).

        Epochs fire at arrival times (quantum-spaced when configured); at
        each epoch the uncommitted pending set is re-planned as one offline
        batch, shifted onto the availability staircase and committed only up
        to the next epoch.  After the last arrival the final plan is
        committed in full, so every task is scheduled exactly once.
        """
        releases = instance.release_times
        timeline = Schedule(instance, algorithm=f"availability-{self.algorithm}")
        remaining = sorted(range(instance.num_tasks), key=lambda i: (releases[i], i))
        pending: list[int] = []
        busy_until = np.zeros(instance.num_procs)
        epochs: list[EpochReport] = []
        clock = float(releases[remaining[0]]) if remaining else 0.0
        guard = 0
        while remaining or pending:
            guard += 1
            if guard > 2 * instance.num_tasks + 2:
                raise SchedulingError(
                    "availability replay failed to make progress"
                )  # pragma: no cover - defensive
            if not pending:
                # Nothing uncommitted: jump (never backwards) to the next
                # arrival instead of planning an empty batch.
                clock = max(clock, float(min(releases[i] for i in remaining)))
            newly = [i for i in remaining if releases[i] <= clock + EPS]
            if newly:
                arrived = set(newly)
                remaining = [i for i in remaining if i not in arrived]
                pending.extend(newly)
            if not pending:  # pragma: no cover - defensive (jump guarantees one)
                continue
            # The commit cutoff is the next planning opportunity: the next
            # arrival (quantum-spaced when configured), or never again after
            # the last arrival — then the whole plan is committed.
            if not remaining:
                cutoff = float("inf")
            else:
                next_release = float(min(releases[i] for i in remaining))
                cutoff = (
                    next_release
                    if self.quantum is None
                    else max(clock + self.quantum, next_release)
                )
            batch = instance.subset(
                pending, name=f"{instance.name}@avail{len(epochs)}"
            )
            batch_schedule, compute_ms, batch_engine = plan_batch(
                self._scheduler, batch, self.plan_cache,
                self.algorithm, self._params_json,
            )
            profile = AvailabilityProfile(busy_until, clock)
            proc_free = profile.busy_until.copy()
            committed: set[int] = set()
            end = clock
            waited = 0.0
            # Replaying the batch in start order keeps the plan's relative
            # order on shared processors, so the per-processor shift below
            # can never create an overlap and delays every entry by at most
            # the tallest carry-over step.
            order = sorted(
                range(len(batch_schedule.entries)),
                key=lambda k: (batch_schedule.entries[k].start, k),
            )
            for k in order:
                entry = batch_schedule.entries[k]
                block = slice(entry.first_proc, entry.first_proc + entry.num_procs)
                start = max(clock + entry.start, float(proc_free[block].max()))
                if start >= cutoff - EPS:
                    continue  # re-planned with the next arrivals
                task = pending[entry.task_index]
                placed = timeline.add(
                    task, start, entry.first_proc, entry.num_procs
                )
                proc_free[block] = placed.end
                committed.add(task)
                end = max(end, placed.end)
                waited += clock - releases[task]
            if committed:
                # ``makespan`` is the committed span of *this* epoch
                # (``end - start``), not the planned batch makespan: deferred
                # entries are re-planned and reported by the epoch that
                # finally commits them, so per-epoch numbers never
                # double-count work.
                report = EpochReport(
                    index=len(epochs),
                    start=clock,
                    end=end,
                    num_tasks=len(committed),
                    makespan=end - clock,
                    waiting=waited / len(committed),
                    compute_ms=compute_ms,
                    engine=batch_engine,
                )
                epochs.append(report)
                pending = [i for i in pending if i not in committed]
            busy_until = proc_free
            if remaining:
                clock = cutoff
        timeline.validate(respect_release=True)
        return ReplayResult(
            schedule=timeline,
            epochs=epochs,
            quantum=self.quantum,
            algorithm=self.algorithm,
            kernel=self.kernel,
        )
