"""Content-addressed cache of per-epoch batch plans.

Every epoch of a replay schedules one *batch* (the pending subset) with an
offline kernel; for overlapping traces and re-runs those batches repeat
exactly, and the kernel's dichotomic search is the dominant cost.  This
module caches the *outcome* of that search — the placed entries plus the
allotment-engine counters — keyed by a content address in the style of
:meth:`repro.model.instance.Instance.fingerprint`:

``plan_key = blake2b-128( b"repro-plan-v1" || batch.fingerprint()
                          || algorithm || canonical-params-JSON )``

The batch fingerprint already covers processor count, release dates and the
full execution-time profiles in *task order*, and the offline schedulers
tie-break by task index — so the key is deliberately order-sensitive: two
batches with the same tasks in a different order are different plans.  The
kernel (``barrier``/``availability``) is **not** part of the key: both
kernels call the same offline scheduler per batch, so sharing plans across
kernels is safe and is exactly what makes a shard warm for both.  The
``(trace-prefix, kernel)`` pair is the cluster's *routing* key (see
:func:`repro.service.cluster.router.replay_routing_key`), not the plan key.

Engine counters are stored *inside* the cached plan so a warm replay
reports the identical deterministic ``engine`` block as a cold one —
``compute_ms`` is the only field a cache hit may change.  The key schema is
pinned under lint rule RL003 (``FINGERPRINT_TAGS``), so silent drift is a
lint failure, not a stale-cache incident.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from hashlib import blake2b
from typing import Callable

from ..model.instance import Instance
from ..model.schedule import Schedule
from ..service.cache import MISS, LRUTTLCache

__all__ = ["CachedPlan", "PLAN_MISS", "PlanCache", "plan_key"]

#: The miss sentinel, re-exported so kernel call sites need one import only.
PLAN_MISS = MISS

def plan_key(batch: Instance, algorithm: str, params_json: str) -> str:
    """Content address of one epoch batch's offline plan (hex, 128-bit).

    The domain tag is RL003-pinned (``FINGERPRINT_TAGS``): bump the version
    suffix whenever the cached-plan layout changes so old processes never
    replay a plan they cannot rebuild.
    """
    digest = blake2b(digest_size=16)
    digest.update(b"repro-plan-v1")
    digest.update(batch.fingerprint().encode())
    digest.update(algorithm.encode())
    digest.update(params_json.encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class CachedPlan:
    """One memoised batch plan: placed entries + deterministic engine stats.

    Entries are stored batch-relative ``(task_index, start, first_proc,
    num_procs)`` tuples in placement order — rebuilding preserves entry
    order, which is what keeps a warm replay byte-identical to a cold one.
    """

    algorithm: str
    entries: tuple[tuple[int, float, int, int], ...]
    engine: tuple[tuple[str, int], ...]

    @classmethod
    def from_schedule(cls, schedule: Schedule, engine: dict) -> "CachedPlan":
        return cls(
            algorithm=schedule.algorithm,
            entries=tuple(
                (entry.task_index, entry.start, entry.first_proc, entry.num_procs)
                for entry in schedule.entries
            ),
            engine=tuple(sorted(engine.items())),
        )

    def build_schedule(self, batch: Instance) -> Schedule:
        """Materialise the plan against ``batch`` (same content, fresh object)."""
        schedule = Schedule(batch, algorithm=self.algorithm)
        for task_index, start, first_proc, num_procs in self.entries:
            schedule.add(task_index, start, first_proc, num_procs)
        return schedule

    def engine_stats(self) -> dict:
        """The batch's γ(d) memo counters as recorded when the plan was built."""
        return dict(self.engine)


class PlanCache:
    """Thread-safe LRU of :class:`CachedPlan` with its own hit/miss metrics.

    A thin wrapper over :class:`~repro.service.cache.LRUTTLCache` (no TTL —
    plans are content-addressed, they cannot go stale) that lives beside
    the shard's result LRU in :class:`~repro.service.core.SchedulerService`
    and surfaces through ``/metrics`` as the ``plan_cache`` block.
    """

    def __init__(
        self,
        capacity: int = 512,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._cache = LRUTTLCache(capacity, clock=clock)

    @staticmethod
    def params_json(params: dict | None) -> str:
        """Canonical JSON of kernel params, the third plan-key component."""
        return json.dumps(params or {}, sort_keys=True, separators=(",", ":"))

    def fetch(self, key: str):
        """Cached plan under ``key`` or :data:`~repro.service.cache.MISS`."""
        return self._cache.get(key)

    def store(self, key: str, plan: CachedPlan) -> None:
        self._cache.put(key, plan)

    def clear(self) -> int:
        """Drop every plan; returns how many were dropped (``/purge``)."""
        dropped = len(self._cache)
        self._cache.clear()
        return dropped

    @property
    def stats(self):
        return self._cache.stats

    def metrics(self) -> dict:
        return {**self._cache.stats.as_dict(), "size": len(self._cache)}

    def __len__(self) -> int:
        return len(self._cache)
