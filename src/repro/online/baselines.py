"""Online baselines the replay kernels are judged against.

The competitive-ratio table needs comparison points that are *not* epoch
rescheduling, otherwise the kernels are only ever judged against themselves.
Both baselines here are fed the trace arrival-by-arrival and commit to a
rigid allotment per task (the canonical allotment γ_i at the trace's offline
lower bound — the width the paper's analysis says a deadline-feasible
schedule would grant), so they model what a conventional runtime system
does with no rescheduling at all:

:func:`online_list_replay`
    :class:`~repro.sim.engine.OnlineListSimulator` in arrival order: tasks
    join the waiting queue at their release and are started whenever a
    contiguous block of their width is free (event-driven Graham list
    scheduling with back-filling).
:func:`first_fit_replay`
    First-Fit by arrival: each task is placed, at its release, on the
    contiguous block of its width that frees up earliest (leftmost on ties)
    given everything placed so far — no queue, no back-filling, one
    irrevocable decision per task.

Both return release-respecting validated schedules; summarise them with
:func:`flow_summary` for the benchmark table.
"""

from __future__ import annotations

import numpy as np

from ..model.allotment import Allotment
from ..model.instance import Instance
from ..model.schedule import Schedule
from ..sim.engine import OnlineListSimulator

__all__ = [
    "arrival_allotment",
    "first_fit_replay",
    "flow_summary",
    "online_list_replay",
]


def arrival_allotment(trace: Instance) -> Allotment:
    """Rigid per-task widths for the arrival baselines.

    Uses the canonical allotment γ_i(d) at the trace's offline lower bound —
    the fewest processors with which task ``i`` still meets the bound.  The
    bound dominates every ``t_i(m)``, so γ_i always exists.
    """
    deadline = trace.lower_bound()
    widths = []
    for gamma, task in zip(trace.canonical_procs(deadline), trace.tasks):
        if gamma is None:  # pragma: no cover - lower_bound >= t_i(m) rules it out
            gamma = int(np.argmin(task.times)) + 1
        widths.append(int(gamma))
    return Allotment(trace, widths)


def online_list_replay(
    trace: Instance, allotment: Allotment | None = None
) -> Schedule:
    """Run the online list-scheduling baseline arrival-by-arrival."""
    allotment = allotment or arrival_allotment(trace)
    releases = trace.release_times
    order = sorted(range(trace.num_tasks), key=lambda i: (releases[i], i))
    return OnlineListSimulator(allotment, order=order).run()


def first_fit_replay(
    trace: Instance, allotment: Allotment | None = None
) -> Schedule:
    """First-Fit by arrival: place each task at its release, irrevocably.

    Tasks are taken in arrival order; each is assigned the contiguous block
    of its width whose processors are all handed back earliest (the
    ``busy_until`` staircase of everything placed before it), leftmost on
    ties, and starts as soon as that block frees — never before its release.
    """
    allotment = allotment or arrival_allotment(trace)
    releases = trace.release_times
    busy_until = np.zeros(trace.num_procs)
    schedule = Schedule(trace, algorithm="first-fit-arrival")
    for task_index in sorted(
        range(trace.num_tasks), key=lambda i: (releases[i], i)
    ):
        width = allotment[task_index]
        ready = np.array(
            [
                busy_until[q : q + width].max()
                for q in range(trace.num_procs - width + 1)
            ]
        )
        first_proc = int(ready.argmin())  # argmin is leftmost on ties
        start = max(float(releases[task_index]), float(ready[first_proc]))
        placed = schedule.add(task_index, start, first_proc, width)
        busy_until[first_proc : first_proc + width] = placed.end
    schedule.validate(respect_release=True)
    return schedule


def flow_summary(schedule: Schedule) -> dict:
    """Flow metrics of a release-respecting schedule (benchmark table rows)."""
    instance = schedule.instance
    flows = np.zeros(instance.num_tasks)
    for entry in schedule.entries:
        flows[entry.task_index] = (
            entry.end - instance.tasks[entry.task_index].release_time
        )
    return {
        "algorithm": schedule.algorithm,
        "makespan": schedule.makespan(),
        "mean_flow": float(flows.mean()),
        "max_flow": float(flows.max()),
    }
