"""Online-arrival scheduling: replay kernels over arrival traces.

The paper's dual-approximation scheduler is defined for a fixed offline task
set.  This subsystem opens the *online* workload class real clusters face:
tasks are released over time (``MalleableTask.release_time``) and a replay
kernel (:data:`repro.registry.ONLINE_KERNELS`) reschedules the pending set
with any registry algorithm, stitching the per-epoch schedules into one
validated timeline.

* :mod:`repro.online.epoch` — the ``"barrier"`` kernel: a batch owns the
  whole machine until it drains (the paper's guarantee applies batch-wise);
* :mod:`repro.online.availability` — the ``"availability"`` kernel: the
  machine-availability staircase plus partial-machine carry-over (new work
  starts in the remaining capacity, no barrier);
* :mod:`repro.online.baselines` — arrival-by-arrival baselines (online list
  scheduling, First-Fit by arrival) for the competitive-ratio table;
* :mod:`repro.online.replay` — the service/CLI integration layer
  (``POST /replay`` payloads, response shaping);
* :mod:`repro.workloads.arrivals` — Poisson / burst / diurnal / Pareto
  arrival-trace generators over the existing workload families.
"""

from .availability import AvailabilityProfile, AvailabilityRescheduler
from .baselines import (
    arrival_allotment,
    first_fit_replay,
    flow_summary,
    online_list_replay,
)
from .epoch import EpochReport, EpochRescheduler, ReplayResult
from .plancache import CachedPlan, PlanCache
from .replay import (
    compute_replay_response,
    iter_replay_frames,
    replay_from_payload,
)

__all__ = [
    "AvailabilityProfile",
    "AvailabilityRescheduler",
    "CachedPlan",
    "EpochReport",
    "EpochRescheduler",
    "PlanCache",
    "ReplayResult",
    "arrival_allotment",
    "compute_replay_response",
    "first_fit_replay",
    "flow_summary",
    "iter_replay_frames",
    "online_list_replay",
    "replay_from_payload",
]
