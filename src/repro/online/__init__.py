"""Online-arrival scheduling: epoch rescheduling over arrival traces.

The paper's dual-approximation scheduler is defined for a fixed offline task
set.  This subsystem opens the *online* workload class real clusters face:
tasks are released over time (``MalleableTask.release_time``), and an
:class:`~repro.online.epoch.EpochRescheduler` replays the trace by
rescheduling the pending set with any registry algorithm at every epoch
boundary, stitching the per-epoch schedules into one validated timeline.

* :mod:`repro.online.epoch` — the epoch rescheduler and its replay metrics
  (flow time, stretch, utilisation);
* :mod:`repro.online.replay` — the service/CLI integration layer
  (``POST /replay`` payloads, response shaping);
* :mod:`repro.workloads.arrivals` — Poisson / burst / diurnal arrival-trace
  generators over the existing workload families.
"""

from .epoch import EpochReport, EpochRescheduler, ReplayResult
from .replay import compute_replay_response, replay_from_payload

__all__ = [
    "EpochReport",
    "EpochRescheduler",
    "ReplayResult",
    "compute_replay_response",
    "replay_from_payload",
]
