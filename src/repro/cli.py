"""Command-line interface: ``python -m repro`` or the ``repro-sched`` script.

Sub-commands
------------
``generate``  Generate a synthetic instance (optionally an online arrival
              trace) and write it as JSON.
``schedule``  Schedule an instance (JSON file or generated on the fly) with a
              chosen algorithm and print the metrics and Gantt chart.
``replay``    Replay an online arrival trace with epoch rescheduling,
              streaming per-epoch metrics (see :mod:`repro.online`).
``compare``   Run the EXP-A style comparison sweep and print the summary table.
``mstar``     Print the m*(μ) curve of Figure 8.
``serve``     Run the HTTP scheduling service (see :mod:`repro.service`).
``loadtest``  Drive a service (or a self-hosted one) with the cold/warm load
              generator and print the throughput report.
``lint``      Run the repo-invariant static-analysis suite over ``src/repro``
              against the committed baseline (see :mod:`repro.lint`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from .analysis.experiments import sweep_workloads
from .analysis.gantt import gantt_chart
from .analysis.metrics import evaluate_schedule
from .core import theory
from .exceptions import ModelError
from .model.instance import Instance
from .registry import ALGORITHMS, ONLINE_KERNELS, make_rescheduler, make_scheduler
from .scheduler import Scheduler
from .workloads.arrivals import ARRIVAL_PATTERNS, make_trace
from .workloads.generators import WORKLOAD_FAMILIES, make_workload
from .workloads.ocean import ocean_instance

__all__ = ["main", "build_parser", "ALGORITHMS"]


def _make_scheduler(name: str) -> Scheduler:
    try:
        return make_scheduler(name)
    except ModelError as exc:
        raise SystemExit(str(exc))


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description="Malleable-task scheduling (Mounié–Rapine–Trystram SPAA'99 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic instance as JSON")
    gen.add_argument("--family", default="mixed", choices=sorted(WORKLOAD_FAMILIES) + ["ocean"])
    gen.add_argument("--tasks", type=int, default=32)
    gen.add_argument("--procs", type=int, default=16)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--arrivals",
        default=None,
        choices=sorted(ARRIVAL_PATTERNS),
        help="attach release times following this arrival pattern "
        "(emits an online trace; incompatible with --family ocean)",
    )
    gen.add_argument("--output", type=Path, default=None, help="JSON output path (stdout by default)")

    sch = sub.add_parser("schedule", help="schedule an instance and print metrics")
    sch.add_argument("--algorithm", default="mrt", choices=sorted(ALGORITHMS))
    sch.add_argument("--input", type=Path, default=None, help="instance JSON (otherwise generate)")
    sch.add_argument("--family", default="mixed", choices=sorted(WORKLOAD_FAMILIES) + ["ocean"])
    sch.add_argument("--tasks", type=int, default=32)
    sch.add_argument("--procs", type=int, default=16)
    sch.add_argument("--seed", type=int, default=0)
    sch.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")

    rep = sub.add_parser(
        "replay", help="replay an online arrival trace with epoch rescheduling"
    )
    rep.add_argument(
        "--trace", type=Path, default=None, help="trace JSON (otherwise generate one)"
    )
    rep.add_argument("--pattern", default="poisson", choices=sorted(ARRIVAL_PATTERNS))
    rep.add_argument("--family", default="mixed", choices=sorted(WORKLOAD_FAMILIES))
    rep.add_argument("--tasks", type=int, default=32)
    rep.add_argument("--procs", type=int, default=16)
    rep.add_argument("--seed", type=int, default=0)
    rep.add_argument(
        "--rate",
        type=float,
        default=None,
        help="Poisson arrival rate, tasks per time unit (--pattern poisson only)",
    )
    rep.add_argument(
        "--horizon",
        type=float,
        default=None,
        help="arrival horizon (default: the trace's offline lower bound)",
    )
    rep.add_argument(
        "--quantum",
        type=float,
        default=None,
        help="minimum spacing between epoch starts (default: event-driven — "
        "reschedule as soon as the machine drains)",
    )
    rep.add_argument("--algorithm", default="mrt", choices=sorted(ALGORITHMS))
    rep.add_argument(
        "--kernel",
        default="barrier",
        choices=sorted(ONLINE_KERNELS),
        help="replay kernel: 'barrier' drains the machine between epochs, "
        "'availability' starts new work in the remaining capacity",
    )
    rep.add_argument(
        "--validate",
        action="store_true",
        help="simulate-and-check the stitched timeline (release dates enforced)",
    )
    rep.add_argument(
        "--compare-offline",
        action="store_true",
        help="also run the clairvoyant offline scheduler on the full trace "
        "and print the competitive ratio",
    )
    rep.add_argument("--json", action="store_true", help="also print a REPLAY JSON line")
    rep.add_argument(
        "--url",
        default=None,
        help="replay against a running service/cluster (streamed POST /replay) "
        "instead of in-process; epoch lines print as frames arrive",
    )

    cmp_ = sub.add_parser("compare", help="run the EXP-A comparison sweep")
    cmp_.add_argument("--tasks", type=int, default=30)
    cmp_.add_argument("--procs", type=int, nargs="+", default=[8, 16, 32])
    cmp_.add_argument("--repetitions", type=int, default=2)
    cmp_.add_argument("--seed", type=int, default=0)
    cmp_.add_argument(
        "--families",
        nargs="+",
        default=["uniform", "mixed", "heavy-tailed", "rigid-heavy"],
        choices=sorted(WORKLOAD_FAMILIES),
    )
    cmp_.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan the (instance, scheduler) runs out over N worker processes "
        "(deterministic: the records match the serial run)",
    )

    mstar = sub.add_parser("mstar", help="print the m*(mu) curve of Figure 8")
    mstar.add_argument("--mu-min", type=float, default=0.75)
    mstar.add_argument("--mu-max", type=float, default=0.95)
    mstar.add_argument("--points", type=int, default=21)

    srv = sub.add_parser("serve", help="run the HTTP scheduling service")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8080, help="0 picks an ephemeral port")
    srv.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard the result cache over N worker processes behind a "
        "consistent-hash router (1 = single-process daemon)",
    )
    srv.add_argument(
        "--shard-backend",
        default="process",
        choices=["process", "thread"],
        help="shard worker kind (process falls back to threads in sandboxes)",
    )
    srv.add_argument(
        "--transport",
        default="threaded",
        choices=["threaded", "asyncio"],
        help="HTTP frontend of the daemon (or of the router with --shards): "
        "thread-per-connection or a single asyncio event loop; responses "
        "are byte-identical either way",
    )
    srv.add_argument(
        "--shard-transport",
        default="threaded",
        choices=["threaded", "asyncio"],
        help="HTTP frontend of each shard worker (only with --shards > 1)",
    )
    srv.add_argument(
        "--vnodes",
        type=int,
        default=64,
        help="virtual nodes per shard on the consistent-hash ring",
    )
    srv.add_argument("--workers", type=int, default=None, help="worker pool size")
    srv.add_argument(
        "--prefer",
        default="thread",
        choices=["thread", "process"],
        help="worker pool kind (process falls back to threads in sandboxes)",
    )
    srv.add_argument("--batch-size", type=int, default=32, help="micro-batch bound")
    srv.add_argument(
        "--batch-wait-ms",
        type=float,
        default=0.0,
        help="hold micro-batches open this long for stragglers "
        "(milliseconds; 0 = drain only what is already queued)",
    )
    srv.add_argument("--cache-capacity", type=int, default=2048)
    srv.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        help="result cache TTL in seconds (default: no expiry)",
    )
    srv.add_argument(
        "--purge-interval",
        type=float,
        default=None,
        help="eagerly drop expired cache entries this often "
        "(seconds; default: once per TTL)",
    )
    srv.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="backpressure bound on in-flight requests (503 beyond it)",
    )
    srv.add_argument(
        "--sample-interval",
        type=float,
        default=1.0,
        help="metric time-series sampling cadence in seconds "
        "(0 disables sampling; history then stays empty)",
    )
    srv.add_argument(
        "--slo-p99-ms",
        type=float,
        default=500.0,
        help="p99 latency objective (ms) for the SLO burn-rate engine "
        "and /healthz health states",
    )
    srv.add_argument(
        "--allow-shutdown",
        action="store_true",
        help="enable POST /shutdown (tests, CI smoke jobs)",
    )
    srv.add_argument(
        "--ready-file",
        type=Path,
        default=None,
        help="write 'host port' here once listening (test/automation hook)",
    )
    srv.add_argument("--verbose", action="store_true", help="log every request")

    lt = sub.add_parser("loadtest", help="run the cold/warm service load generator")
    lt.add_argument(
        "--url",
        default=None,
        help="base URL of a running service; omitted = self-host an ephemeral server",
    )
    lt.add_argument(
        "--shards",
        type=int,
        default=1,
        help="self-host a sharded cluster with N shards instead of a "
        "single-process daemon (only without --url)",
    )
    lt.add_argument(
        "--transport",
        default="threaded",
        choices=["threaded", "asyncio"],
        help="HTTP transport of the self-hosted server (only without --url)",
    )
    lt.add_argument(
        "--retries",
        type=int,
        default=3,
        help="client retries on 503 backpressure (capped jittered backoff)",
    )
    lt.add_argument(
        "--families", nargs="+", default=["mixed", "uniform"],
        choices=sorted(WORKLOAD_FAMILIES),
    )
    lt.add_argument("--instances", type=int, default=8, help="synthetic pool size")
    lt.add_argument("--tasks", type=int, default=30)
    lt.add_argument("--procs", type=int, default=16)
    lt.add_argument("--seed", type=int, default=0)
    lt.add_argument("--repeats", type=int, default=3, help="warm replay passes")
    lt.add_argument("--concurrency", type=int, default=4, help="client threads")
    lt.add_argument("--algorithm", default="mrt", choices=sorted(ALGORITHMS))
    lt.add_argument("--validate", action="store_true", help="simulate-and-check replies")
    lt.add_argument(
        "--no-adversarial",
        action="store_true",
        help="skip the deterministic adversarial instances in the pool",
    )
    lt.add_argument(
        "--soak",
        type=int,
        default=0,
        metavar="N",
        help="after the warm passes, hold N concurrent keep-alive connections "
        "(high-concurrency soak phase; 0 disables)",
    )
    lt.add_argument(
        "--soak-requests",
        type=int,
        default=20,
        help="sequential requests fired down each soak connection",
    )
    lt.add_argument("--json", action="store_true", help="also print a BENCH JSON line")

    lint = sub.add_parser(
        "lint", help="run the repo-invariant static-analysis suite"
    )
    lint.add_argument(
        "--json", action="store_true", help="print the full JSON report"
    )
    lint.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only these rules (repeatable, e.g. --rule RL004)",
    )
    lint.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file of grandfathered findings "
        "(default: the committed lint-baseline.json if present)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    lint.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package directory to analyse (default: the repro package itself)",
    )
    return parser


def _load_or_generate(args: argparse.Namespace) -> Instance:
    if getattr(args, "input", None):
        return Instance.from_json(Path(args.input).read_text())
    if args.family == "ocean":
        if getattr(args, "arrivals", None):
            raise SystemExit("--arrivals is not supported with --family ocean")
        return ocean_instance(args.procs, seed=args.seed)
    if getattr(args, "arrivals", None):
        return make_trace(args.arrivals, args.family, args.tasks, args.procs, seed=args.seed)
    return make_workload(args.family, args.tasks, args.procs, seed=args.seed)


def _print_epoch_line(epoch: dict) -> None:
    """One streamed per-epoch metrics line (local replay or NDJSON frame)."""
    print(
        f"epoch {epoch['index']:3d}  t={epoch['start']:10.4g}  "
        f"tasks={epoch['num_tasks']:4d}  makespan={epoch['makespan']:10.4g}  "
        f"wait={epoch['waiting']:8.4g}  compute={epoch['compute_ms']:7.2f}ms  "
        f"guesses={epoch['engine'].get('guesses', 0):4d}",
        flush=True,
    )


def _print_replay_summary(metrics: dict) -> None:
    engine = metrics["engine"]
    print(
        f"replay: {metrics['num_epochs']} epochs  makespan={metrics['makespan']:.6g}  "
        f"flow mean/max={metrics['mean_flow']:.4g}/{metrics['max_flow']:.4g}  "
        f"stretch mean/max={metrics['mean_stretch']:.3f}/{metrics['max_stretch']:.3f}  "
        f"utilization={metrics['utilization']:.3f}"
    )
    print(
        f"kernel compute: {metrics['compute_ms']:.2f}ms  "
        f"engine guesses={engine['guesses']}  "
        f"memo hits/misses={engine['memo_hits']}/{engine['memo_misses']}"
    )


def _cmd_replay(args: argparse.Namespace) -> int:
    """Replay an online arrival trace, streaming per-epoch metrics.

    With ``--url`` the replay runs on a live service/cluster via the
    streamed ``POST /replay``: epoch lines print as NDJSON frames arrive
    and the summary comes from the stream's final document.  The trace is
    still built locally either way, so ``--compare-offline`` works
    identically in both modes.
    """
    from .sim.validate import simulate_and_check

    try:
        if args.trace is not None:
            try:
                trace = Instance.from_json(Path(args.trace).read_text())
            except (OSError, ValueError, KeyError) as exc:
                raise SystemExit(f"failed to load trace {args.trace}: {exc}")
        else:
            if args.rate is not None and args.pattern != "poisson":
                raise SystemExit("--rate only applies to --pattern poisson")
            options = {
                key: getattr(args, key)
                for key in ("rate", "horizon")
                if getattr(args, key) is not None
            }
            trace = make_trace(
                args.pattern, args.family, args.tasks, args.procs,
                seed=args.seed, **options,
            )
        rescheduler = (
            None
            if args.url
            else make_rescheduler(args.kernel, args.algorithm, quantum=args.quantum)
        )
    except ModelError as exc:
        raise SystemExit(str(exc))
    releases = trace.release_times
    print(
        f"trace: {trace.num_tasks} tasks, m={trace.num_procs}, "
        f"arrival span {float(releases.max() - releases.min()):.4g}, "
        f"kernel={args.kernel}, algorithm={args.algorithm}, "
        f"quantum={'event-driven' if not args.quantum else f'{args.quantum:g}'}"
    )

    if args.url:
        from .service import ReplayStreamError, ServiceClient, ServiceHTTPError

        try:
            final = ServiceClient(args.url).replay(
                trace=trace,
                kernel=args.kernel,
                algorithm=args.algorithm,
                quantum=args.quantum,
                validate=args.validate,
                on_epoch=_print_epoch_line,
            )
        except (ReplayStreamError, ServiceHTTPError, OSError) as exc:
            raise SystemExit(str(exc))
        epochs = final["result"]["epochs"]
        metrics = {
            k: v for k, v in final["result"].items()
            if k not in ("epochs", "schedule")
        }
        _print_replay_summary(metrics)
        validation = final.get("validation")
        if args.validate and validation is not None:
            metrics["validated"] = True
            print(
                f"validated: simulated makespan "
                f"{validation['simulated_makespan']:.6g}, "
                f"{validation['events']} events, releases respected"
            )
    else:
        result = rescheduler.replay(
            trace, on_epoch=lambda report: _print_epoch_line(report.as_dict())
        )
        epochs = [epoch.as_dict() for epoch in result.epochs]
        metrics = result.metrics()
        _print_replay_summary(metrics)
        if args.validate:
            sim = simulate_and_check(result.schedule, respect_release=True)
            metrics["validated"] = True
            print(
                f"validated: simulated makespan {sim.makespan:.6g}, "
                f"{len(sim.events)} events, releases respected"
            )
    if args.compare_offline:
        offline = _make_scheduler(args.algorithm).schedule(trace)
        ratio = (
            metrics["makespan"] / offline.makespan() if offline.makespan() > 0 else 1.0
        )
        metrics["offline_makespan"] = offline.makespan()
        metrics["competitive_ratio"] = ratio
        print(
            f"clairvoyant offline makespan={offline.makespan():.6g}  "
            f"competitive ratio={ratio:.3f}"
        )
    if args.json:
        metrics["epochs"] = epochs
        print("REPLAY " + json.dumps(metrics, sort_keys=True))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the HTTP scheduling service until interrupted or shut down."""
    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    if args.shards > 1:
        return _cmd_serve_cluster(args)
    # Single-process daemon: --shards 1 degrades to exactly this path.
    from .obs.slo import SLO
    from .service import SchedulerService, make_server

    service = SchedulerService(
        workers=args.workers,
        prefer=args.prefer,
        batch_size=args.batch_size,
        batch_wait=args.batch_wait_ms / 1e3,
        cache_capacity=args.cache_capacity,
        cache_ttl=args.cache_ttl,
        purge_interval=args.purge_interval,
        max_pending=args.max_pending,
        sample_interval=args.sample_interval or None,
        slo=SLO(p99_ms=args.slo_p99_ms),
    )
    server = make_server(
        args.host,
        args.port,
        service,
        transport=args.transport,
        allow_shutdown=args.allow_shutdown,
        verbose=args.verbose,
    )
    host, port = server.server_address[:2]
    print(
        f"scheduling service listening on http://{host}:{port} "
        f"(transport={args.transport}, "
        f"workers={service.workers}, pool={service.pool_kind}, "
        f"cache={service.cache.capacity}"
        + (f", ttl={service.cache.ttl:g}s" if service.cache.ttl else "")
        + ")",
        flush=True,
    )
    if args.ready_file is not None:
        args.ready_file.write_text(f"{host} {port}\n")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()
        service.close()
    print("scheduling service stopped", flush=True)
    return 0


def _shard_spec_from_args(args: argparse.Namespace):
    from .service.cluster import ShardSpec

    return ShardSpec(
        workers=args.workers,
        prefer=args.prefer,
        batch_size=args.batch_size,
        batch_wait=args.batch_wait_ms / 1e3,
        cache_capacity=args.cache_capacity,
        cache_ttl=args.cache_ttl,
        purge_interval=args.purge_interval,
        max_pending=args.max_pending,
        verbose=args.verbose,
        sample_interval=args.sample_interval or None,
        slo_p99_ms=args.slo_p99_ms,
        transport=getattr(args, "shard_transport", "threaded"),
    )


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    """Run the sharded cluster: N shard workers behind the consistent-hash router."""
    from .obs.slo import SLO
    from .service.cluster import ClusterSupervisor, make_router

    supervisor = ClusterSupervisor(
        args.shards,
        spec=_shard_spec_from_args(args),
        backend=args.shard_backend,
        vnodes=args.vnodes,
    ).start()
    try:
        router = make_router(
            (args.host, args.port),
            supervisor,
            transport=args.transport,
            allow_shutdown=args.allow_shutdown,
            verbose=args.verbose,
            slo=SLO(p99_ms=args.slo_p99_ms),
        )
    except Exception:
        supervisor.close()
        raise
    host, port = router.server_address[:2]
    print(
        f"sharded scheduling cluster listening on http://{host}:{port} "
        f"(shards={supervisor.num_shards}, backend={supervisor.backend}, "
        f"transport={args.transport}, "
        f"vnodes={supervisor.ring.vnodes}, "
        f"cache={args.cache_capacity}x{supervisor.num_shards}"
        + (f", ttl={args.cache_ttl:g}s" if args.cache_ttl else "")
        + ")",
        flush=True,
    )
    if args.ready_file is not None:
        args.ready_file.write_text(f"{host} {port}\n")
    try:
        router.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        router.server_close()
        router.connections.close_all()
        supervisor.close()
    print("sharded scheduling cluster stopped", flush=True)
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    """Drive a (possibly self-hosted) service and print the report."""
    from .service import run_loadtest, start_background_server, start_cluster

    server = None
    cluster = None
    base_url = args.url
    if base_url is None:
        if args.shards > 1:
            cluster = start_cluster(
                args.shards, allow_shutdown=True, transport=args.transport
            )
            base_url = cluster.url
            print(
                f"self-hosted {args.shards}-shard cluster on {base_url} "
                f"(backend={cluster.supervisor.backend}, "
                f"transport={args.transport})"
            )
        else:
            server, _ = start_background_server(
                allow_shutdown=True, transport=args.transport
            )
            host, port = server.server_address[:2]
            base_url = f"http://{host}:{port}"
            print(f"self-hosted service on {base_url} (transport={args.transport})")
    try:
        report = run_loadtest(
            base_url,
            families=args.families,
            instances=args.instances,
            tasks=args.tasks,
            procs=args.procs,
            seed=args.seed,
            repeats=args.repeats,
            concurrency=args.concurrency,
            algorithm=args.algorithm,
            validate=args.validate,
            include_adversarial=not args.no_adversarial,
            retries=args.retries,
            soak_connections=args.soak,
            soak_requests=args.soak_requests,
        )
    finally:
        if server is not None:
            server.close()
        if cluster is not None:
            cluster.close()
    cold, warm = report["cold"], report["warm"]
    print(
        f"pool={report['config']['pool_size']} instances  algorithm={args.algorithm}  "
        f"concurrency={args.concurrency}"
    )
    for phase in (cold, warm):
        print(
            f"{phase['name']:<5} {phase['requests']:5d} requests in "
            f"{phase['seconds']:7.2f}s  {phase['rps']:8.1f} req/s  "
            f"p50={phase['p50_ms']:7.2f}ms  p99={phase['p99_ms']:7.2f}ms  "
            f"hits={phase['cache_hits']}  errors={phase['errors']}"
        )
    soak = report.get("soak")
    if soak:
        print(
            f"soak  {soak['requests']:5d} requests in {soak['seconds']:7.2f}s  "
            f"{soak['rps']:8.1f} req/s  over {soak['connections']} "
            f"keep-alive connections  503-rejected={soak['rejected']}  "
            f"errors={soak['errors']}"
        )
    print(
        f"warm/cold throughput speedup: {report['speedup']:.1f}x   "
        f"responses consistent: {report['consistent']}   "
        f"503 retries absorbed: {report['retries_total']}"
    )
    slo = report.get("slo")
    if slo:
        fast = slo["windows"]["fast"]
        print(
            f"SLO (p99<={slo['objective']['p99_ms']:g}ms, "
            f"avail>={slo['objective']['availability']:g}): "
            f"{'COMPLIANT' if slo['compliant'] else 'BREACHED'}  "
            f"fast burn={slo['fast_burn']:.2f}x  "
            f"slow burn={slo['slow_burn']:.2f}x  "
            f"over-target={fast['fraction_over_target']:.2%}"
        )
        health = report.get("health") or {}
        if health:
            codes = ",".join(r["code"] for r in health["reasons"]) or "-"
            print(
                f"health: {health['state']}  reasons: {codes}  "
                f"scale_hint: {health['scale_hint']['direction']}"
            )
    build = report.get("server_metrics", {}).get("build")
    if build:
        print(
            f"server invariants: lint {build['lint_version']} "
            f"ruleset {build['ruleset_hash']} ({len(build['rules'])} rules)"
        )
    if "shard_distribution" in report:
        for shard_id, shard in sorted(
            report["shard_distribution"].items(), key=lambda kv: int(kv[0])
        ):
            print(
                f"shard {shard_id}: {shard['requests_forwarded']:5d} requests  "
                f"hits={shard['cache_hits']}  fast={shard['fast_hits']}  "
                f"errors={shard['errors']}  "
                f"{'alive' if shard['alive'] else 'DOWN'}"
            )
        imbalance = report.get("imbalance") or {}
        ratio = imbalance.get("max_over_ideal")
        if ratio is not None:
            print(f"shard imbalance (max/ideal requests): {ratio:.2f}x")
    if args.json:
        print("BENCH " + json.dumps(report, sort_keys=True))
    clean = report["consistent"] and cold["errors"] == 0 and warm["errors"] == 0
    if soak:
        clean = clean and soak["errors"] == 0
    return 0 if clean else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point of the CLI; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "generate":
        instance = _load_or_generate(args)
        payload = instance.to_json()
        if args.output:
            args.output.write_text(payload)
            print(f"wrote {instance.num_tasks} tasks, m={instance.num_procs} to {args.output}")
        else:
            print(payload)
        return 0

    if args.command == "schedule":
        instance = _load_or_generate(args)
        scheduler = _make_scheduler(args.algorithm)
        schedule = scheduler.schedule(instance)
        metrics = evaluate_schedule(schedule)
        print(
            f"algorithm={metrics.algorithm} makespan={metrics.makespan:.6g} "
            f"lower_bound={metrics.lower_bound:.6g} ratio<={metrics.ratio:.4f} "
            f"utilization={metrics.utilization:.3f}"
        )
        if args.gantt:
            print(gantt_chart(schedule))
        return 0

    if args.command == "replay":
        return _cmd_replay(args)

    if args.command == "compare":
        result = sweep_workloads(
            families=args.families,
            num_tasks=args.tasks,
            machine_sizes=args.procs,
            repetitions=args.repetitions,
            seed=args.seed,
            workers=args.workers,
        )
        print(result.summary_table())
        return 0

    if args.command == "mstar":
        mus = np.linspace(args.mu_min, args.mu_max, args.points)
        print("mu      k*   k^   m*")
        for mu in mus:
            print(
                f"{mu:.4f}  {theory.k_star(float(mu)):3d}  "
                f"{theory.k_hat(float(mu)):3d}  {theory.m_star(float(mu)):3d}"
            )
        print(f"(anchor: m*(sqrt(3)/2) = {theory.m_star(theory.MU_STAR)})")
        return 0

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "loadtest":
        return _cmd_loadtest(args)

    if args.command == "lint":
        from .lint.cli import cmd_lint

        return cmd_lint(args)

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
