"""Command-line interface: ``python -m repro`` or the ``repro-sched`` script.

Sub-commands
------------
``generate``  Generate a synthetic instance and write it as JSON.
``schedule``  Schedule an instance (JSON file or generated on the fly) with a
              chosen algorithm and print the metrics and Gantt chart.
``compare``   Run the EXP-A style comparison sweep and print the summary table.
``mstar``     Print the m*(μ) curve of Figure 8.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from .analysis.experiments import sweep_workloads
from .analysis.gantt import gantt_chart
from .analysis.metrics import evaluate_schedule
from .baselines.gang import GangScheduler
from .baselines.ludwig import LudwigScheduler
from .baselines.sequential import SequentialLPTScheduler
from .baselines.turek import TurekScheduler
from .core.mrt import MRTScheduler
from .core import theory
from .model.instance import Instance
from .scheduler import Scheduler
from .workloads.generators import WORKLOAD_FAMILIES, make_workload
from .workloads.ocean import ocean_instance

__all__ = ["main", "build_parser", "ALGORITHMS"]

#: CLI algorithm registry.
ALGORITHMS: dict[str, type | object] = {
    "mrt": MRTScheduler,
    "ludwig": LudwigScheduler,
    "turek": TurekScheduler,
    "sequential": SequentialLPTScheduler,
    "gang": GangScheduler,
}


def _make_scheduler(name: str) -> Scheduler:
    if name not in ALGORITHMS:
        raise SystemExit(f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}")
    return ALGORITHMS[name]()  # type: ignore[operator]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description="Malleable-task scheduling (Mounié–Rapine–Trystram SPAA'99 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic instance as JSON")
    gen.add_argument("--family", default="mixed", choices=sorted(WORKLOAD_FAMILIES) + ["ocean"])
    gen.add_argument("--tasks", type=int, default=32)
    gen.add_argument("--procs", type=int, default=16)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--output", type=Path, default=None, help="JSON output path (stdout by default)")

    sch = sub.add_parser("schedule", help="schedule an instance and print metrics")
    sch.add_argument("--algorithm", default="mrt", choices=sorted(ALGORITHMS))
    sch.add_argument("--input", type=Path, default=None, help="instance JSON (otherwise generate)")
    sch.add_argument("--family", default="mixed", choices=sorted(WORKLOAD_FAMILIES) + ["ocean"])
    sch.add_argument("--tasks", type=int, default=32)
    sch.add_argument("--procs", type=int, default=16)
    sch.add_argument("--seed", type=int, default=0)
    sch.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")

    cmp_ = sub.add_parser("compare", help="run the EXP-A comparison sweep")
    cmp_.add_argument("--tasks", type=int, default=30)
    cmp_.add_argument("--procs", type=int, nargs="+", default=[8, 16, 32])
    cmp_.add_argument("--repetitions", type=int, default=2)
    cmp_.add_argument("--seed", type=int, default=0)
    cmp_.add_argument(
        "--families",
        nargs="+",
        default=["uniform", "mixed", "heavy-tailed", "rigid-heavy"],
        choices=sorted(WORKLOAD_FAMILIES),
    )
    cmp_.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan the (instance, scheduler) runs out over N worker processes "
        "(deterministic: the records match the serial run)",
    )

    mstar = sub.add_parser("mstar", help="print the m*(mu) curve of Figure 8")
    mstar.add_argument("--mu-min", type=float, default=0.75)
    mstar.add_argument("--mu-max", type=float, default=0.95)
    mstar.add_argument("--points", type=int, default=21)
    return parser


def _load_or_generate(args: argparse.Namespace) -> Instance:
    if getattr(args, "input", None):
        return Instance.from_json(Path(args.input).read_text())
    if args.family == "ocean":
        return ocean_instance(args.procs, seed=args.seed)
    return make_workload(args.family, args.tasks, args.procs, seed=args.seed)


def main(argv: list[str] | None = None) -> int:
    """Entry point of the CLI; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "generate":
        instance = _load_or_generate(args)
        payload = instance.to_json()
        if args.output:
            args.output.write_text(payload)
            print(f"wrote {instance.num_tasks} tasks, m={instance.num_procs} to {args.output}")
        else:
            print(payload)
        return 0

    if args.command == "schedule":
        instance = _load_or_generate(args)
        scheduler = _make_scheduler(args.algorithm)
        schedule = scheduler.schedule(instance)
        metrics = evaluate_schedule(schedule)
        print(
            f"algorithm={metrics.algorithm} makespan={metrics.makespan:.6g} "
            f"lower_bound={metrics.lower_bound:.6g} ratio<={metrics.ratio:.4f} "
            f"utilization={metrics.utilization:.3f}"
        )
        if args.gantt:
            print(gantt_chart(schedule))
        return 0

    if args.command == "compare":
        result = sweep_workloads(
            families=args.families,
            num_tasks=args.tasks,
            machine_sizes=args.procs,
            repetitions=args.repetitions,
            seed=args.seed,
            workers=args.workers,
        )
        print(result.summary_table())
        return 0

    if args.command == "mstar":
        mus = np.linspace(args.mu_min, args.mu_max, args.points)
        print("mu      k*   k^   m*")
        for mu in mus:
            print(
                f"{mu:.4f}  {theory.k_star(float(mu)):3d}  "
                f"{theory.k_hat(float(mu)):3d}  {theory.m_star(float(mu)):3d}"
            )
        print(f"(anchor: m*(sqrt(3)/2) = {theory.m_star(theory.MU_STAR)})")
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
