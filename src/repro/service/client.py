"""Minimal stdlib HTTP client for the scheduling service.

Used by the load generator, the CLI ``loadtest`` subcommand, the CI smoke
test and the service benchmark — anything that talks to a running
``python -m repro serve``.  Only ``http.client`` + ``json``; no third-party
dependencies.

Connections are persistent (HTTP/1.1 keep-alive, one per calling thread,
Nagle disabled — see :func:`repro.service.http.pool.open_http_connection`,
shared with the router's forwarding path): a load generator fires thousands
of requests at one base URL, and per-request TCP connects would otherwise
dominate the client side of every throughput measurement.  A request that
fails on a *reused* connection (the server closed it while idle) is
transparently retried once on a fresh one.

Backpressure handling: a ``503`` (:class:`~repro.exceptions.ServiceOverloadedError`
on the server side) is retried through the shared
:class:`~repro.service.http.pool.RetryPolicy` — capped, fully-jittered
exponential backoff, ``retries`` attempts (default 3) with delays drawn
uniformly from ``[0, min(backoff_cap, backoff * 2**attempt)]``.  The
cumulative number of retries is exposed as
:attr:`ServiceClient.retries_total` so load tests can report how much
backoff the run absorbed.
"""

from __future__ import annotations

import http.client
import json
import threading
from typing import Any
from urllib.parse import urlsplit

from ..model.instance import Instance
from .http.pool import RetryPolicy, open_http_connection

__all__ = ["ReplayStreamError", "ServiceClient", "ServiceHTTPError"]


class ServiceHTTPError(RuntimeError):
    """Non-2xx response from the service, with the decoded error payload."""

    def __init__(self, status: int, payload: dict | None, url: str) -> None:
        message = (payload or {}).get("error", "<no error payload>")
        super().__init__(f"HTTP {status} from {url}: {message}")
        self.status = status
        self.payload = payload or {}


class ReplayStreamError(RuntimeError):
    """A ``/replay`` stream ended without its final document.

    Truncation *is* the server's mid-stream error signal (the chunked
    response is aborted without the terminating zero chunk when a replay
    fails after streaming began), so an incomplete stream always raises —
    a short read is never silently returned as a result.
    """


class ServiceClient:
    """Blocking JSON-over-HTTP client bound to one service base URL.

    Parameters
    ----------
    timeout:
        Per-request socket timeout (seconds).
    retries:
        How many times a ``503`` (service overloaded) response is retried
        before the :class:`ServiceHTTPError` propagates; 0 disables retries.
    backoff / backoff_cap:
        Exponential-backoff base and cap (seconds) for the retry delays;
        the actual sleep is jittered uniformly over ``[0, delay]``.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 300.0,
        retries: int = 3,
        backoff: float = 0.1,
        backoff_cap: float = 2.0,
    ) -> None:
        # The shared policy validates its knobs (retries >= 0, positive
        # backoff) with the same errors this constructor used to raise.
        self._retry_policy = RetryPolicy(
            retries=int(retries),
            backoff=float(backoff),
            backoff_cap=float(backoff_cap),
        )
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = self._retry_policy.retries
        self.backoff = self._retry_policy.backoff
        self.backoff_cap = self._retry_policy.backoff_cap
        self.retries_total = 0
        self._retry_lock = threading.Lock()
        split = urlsplit(self.base_url)
        if split.scheme not in ("http", "https"):
            raise ValueError(
                f"unsupported URL scheme {split.scheme!r} in {base_url!r} "
                "(use http:// or https://)"
            )
        self._scheme = split.scheme
        self._host_port = split.netloc
        self._base_path = split.path.rstrip("/")
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _connection(self) -> tuple[http.client.HTTPConnection, bool]:
        """This thread's keep-alive connection; ``(conn, was_reused)``."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn, True
        conn = open_http_connection(
            self._host_port, timeout=self.timeout, scheme=self._scheme
        )
        self._local.conn = conn
        return conn, False

    def _drop_connection(self, conn: http.client.HTTPConnection) -> None:
        conn.close()
        self._local.conn = None

    def _request_once(
        self, path: str, body: bytes | None, *, method: str, decode: str = "json"
    ) -> Any:
        headers = {"Accept": "application/json"}
        if body is not None:
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn, reused = self._connection()
            try:
                conn.request(
                    method, self._base_path + path, body=body, headers=headers
                )
                response = conn.getresponse()
                data = response.read()
            except (http.client.HTTPException, OSError):
                self._drop_connection(conn)
                # A reused connection may have been closed by the server
                # while idle — retry exactly once on a fresh one.  A fresh
                # connection failing is a real error.
                if reused and attempt == 0:
                    continue
                raise
            # Trace ids travel in a response header (never the body, which
            # must stay byte-identical); remember the last one per thread so
            # callers can fetch the matching /trace/<id> document.
            self._local.last_trace_id = response.getheader("X-Repro-Trace-Id")
            if response.will_close:
                self._drop_connection(conn)
            break
        if response.status >= 400:
            try:
                error_body = json.loads(data)
            except (json.JSONDecodeError, ValueError):
                error_body = None
            raise ServiceHTTPError(
                response.status, error_body, f"{self.base_url}{path}"
            )
        if decode == "text":
            return data.decode()
        return json.loads(data)

    def _request(
        self,
        path: str,
        payload: dict | None = None,
        *,
        raw: bytes | None = None,
    ) -> dict:
        if raw is not None:
            body, method = raw, "POST"
        elif payload is not None:
            body, method = json.dumps(payload).encode(), "POST"
        else:
            body, method = None, "GET"
        attempt = 0
        while True:
            try:
                return self._request_once(path, body, method=method)
            except ServiceHTTPError as exc:
                if exc.status != 503 or attempt >= self._retry_policy.retries:
                    raise
            with self._retry_lock:
                self.retries_total += 1
            self._retry_policy.sleep(attempt)
            attempt += 1

    def close(self) -> None:
        """Close this thread's keep-alive connection (best effort)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            self._drop_connection(conn)

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    @property
    def last_trace_id(self) -> str | None:
        """Trace id of this thread's most recent response (header-borne)."""
        return getattr(self._local, "last_trace_id", None)

    def healthz(self) -> dict:
        return self._request("/healthz")

    def metrics(self) -> dict:
        return self._request("/metrics")

    def metrics_history(
        self, window: float | None = None, step: float | None = None
    ) -> dict:
        """Downsampled metric time series (``GET /metrics/history``)."""
        params = []
        if window is not None:
            params.append(f"window={window}")
        if step is not None:
            params.append(f"step={step}")
        suffix = "?" + "&".join(params) if params else ""
        return self._request(f"/metrics/history{suffix}")

    def metrics_prometheus(self) -> str:
        """The Prometheus text exposition (``GET /metrics?format=prometheus``)."""
        return self._request_once(
            "/metrics?format=prometheus", None, method="GET", decode="text"
        )

    def trace(self, trace_id: str) -> dict:
        """One stitched trace document (``GET /trace/<id>``); 404 raises."""
        return self._request(f"/trace/{trace_id}")

    def traces(self, *, slow_ms: float | None = None) -> dict:
        """Trace summaries + the slow-request log (``GET /traces``)."""
        suffix = f"?slow_ms={slow_ms}" if slow_ms is not None else ""
        return self._request(f"/traces{suffix}")

    def purge(self, *, all: bool = False) -> dict:  # noqa: A002 (wire name)
        """Send the explicit cache-eviction message (``POST /purge``)."""
        return self._request("/purge", payload={"all": True} if all else {})

    def shutdown(self) -> dict:
        return self._request("/shutdown", payload={})

    def schedule_payload(self, payload: dict) -> dict:
        """POST a ``/schedule`` body (already in wire shape)."""
        return self._request("/schedule", payload=payload)

    def schedule_raw(self, body: bytes) -> dict:
        """POST pre-encoded ``/schedule`` bytes.

        The load generator replays the same payloads thousands of times;
        encoding them once keeps client-side JSON serialisation out of the
        throughput measurement.
        """
        return self._request("/schedule", raw=body)

    def schedule(
        self,
        instance: Instance | dict | None = None,
        *,
        generate: dict | None = None,
        algorithm: str = "mrt",
        params: dict | None = None,
        validate: bool = False,
    ) -> dict:
        """Schedule one instance (explicit or server-generated).

        ``instance`` may be an :class:`~repro.model.instance.Instance` or its
        ``as_dict`` payload; alternatively pass a ``generate`` spec to have
        the server synthesise the workload.
        """
        if (instance is None) == (generate is None):
            raise ValueError("pass exactly one of instance or generate")
        body: dict[str, Any] = {"algorithm": algorithm, "validate": validate}
        if params:
            body["params"] = params
        if instance is not None:
            body["instance"] = (
                instance.as_dict() if isinstance(instance, Instance) else instance
            )
        else:
            body["generate"] = generate
        return self.schedule_payload(body)

    def replay(
        self,
        trace: Instance | dict | None = None,
        *,
        generate: dict | None = None,
        kernel: str = "barrier",
        algorithm: str = "mrt",
        params: dict | None = None,
        quantum: float | None = None,
        validate: bool = False,
        on_epoch=None,
    ) -> dict:
        """Replay an online arrival trace (streamed ``POST /replay``).

        ``trace`` may be an :class:`~repro.model.instance.Instance` (tasks
        carrying release times) or its ``as_dict`` payload; alternatively
        pass a ``generate`` spec (``{"pattern", "family", "tasks", "procs",
        "seed", ...}``) to have the server synthesise the trace.  ``kernel``
        picks the replay kernel (:data:`repro.registry.ONLINE_KERNELS`):
        ``"barrier"`` or ``"availability"``.

        The server answers with a chunked NDJSON stream; ``on_epoch`` (if
        given) is called with each epoch's report dict as its frame
        arrives, and the returned value is the stream's final document —
        the same shape the old synchronous endpoint answered with
        (``result`` + ``fingerprint`` + ``validation`` + ``elapsed_ms``).
        A stream that ends without that final document raises
        :class:`ReplayStreamError`; HTTP errors raise
        :class:`ServiceHTTPError` exactly as before.  A 503 (fleet not
        ready) arrives before any frame, so the usual retry/backoff loop
        still applies.
        """
        if (trace is None) == (generate is None):
            raise ValueError("pass exactly one of trace or generate")
        body: dict[str, Any] = {
            "kernel": kernel,
            "algorithm": algorithm,
            "validate": validate,
        }
        if params:
            body["params"] = params
        if quantum is not None:
            body["quantum"] = quantum
        if trace is not None:
            body["trace"] = trace.as_dict() if isinstance(trace, Instance) else trace
        else:
            body["generate"] = generate
        raw = json.dumps(body).encode()
        attempt = 0
        while True:
            try:
                return self._replay_once(raw, on_epoch)
            except ServiceHTTPError as exc:
                if exc.status != 503 or attempt >= self._retry_policy.retries:
                    raise
            with self._retry_lock:
                self.retries_total += 1
            self._retry_policy.sleep(attempt)
            attempt += 1

    def _replay_once(self, raw: bytes, on_epoch) -> dict:
        """One streamed ``/replay`` exchange on this thread's connection."""
        headers = {
            "Content-Type": "application/json",
            "Accept": "application/x-ndjson",
        }
        for attempt in (0, 1):
            conn, reused = self._connection()
            try:
                conn.request("POST", self._base_path + "/replay", body=raw, headers=headers)
                response = conn.getresponse()
            except (http.client.HTTPException, OSError):
                self._drop_connection(conn)
                if reused and attempt == 0:
                    continue  # idle keep-alive closed by the server
                raise
            break
        self._local.last_trace_id = response.getheader("X-Repro-Trace-Id")
        if response.status >= 400:
            data = response.read()
            if response.will_close:
                self._drop_connection(conn)
            try:
                error_body = json.loads(data)
            except (json.JSONDecodeError, ValueError):
                error_body = None
            raise ServiceHTTPError(
                response.status, error_body, f"{self.base_url}/replay"
            )
        final: dict | None = None
        try:
            # http.client decodes the chunked framing; each readline is one
            # NDJSON frame.  Truncation (server aborted mid-stream) raises
            # out of readline as IncompleteRead/ConnectionError.
            while True:
                line = response.readline()
                if not line:
                    break
                document = json.loads(line)
                if "epoch" in document:
                    if on_epoch is not None:
                        on_epoch(document["epoch"])
                else:
                    final = document
        except (http.client.HTTPException, OSError, ValueError) as exc:
            self._drop_connection(conn)
            raise ReplayStreamError(
                f"replay stream from {self.base_url} failed mid-stream: {exc}"
            ) from exc
        if final is None:
            self._drop_connection(conn)
            raise ReplayStreamError(
                f"replay stream from {self.base_url} ended without a final "
                "document (server aborted the replay mid-stream)"
            )
        if response.will_close:
            self._drop_connection(conn)
        return final
