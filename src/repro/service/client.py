"""Minimal stdlib HTTP client for the scheduling service.

Used by the load generator, the CLI ``loadtest`` subcommand, the CI smoke
test and the service benchmark — anything that talks to a running
``python -m repro serve``.  Only ``urllib.request`` + ``json``; no
third-party dependencies.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any

from ..model.instance import Instance

__all__ = ["ServiceClient", "ServiceHTTPError"]


class ServiceHTTPError(RuntimeError):
    """Non-2xx response from the service, with the decoded error payload."""

    def __init__(self, status: int, payload: dict | None, url: str) -> None:
        message = (payload or {}).get("error", "<no error payload>")
        super().__init__(f"HTTP {status} from {url}: {message}")
        self.status = status
        self.payload = payload or {}


class ServiceClient:
    """Blocking JSON-over-HTTP client bound to one service base URL."""

    def __init__(self, base_url: str, *, timeout: float = 300.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _request(self, path: str, payload: dict | None = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read())
            except (json.JSONDecodeError, ValueError):
                body = None
            raise ServiceHTTPError(exc.code, body, url) from exc

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def healthz(self) -> dict:
        return self._request("/healthz")

    def metrics(self) -> dict:
        return self._request("/metrics")

    def shutdown(self) -> dict:
        return self._request("/shutdown", payload={})

    def schedule_payload(self, payload: dict) -> dict:
        """POST a raw ``/schedule`` body (already in wire shape)."""
        return self._request("/schedule", payload=payload)

    def schedule(
        self,
        instance: Instance | dict | None = None,
        *,
        generate: dict | None = None,
        algorithm: str = "mrt",
        params: dict | None = None,
        validate: bool = False,
    ) -> dict:
        """Schedule one instance (explicit or server-generated).

        ``instance`` may be an :class:`~repro.model.instance.Instance` or its
        ``as_dict`` payload; alternatively pass a ``generate`` spec to have
        the server synthesise the workload.
        """
        if (instance is None) == (generate is None):
            raise ValueError("pass exactly one of instance or generate")
        body: dict[str, Any] = {"algorithm": algorithm, "validate": validate}
        if params:
            body["params"] = params
        if instance is not None:
            body["instance"] = (
                instance.as_dict() if isinstance(instance, Instance) else instance
            )
        else:
            body["generate"] = generate
        return self.schedule_payload(body)
