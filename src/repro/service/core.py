"""In-process scheduling service: micro-batching, worker dispatch, caching.

:class:`SchedulerService` is the serving-layer facade over the package's
schedulers.  Requests (:class:`ScheduleRequest`) enter a bounded queue; a
dispatcher thread drains them in *micro-batches* (up to ``batch_size``
requests, waiting at most ``batch_wait`` seconds for stragglers), groups
each batch by cache key, answers hits straight from the
:class:`~repro.service.cache.LRUTTLCache`, collapses duplicate in-batch
requests into a single computation, and fans the distinct misses out over a
worker pool built by :func:`repro.analysis.experiments.make_pool` — the same
process→thread fallback machinery that powers ``compare --workers``.

The cache key is ``(Instance.fingerprint(), algorithm, canonical params
JSON, validate)``: instances repeat in real workloads (same job mix,
different labels), so a content hash turns the allotment engine's cached
replay speedup into end-to-end service throughput.

Everything here is synchronous-friendly: :meth:`SchedulerService.submit`
returns a :class:`concurrent.futures.Future`, :meth:`SchedulerService.schedule`
blocks for the response dict.  The HTTP frontend in
:mod:`repro.service.server` is a thin translation layer over this class.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..analysis.experiments import make_pool
from ..exceptions import ModelError, ServiceOverloadedError
from ..lint.registry import build_info as lint_build_info
from ..model.instance import Instance, profile_fingerprint
from ..obs.health import evaluate_health
from ..obs.histogram import LatencyHistogram
from ..obs.names import SPAN_BATCH_COMPUTE, SPAN_CACHE_LOOKUP, SPAN_QUEUE_WAIT
from ..obs.slo import SLO, evaluate_slo
from ..obs.timeseries import MetricRing
from ..obs.tracing import Trace, TraceStore, Tracer
from ..registry import make_scheduler
from ..sim.validate import simulate_and_check
from ..workloads.generators import WORKLOAD_FAMILIES, make_workload
from ..workloads.ocean import ocean_instance
from .cache import MISS, LRUTTLCache

__all__ = [
    "ScheduleRequest",
    "SchedulerService",
    "canonical_json",
    "compute_response",
    "payload_fingerprint",
    "request_from_payload",
]


def canonical_json(obj: Any) -> str:
    """Canonical JSON encoding (sorted keys, no whitespace).

    Equal payloads encode to equal bytes, which makes JSON strings usable as
    cache-key components and lets the benchmark assert byte-identity between
    service responses and direct scheduler calls.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ScheduleRequest:
    """One scheduling request as seen by the service.

    ``instance`` is either a materialised :class:`Instance` or its raw
    ``as_dict`` payload.  The raw form is the service hot path: the HTTP
    frontend fingerprints the payload directly
    (:func:`payload_fingerprint`), so a cache hit never pays for instance
    construction — the ``Instance`` is only built inside a worker on a miss.
    A dict ``instance`` must come with its precomputed ``fingerprint``
    (:func:`request_from_payload` guarantees this).
    """

    instance: Instance | dict
    algorithm: str = "mrt"
    params: dict = field(default_factory=dict)
    validate: bool = False
    fingerprint: str | None = None

    def instance_fingerprint(self) -> str:
        if isinstance(self.instance, Instance):
            return self.instance.fingerprint()
        if self.fingerprint is None:
            raise ModelError("raw-payload request without a precomputed fingerprint")
        return self.fingerprint

    def cache_key(self) -> tuple[str, str, str, bool]:
        """Content-addressed key: fingerprint + algorithm + params + validate."""
        return (
            self.instance_fingerprint(),
            self.algorithm,
            canonical_json(self.params),
            self.validate,
        )


def payload_fingerprint(payload: dict) -> str | None:
    """Fingerprint an ``Instance.as_dict`` payload without building it.

    Mirrors :meth:`Instance.fingerprint` exactly for well-formed payloads
    (the constructor truncates every profile to ``num_procs`` columns, so the
    same truncation is applied here), including the optional per-task
    ``"release"`` times of online traces — a trace must never share a cache
    key with its release-free twin.  Returns ``None`` when the payload does
    not have the expected shape — callers then fall back to full
    :meth:`Instance.from_dict` construction, which raises the proper
    :class:`~repro.exceptions.ModelError`.
    """
    try:
        m = int(payload["num_procs"])
        tasks = payload["tasks"]
        if m < 1 or not isinstance(tasks, list) or not tasks:
            return None
        rows = []
        releases = []
        for task in tasks:
            times = task["times"]
            if not isinstance(times, (list, tuple)) or len(times) < m:
                return None
            # Validate the FULL profile (as MalleableTask would), not just
            # the truncated columns: otherwise a payload with garbage beyond
            # column m would 400 on a cold cache yet 200 on a warm one.
            full = np.asarray(times, dtype=float)
            if full.ndim != 1 or not np.all(np.isfinite(full)) or np.any(full <= 0):
                return None
            release = float(task.get("release", 0.0))
            if not np.isfinite(release) or release < 0.0:
                return None
            rows.append(full[:m])
            releases.append(release)
        matrix = np.asarray(rows, dtype=float)
    except (KeyError, TypeError, ValueError):
        return None
    return profile_fingerprint(m, matrix, np.asarray(releases, dtype=float))


def request_from_payload(payload: dict) -> ScheduleRequest:
    """Build a :class:`ScheduleRequest` from a decoded JSON request body.

    The body carries either an explicit ``"instance"`` (the
    :meth:`Instance.as_dict` shape) or a ``"generate"`` spec
    (``{"family", "tasks", "procs", "seed"}``; family ``"ocean"`` maps to the
    ocean-circulation workload).  Optional fields: ``"algorithm"`` (default
    ``"mrt"``), ``"params"`` (keyword arguments for the scheduler factory)
    and ``"validate"`` (run :func:`repro.sim.validate.simulate_and_check` on
    the produced schedule).  Raises :class:`~repro.exceptions.ModelError` on
    malformed input so frontends can map it to a 400.
    """
    if not isinstance(payload, dict):
        raise ModelError("request body must be a JSON object")
    if ("instance" in payload) == ("generate" in payload):
        raise ModelError("request must carry exactly one of 'instance' or 'generate'")
    fingerprint: str | None = None
    try:
        if "instance" in payload:
            # Hot path: fingerprint the raw payload; materialise the Instance
            # lazily (in a worker, only on a cache miss).  Payloads the fast
            # fingerprint cannot handle are materialised here so malformed
            # input fails with a ModelError at parse time.
            instance: Instance | dict = payload["instance"]
            fingerprint = payload_fingerprint(instance) if isinstance(instance, dict) else None
            if fingerprint is None:
                instance = Instance.from_dict(instance)
        else:
            spec = payload["generate"]
            if not isinstance(spec, dict):
                raise ModelError("'generate' must be an object")
            family = spec.get("family", "mixed")
            procs = int(spec.get("procs", 16))
            seed = int(spec.get("seed", 0))
            if family == "ocean":
                instance = ocean_instance(procs, seed=seed)
            elif family in WORKLOAD_FAMILIES:
                instance = make_workload(
                    family, int(spec.get("tasks", 32)), procs, seed=seed
                )
            else:
                raise ModelError(
                    f"unknown workload family {family!r}; choose from "
                    f"{sorted(WORKLOAD_FAMILIES) + ['ocean']}"
                )
    except ModelError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ModelError(f"malformed request: {exc}") from exc
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ModelError("'params' must be an object")
    algorithm = payload.get("algorithm", "mrt")
    if not isinstance(algorithm, str):
        raise ModelError("'algorithm' must be a string")
    return ScheduleRequest(
        instance=instance,
        algorithm=algorithm,
        params=params,
        validate=bool(payload.get("validate", False)),
        fingerprint=fingerprint,
    )


def compute_response(
    instance: Instance | dict, algorithm: str, params: dict, validate: bool
) -> dict:
    """Run the scheduler and build the cacheable response payload.

    Module-level (hence picklable) so it can execute on either a thread or a
    process pool.  ``instance`` may still be a raw payload dict (the lazy
    hot path); it is materialised here, on the worker, so parsing cost is
    only ever paid on a cache miss.  The ``"result"`` sub-object is a pure
    function of the request content — deterministic schedulers make a cached
    replay byte-identical (under :func:`canonical_json`) to a direct
    ``Scheduler.schedule()`` call.
    """
    if isinstance(instance, dict):
        instance = Instance.from_dict(instance)
    scheduler = make_scheduler(algorithm, params)
    schedule = scheduler.schedule(instance)
    payload: dict = {
        "result": {
            "algorithm": schedule.algorithm or scheduler.name,
            "makespan": schedule.makespan(),
            "num_tasks": instance.num_tasks,
            "num_procs": instance.num_procs,
            "schedule": schedule.as_dict(),
        },
        "fingerprint": instance.fingerprint(),
        "validation": None,
    }
    if validate:
        sim = simulate_and_check(schedule)
        payload["validation"] = {
            "simulated_makespan": sim.makespan,
            "utilization": sim.utilization,
            "events": len(sim.events),
        }
    return payload


@dataclass
class _Pending:
    """A queued request with its future and enqueue timestamp."""

    request: ScheduleRequest
    key: tuple
    future: Future
    enqueued: float
    trace: Trace | None = None


_SHUTDOWN = object()


class SchedulerService:
    """Micro-batching scheduling service with a fingerprint result cache.

    Parameters
    ----------
    workers:
        Worker pool size (default: up to 4, bounded by the CPU count).
    prefer:
        ``"thread"`` (default — no per-request pickling, shares the
        allotment-engine caches) or ``"process"`` (real parallelism for
        CPU-heavy mixes; falls back to threads in restricted sandboxes).
    batch_size / batch_wait:
        Micro-batch bounds.  The dispatcher blocks for the first request,
        then drains whatever else is already queued (up to ``batch_size``) —
        under load, requests pile up while the previous batch is served, so
        batches form naturally without delaying an idle queue.  A positive
        ``batch_wait`` additionally holds the batch open up to that many
        seconds for stragglers, which buys more in-batch deduplication of
        identical requests at the cost of added hit latency; the default is
        0 (never wait).
    cache_capacity / cache_ttl:
        LRU capacity and optional TTL (seconds) of the result cache.
    purge_interval:
        How often (seconds) the dispatcher eagerly drops expired cache
        entries (:meth:`LRUTTLCache.purge_expired`) so a long-idle service
        does not pin dead entries until the next lookup.  ``None`` (default)
        purges once per ``cache_ttl``; ignored when no TTL is configured.
    plan_cache_capacity:
        LRU capacity of the per-epoch batch-plan cache
        (:class:`~repro.online.plancache.PlanCache`) behind the streaming
        ``/replay`` path.  Content-addressed, so no TTL applies.
    max_pending:
        Backpressure bound on in-flight requests; beyond it
        :meth:`submit` raises :class:`~repro.exceptions.ServiceOverloadedError`.
    clock:
        Time source for the cache TTL (injectable for tests).
    autostart:
        Start the dispatcher thread immediately (tests drive
        :meth:`_handle_batch` directly with ``autostart=False``).
    tracing:
        Record per-request spans into the bounded trace store (default on;
        the overhead benchmark gate measures its cost with this off).
        Latency histograms are unconditional — they replace the old
        unbounded latency list and cost O(1) memory.
    trace_capacity / slow_ms / trace_seed / trace_component:
        Ring-buffer capacity of the trace store, the slow-request-log
        threshold in milliseconds, the seed of the deterministic trace-id
        source, and the component label stamped on every trace this
        service records (shard workers use ``"shard-<id>"``).
    sample_interval / history_capacity:
        Cadence (seconds) and ring capacity of the metric time series
        (:class:`~repro.obs.timeseries.MetricRing`).  The dispatcher's
        idle tick drives sampling — no extra thread.  ``sample_interval=
        None`` disables interval sampling (tests call :meth:`sample_now`
        instead).  The defaults retain 12 minutes of 1 Hz samples —
        enough to cover the default slow SLO window.
    slo:
        The :class:`~repro.obs.slo.SLO` evaluated by :meth:`slo_status`
        and :meth:`health` (default: the stock objectives).
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        prefer: str = "thread",
        batch_size: int = 32,
        batch_wait: float = 0.0,
        cache_capacity: int = 2048,
        cache_ttl: float | None = None,
        purge_interval: float | None = None,
        plan_cache_capacity: int = 512,
        max_pending: int = 1024,
        clock: Callable[[], float] = time.monotonic,
        autostart: bool = True,
        tracing: bool = True,
        trace_capacity: int = 256,
        slow_ms: float = 500.0,
        trace_seed: int = 0,
        trace_component: str = "service",
        sample_interval: float | None = 1.0,
        history_capacity: int = 720,
        slo: SLO | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.workers = workers or max(2, min(4, os.cpu_count() or 2))
        self.batch_size = int(batch_size)
        self.batch_wait = float(batch_wait)
        self.max_pending = int(max_pending)
        if purge_interval is not None and purge_interval <= 0:
            raise ValueError("purge_interval must be positive (or None for auto)")
        self.cache = LRUTTLCache(cache_capacity, ttl=cache_ttl, clock=clock)
        # Lazy import: repro.online's kernels import this package for the
        # shared LRU machinery, so a module-level import here would cycle.
        from ..online.plancache import PlanCache

        #: Per-epoch batch-plan cache of the streaming ``/replay`` path —
        #: content-addressed (no TTL), shared across kernels and requests.
        self.plan_cache = PlanCache(plan_cache_capacity, clock=clock)
        # Purge scheduling runs on the same (injectable) clock as the cache
        # TTL so tests can drive both deterministically.
        self._clock = clock
        self.purge_interval = (
            purge_interval if purge_interval is not None else cache_ttl
        )
        self._next_purge = (
            clock() + self.purge_interval if self.purge_interval is not None else None
        )
        self._pool, self.pool_kind = make_pool(self.workers, prefer=prefer)
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._pending = 0
        self._requests_total = 0
        self._rejections = 0
        self._batches = 0
        self._deduped = 0
        self._fast_hits = 0
        # Fixed log-bucket histogram: constant memory under sustained load
        # and exact cross-shard merging (see repro.obs.histogram).
        self.latency = LatencyHistogram()
        self.tracing = bool(tracing)
        self.tracer = Tracer(trace_component, seed=trace_seed)
        self.traces = TraceStore(trace_capacity, slow_ms=slow_ms)
        self.slo = slo if slo is not None else SLO()
        self.history = MetricRing(
            history_capacity, interval=sample_interval, clock=clock
        )
        self._started = time.monotonic()
        self._closed = False
        self._dispatcher: threading.Thread | None = None
        if autostart:
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="scheduler-service-dispatch", daemon=True
            )
            self._dispatcher.start()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def submit(
        self, request: ScheduleRequest, *, trace: Trace | None = None
    ) -> Future:
        """Enqueue a request; returns a future resolving to the response dict.

        The response is the :func:`compute_response` payload plus per-request
        metadata: ``"cache_hit"`` and ``"elapsed_ms"`` (queue + compute time
        as observed by the service).  A ``trace`` (usually minted by the HTTP
        frontend) collects queue-wait / cache-lookup / batch-compute spans as
        the request moves through the dispatcher.  Raises
        :class:`~repro.exceptions.ServiceOverloadedError` when ``max_pending``
        requests are already in flight.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        # Key computation can raise (raw-dict request without a fingerprint);
        # it must happen before a backpressure slot is taken or the slot
        # would leak and eventually wedge the service at max_pending.
        key = request.cache_key()
        with self._lock:
            if self._pending >= self.max_pending:
                self._rejections += 1
                raise ServiceOverloadedError(
                    f"{self._pending} requests in flight (max_pending="
                    f"{self.max_pending}); retry later"
                )
            self._pending += 1
            self._requests_total += 1
        pending = _Pending(
            request=request,
            key=key,
            future=Future(),
            enqueued=time.perf_counter(),
            trace=trace if self.tracing else None,
        )
        self._queue.put(pending)
        return pending.future

    def schedule(self, request: ScheduleRequest, *, timeout: float | None = None) -> dict:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(request).result(timeout=timeout)

    def serve_cached(self, key: tuple) -> Any:
        """Fast-path cache probe: the payload for ``key``, or :data:`MISS`.

        Used by the HTTP frontend when a trusted router forwarded the request
        with a precomputed cache key (sharded deployments): a hit is served
        straight from the handler thread — no body parse, no fingerprinting,
        no dispatcher round-trip.  Hits are counted as requests and as
        ``fast_hits``; a miss is *not* counted (the caller falls back to
        :meth:`submit`, which performs the authoritative counted lookup).
        """
        value = self.cache.get_if_hit(key)
        if value is not MISS:
            with self._lock:
                self._requests_total += 1
                self._fast_hits += 1
        return value

    def note_latency(self, elapsed_ms: float) -> None:
        """Record an externally measured request latency (fast-path hits)."""
        with self._lock:
            self.latency.observe(elapsed_ms)

    # ------------------------------------------------------------------ #
    # time series, SLO, health
    # ------------------------------------------------------------------ #
    def _collect_sample(self) -> tuple[dict, dict, dict]:
        """One observation for the metric ring (gauges, counters, latency)."""
        with self._lock:
            gauges = {"queue_depth": float(self._pending)}
            counters = {
                "requests_total": self._requests_total,
                "rejections": self._rejections,
                "fast_hits": self._fast_hits,
                "batches": self._batches,
                "deduped_in_batch": self._deduped,
            }
            latency = self.latency.as_dict()
        stats = self.cache.stats
        gauges["cache_size"] = float(len(self.cache))
        gauges["cache_hit_rate"] = float(stats.hit_rate)
        counters["cache_hits"] = stats.hits
        counters["cache_misses"] = stats.misses
        return gauges, counters, latency

    def _maybe_sample(self) -> None:
        """Dispatcher idle-tick hook: sample once per ``sample_interval``."""
        self.history.maybe_sample(self._collect_sample)

    def sample_now(self) -> None:
        """Take one sample unconditionally (tests, interval=None setups)."""
        gauges, counters, latency = self._collect_sample()
        self.history.record(gauges, counters, latency)

    def slo_status(self) -> dict:
        """Multi-window burn-rate evaluation of :attr:`slo` (the ``slo``
        block of ``/metrics``); window deltas ride along for exact
        cross-shard aggregation by the cluster router."""
        return evaluate_slo(
            self.slo,
            self.history.window(self.slo.fast_window_s),
            self.history.window(self.slo.slow_window_s),
        )

    def health(self) -> dict:
        """Health state + reasons + ``scale_hint`` (drives ``/healthz``)."""
        return evaluate_health(self.slo_status())

    def history_document(
        self,
        window_s: float | None = None,
        step_s: float | None = None,
    ) -> dict:
        """The ``GET /metrics/history`` response: downsampled ring view
        plus the current SLO evaluation."""
        if window_s is None:
            window_s = self.slo.slow_window_s
        if step_s is None:
            step_s = max(self.history.interval or 1.0, window_s / 60.0)
        doc = self.history.history(window_s, step_s)
        doc["slo"] = self.slo_status()
        doc["component"] = self.tracer.component
        return doc

    def metrics(self) -> dict:
        """Service counters in the shape served by ``GET /metrics``.

        The ``latency`` block carries the full histogram snapshot next to
        the headline percentiles so a router (or any aggregator) can merge
        shard latencies *exactly* instead of taking max-of-p99s.
        """
        with self._lock:
            lat = self.latency.summary()
            pending = self._pending
            snapshot = {
                "requests_total": self._requests_total,
                "rejections": self._rejections,
                "batches": self._batches,
                "deduped_in_batch": self._deduped,
                "fast_hits": self._fast_hits,
            }
        return {
            **snapshot,
            "queue_depth": pending,
            "cache": {**self.cache.stats.as_dict(), "size": len(self.cache)},
            "plan_cache": self.plan_cache.metrics(),
            "latency": lat,
            "traces": {
                "stored": len(self.traces),
                "capacity": self.traces.capacity,
                "slow_total": self.traces.slow_total,
                "slow_ms": self.traces.slow_ms,
                "enabled": self.tracing,
            },
            "workers": self.workers,
            "pool": self.pool_kind,
            "slo": self.slo_status(),
            "health": self.health(),
            "history": {
                "samples": len(self.history),
                "capacity": self.history.capacity,
                "interval_s": self.history.interval,
            },
            "uptime_seconds": time.monotonic() - self._started,
            # Which invariant set this tree was checked against: lets a
            # deployed shard advertise its lint version + ruleset hash.
            "build": lint_build_info(),
        }

    def close(self, *, wait: bool = True) -> None:
        """Stop the dispatcher and shut the worker pool down."""
        if self._closed:
            return
        self._closed = True
        if self._dispatcher is not None:
            self._queue.put(_SHUTDOWN)
            if wait:
                self._dispatcher.join(timeout=10.0)
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "SchedulerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # dispatcher
    # ------------------------------------------------------------------ #
    def _maybe_purge(self) -> None:
        """Eagerly drop expired cache entries once per ``purge_interval``."""
        if self._next_purge is None:
            return
        now = self._clock()
        if now >= self._next_purge:
            self._next_purge = now + self.purge_interval
            self.cache.purge_expired()

    def _dispatch_loop(self) -> None:
        while True:
            self._maybe_purge()
            self._maybe_sample()
            try:
                first = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if first is _SHUTDOWN:
                return
            batch = [first]
            deadline = time.monotonic() + self.batch_wait
            while len(batch) < self.batch_size:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        item = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                if item is _SHUTDOWN:
                    self._handle_batch(batch)
                    return
                batch.append(item)
            self._handle_batch(batch)

    def _handle_batch(self, batch: list[_Pending]) -> None:
        """Serve one micro-batch: group by key, answer hits, fan misses out.

        Duplicate keys inside the batch collapse into a single computation
        whose result resolves every waiter (and seeds the cache for later
        replays) — the amortisation that makes batching worthwhile for a
        combinatorial kernel with repeating inputs.
        """
        with self._lock:
            self._batches += 1
        groups: dict[tuple, list[_Pending]] = {}
        for item in batch:
            groups.setdefault(item.key, []).append(item)
        for key, group in groups.items():
            probe_start = time.perf_counter()
            cached = self.cache.get(key)
            probe_end = time.perf_counter()
            for item in group:
                if item.trace is not None:
                    # Queue wait ends when the dispatcher reaches this
                    # group; the cache probe follows immediately.
                    item.trace.record_span(
                        SPAN_QUEUE_WAIT, item.enqueued, probe_start
                    )
                    item.trace.record_span(
                        SPAN_CACHE_LOOKUP,
                        probe_start,
                        probe_end,
                        hit=cached is not MISS,
                    )
            if cached is not MISS:
                for item in group:
                    self._resolve(item, cached, cache_hit=True)
                continue
            if len(group) > 1:
                with self._lock:
                    self._deduped += len(group) - 1
            head = group[0].request
            submitted = time.perf_counter()
            try:
                future = self._pool.submit(
                    compute_response,
                    head.instance,
                    head.algorithm,
                    head.params,
                    head.validate,
                )
            except Exception as exc:  # pool already shut down, etc.
                self._fail(group, exc)
                continue
            future.add_done_callback(
                lambda f, key=key, group=group, submitted=submitted: (
                    self._on_computed(key, group, f, submitted)
                )
            )

    def _on_computed(
        self,
        key: tuple,
        group: list[_Pending],
        future: Future,
        submitted: float,
    ) -> None:
        computed = time.perf_counter()
        try:
            payload = future.result()
        except Exception as exc:
            self._fail(group, exc)
            return
        self.cache.put(key, payload)
        for item in group:
            if item.trace is not None:
                item.trace.record_span(
                    SPAN_BATCH_COMPUTE,
                    submitted,
                    computed,
                    group_size=len(group),
                )
            self._resolve(item, payload, cache_hit=False)

    def _resolve(self, item: _Pending, payload: dict, *, cache_hit: bool) -> None:
        elapsed_ms = (time.perf_counter() - item.enqueued) * 1e3
        with self._lock:
            self._pending -= 1
            self.latency.observe(elapsed_ms)
        response = dict(payload)  # shallow: "result" is shared and read-only
        response["cache_hit"] = cache_hit
        response["elapsed_ms"] = elapsed_ms
        item.future.set_result(response)

    def _fail(self, group: list[_Pending], exc: BaseException) -> None:
        with self._lock:
            self._pending -= len(group)
        for item in group:
            item.future.set_exception(exc)
