"""Load generator for the scheduling service.

Drives a running service over HTTP with a mixed workload — fresh instances
from the synthetic generator families plus deterministic adversarial
instances — in two phases:

* **cold** — every instance in the pool is requested once (cache misses on a
  fresh server);
* **warm** — the same pool is replayed ``repeats`` times (fingerprint cache
  hits), which is where the content-addressed cache turns the allotment
  engine's cached-replay speedup into end-to-end throughput.

Besides throughput and client-side latency percentiles, the run cross-checks
*correctness under caching*: every replayed response must carry a ``result``
payload byte-identical (canonical JSON) to the first response for the same
instance.  Used by ``python -m repro loadtest`` and by
``benchmarks/bench_service_throughput.py``.

The generator is shard-aware: 503 backpressure responses are absorbed by the
client's capped jittered retries (``retries_total`` lands in the report),
and when the target is a cluster router (its ``/metrics`` carries a
``shards`` section) the report additionally breaks the traffic down per
shard — forwarded requests, cache hits, fast hits — plus the ring's
``imbalance`` (max-over-ideal request share).
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence
from urllib.parse import urlsplit

import numpy as np

from ..workloads.adversarial import fragmentation_instance, lpt_worst_case_instance
from ..workloads.generators import make_workload
from .client import ServiceClient, ServiceHTTPError
from .core import canonical_json

__all__ = [
    "PhaseStats",
    "build_workload_payloads",
    "run_loadtest",
    "run_soak",
    "shard_distribution",
]


@dataclass
class PhaseStats:
    """Aggregate measurements of one load-test phase."""

    name: str
    requests: int
    errors: int
    seconds: float
    cache_hits: int
    p50_ms: float
    p99_ms: float

    @property
    def rps(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "requests": self.requests,
            "errors": self.errors,
            "seconds": self.seconds,
            "rps": self.rps,
            "cache_hits": self.cache_hits,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
        }


def build_workload_payloads(
    *,
    families: Sequence[str] = ("mixed", "uniform"),
    instances: int = 8,
    tasks: int = 30,
    procs: int = 16,
    seed: int = 0,
    algorithm: str = "mrt",
    params: dict | None = None,
    validate: bool = False,
    include_adversarial: bool = True,
) -> list[dict]:
    """Build the ``POST /schedule`` bodies of the mixed instance pool.

    ``instances`` synthetic instances are drawn round-robin from
    ``families`` (distinct seeds, so the cold phase is all fresh content);
    with ``include_adversarial`` the deterministic fragmentation and
    LPT-worst-case instances join the pool.  Instances are embedded
    explicitly (``as_dict``) so a replayed payload carries bit-identical
    profiles and therefore the same fingerprint.
    """
    pool = []
    for i in range(instances):
        family = families[i % len(families)]
        pool.append(make_workload(family, tasks, procs, seed=seed + i))
    if include_adversarial:
        pool.append(fragmentation_instance(procs))
        pool.append(lpt_worst_case_instance(procs))
    payloads = []
    for inst in pool:
        body: dict = {"algorithm": algorithm, "instance": inst.as_dict()}
        if params:
            body["params"] = params
        if validate:
            body["validate"] = True
        payloads.append(body)
    return payloads


def _run_phase(
    client: ServiceClient,
    payloads: Sequence[dict],
    *,
    name: str,
    concurrency: int,
    encoded: Sequence[bytes] | None = None,
) -> tuple[PhaseStats, list[dict | None], list[float]]:
    """Fire every payload once through ``concurrency`` client threads.

    ``encoded`` carries the payloads pre-serialised to bytes so replayed
    phases measure the service, not the client's ``json.dumps``.  The raw
    per-request latencies are returned alongside the summary so multi-pass
    callers can compute *true* percentiles over the union of every pass —
    a median of per-pass p50s (or a max of p99s) is not a percentile of
    the combined sample.
    """

    responses: list[dict | None] = [None] * len(payloads)
    if encoded is None:
        encoded = [json.dumps(p).encode() for p in payloads]

    def fire(index: int) -> float | None:
        """Returns the request latency in ms, or ``None`` on error."""
        start = time.perf_counter()
        try:
            responses[index] = client.schedule_raw(encoded[index])
        except (ServiceHTTPError, OSError):
            return None
        return (time.perf_counter() - start) * 1e3

    start = time.perf_counter()
    if concurrency > 1:
        with ThreadPoolExecutor(max_workers=concurrency) as pool:
            outcomes = list(pool.map(fire, range(len(payloads))))
    else:
        outcomes = [fire(index) for index in range(len(payloads))]
    seconds = time.perf_counter() - start
    latencies_ms = [ms for ms in outcomes if ms is not None]
    errors = sum(1 for ms in outcomes if ms is None)
    hits = sum(1 for r in responses if r is not None and r.get("cache_hit"))
    stats = PhaseStats(
        name=name,
        requests=len(payloads),
        errors=errors,
        seconds=seconds,
        cache_hits=hits,
        p50_ms=float(np.percentile(latencies_ms, 50)) if latencies_ms else 0.0,
        p99_ms=float(np.percentile(latencies_ms, 99)) if latencies_ms else 0.0,
    )
    return stats, responses, latencies_ms


def shard_distribution(server_metrics: dict) -> tuple[dict | None, dict | None]:
    """Per-shard traffic breakdown of a cluster ``/metrics`` snapshot.

    Returns ``(distribution, imbalance)``, both ``None`` when the target was
    a plain single-process daemon (no ``shards`` section in its metrics).
    """
    if not isinstance(server_metrics, dict) or "shards" not in server_metrics:
        return None, None
    per_shard_router = server_metrics.get("router", {}).get("per_shard", {})
    distribution: dict[str, dict] = {}
    # Shard ids are stringified ints (JSON keys): sort numerically so
    # clusters with >= 10 shards report 0,1,2,...,10 not 0,1,10,11,2,...
    for shard_id, view in sorted(
        server_metrics["shards"].items(), key=lambda kv: int(kv[0])
    ):
        shard = {
            "requests_forwarded": per_shard_router.get(shard_id, {}).get("requests", 0),
            "errors": per_shard_router.get(shard_id, {}).get("errors", 0),
            "alive": bool(view.get("alive")),
        }
        metrics = view.get("metrics") or {}
        cache = metrics.get("cache", {})
        shard["cache_hits"] = cache.get("hits", 0)
        shard["cache_size"] = cache.get("size", 0)
        shard["fast_hits"] = metrics.get("fast_hits", 0)
        distribution[shard_id] = shard
    return distribution, server_metrics.get("imbalance")


async def _soak_exchange(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    head: bytes,
    body: bytes,
) -> tuple[int, bool]:
    """One request/response on a soak connection: ``(status, server_closed)``."""
    writer.write(head)
    writer.write(body)
    await writer.drain()
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    status = int(status_line.split()[1])
    content_length = 0
    close = False
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.partition(b":")
        lowered = name.strip().lower()
        if lowered == b"content-length":
            content_length = int(value.strip())
        elif lowered == b"connection" and b"close" in value.lower():
            close = True
    if content_length:
        await reader.readexactly(content_length)
    return status, close


def run_soak(
    base_url: str,
    encoded: Sequence[bytes],
    *,
    connections: int,
    requests_per_connection: int = 20,
    timeout: float = 300.0,
) -> dict:
    """High-concurrency keep-alive soak: hundreds of concurrent connections.

    The cold/warm phases drive one client thread per concurrency slot, which
    tops out around a few dozen connections before client-side thread churn
    dominates.  This phase instead holds ``connections`` concurrent
    keep-alive connections on a single asyncio event loop (one coroutine
    each — the client-side mirror of the server's asyncio transport) and
    fires ``requests_per_connection`` sequential ``POST /schedule`` requests
    down every one of them.  That measures the server's connection-scaling
    behaviour, which is exactly where the threaded and asyncio transports
    differ.

    Payloads are the pre-encoded warm pool, so a warmed server answers from
    cache and the measurement is connection handling, not scheduling.
    """
    split = urlsplit(base_url)
    host = split.hostname or "127.0.0.1"
    port = split.port or (443 if split.scheme == "https" else 80)
    path = (split.path.rstrip("/") or "") + "/schedule"
    heads = [
        (
            f"POST {path} HTTP/1.1\r\n"
            f"Host: {split.netloc}\r\n"
            "Content-Type: application/json\r\n"
            "Accept: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode()
        for body in encoded
    ]

    async def one_connection(conn_index: int) -> tuple[int, int, int]:
        """``(ok, rejected, errors)`` — 503 backpressure is *rejected*, not
        an error: at hundreds of connections the service's bounded submit
        queue is expected to push back, and the soak measures how the
        transport behaves around that, not whether it happens."""
        ok = rejected = errors = 0
        reader = writer = None
        try:
            for r in range(requests_per_connection):
                index = (conn_index + r) % len(encoded)
                try:
                    if writer is None:
                        reader, writer = await asyncio.wait_for(
                            asyncio.open_connection(host, port), timeout
                        )
                    status, close = await asyncio.wait_for(
                        _soak_exchange(reader, writer, heads[index], encoded[index]),
                        timeout,
                    )
                except (OSError, asyncio.IncompleteReadError, TimeoutError, ValueError):
                    errors += 1
                    if writer is not None:
                        writer.close()
                        writer = None
                    continue
                if 200 <= status < 300:
                    ok += 1
                elif status == 503:
                    rejected += 1
                else:
                    errors += 1
                if close:
                    writer.close()
                    writer = None
        finally:
            if writer is not None:
                writer.close()
        return ok, rejected, errors

    async def drive() -> tuple[tuple[int, int, int], float]:
        start = time.perf_counter()
        results = await asyncio.gather(
            *(one_connection(i) for i in range(connections))
        )
        seconds = time.perf_counter() - start
        totals = tuple(sum(column) for column in zip(*results))
        return totals, seconds

    (ok, rejected, errors), seconds = asyncio.run(drive())
    total = ok + rejected + errors
    return {
        "connections": connections,
        "requests_per_connection": requests_per_connection,
        "requests": total,
        "ok": ok,
        "rejected": rejected,
        "errors": errors,
        "seconds": seconds,
        "rps": total / seconds if seconds > 0 else 0.0,
        "ok_rps": ok / seconds if seconds > 0 else 0.0,
    }


def run_loadtest(
    base_url: str,
    *,
    families: Sequence[str] = ("mixed", "uniform"),
    instances: int = 8,
    tasks: int = 30,
    procs: int = 16,
    seed: int = 0,
    repeats: int = 3,
    concurrency: int = 4,
    algorithm: str = "mrt",
    params: dict | None = None,
    validate: bool = False,
    include_adversarial: bool = True,
    client_timeout: float = 300.0,
    retries: int = 3,
    soak_connections: int = 0,
    soak_requests: int = 20,
) -> dict:
    """Run the cold/warm load test against ``base_url``; returns a report dict.

    The report carries both phases (:class:`PhaseStats` shapes), the
    warm-over-cold throughput ``speedup``, a ``consistent`` flag (every warm
    ``result`` byte-identical to its cold counterpart under canonical JSON),
    the total 503-retry count absorbed by the client, the server's own
    ``/metrics`` snapshot, and — against a sharded cluster — the per-shard
    hit distribution plus the ring imbalance.

    With ``soak_connections > 0`` a third phase follows the warm passes: a
    :func:`run_soak` high-concurrency sweep holding that many concurrent
    keep-alive connections (the report gains a ``"soak"`` block).
    """
    client = ServiceClient(base_url, timeout=client_timeout, retries=retries)
    payloads = build_workload_payloads(
        families=families,
        instances=instances,
        tasks=tasks,
        procs=procs,
        seed=seed,
        algorithm=algorithm,
        params=params,
        validate=validate,
        include_adversarial=include_adversarial,
    )
    encoded = [json.dumps(p).encode() for p in payloads]
    cold, cold_responses, _ = _run_phase(
        client, payloads, name="cold", concurrency=concurrency, encoded=encoded
    )
    reference = [
        canonical_json(r["result"]) if r is not None else None for r in cold_responses
    ]
    warm_stats: list[PhaseStats] = []
    warm_latencies: list[float] = []
    consistent = True
    for _ in range(repeats):
        stats, responses, latencies = _run_phase(
            client, payloads, name="warm", concurrency=concurrency, encoded=encoded
        )
        warm_stats.append(stats)
        warm_latencies.extend(latencies)
        for ref, resp in zip(reference, responses):
            if ref is not None and resp is not None:
                consistent = consistent and canonical_json(resp["result"]) == ref
    # True percentiles over the union of every warm pass: the old
    # median-of-p50s / max-of-p99s summary was not a percentile of the
    # combined sample and overstated p99 by construction.
    warm = PhaseStats(
        name="warm",
        requests=sum(s.requests for s in warm_stats),
        errors=sum(s.errors for s in warm_stats),
        seconds=sum(s.seconds for s in warm_stats),
        cache_hits=sum(s.cache_hits for s in warm_stats),
        p50_ms=float(np.percentile(warm_latencies, 50)) if warm_latencies else 0.0,
        p99_ms=float(np.percentile(warm_latencies, 99)) if warm_latencies else 0.0,
    )
    soak = None
    if soak_connections > 0:
        # After the warm passes the whole pool is cached, so the soak
        # measures connection handling at fan-in, not scheduling.
        soak = run_soak(
            base_url,
            encoded,
            connections=soak_connections,
            requests_per_connection=soak_requests,
            timeout=client_timeout,
        )
    server_metrics = client.metrics()
    distribution, imbalance = shard_distribution(server_metrics)
    report = {
        "config": {
            "base_url": base_url,
            "families": list(families),
            "instances": instances,
            "tasks": tasks,
            "procs": procs,
            "seed": seed,
            "repeats": repeats,
            "concurrency": concurrency,
            "algorithm": algorithm,
            "params": params or {},
            "validate": validate,
            "include_adversarial": include_adversarial,
            "pool_size": len(payloads),
            "retries": retries,
            "soak_connections": soak_connections,
            "soak_requests": soak_requests,
        },
        "cold": cold.as_dict(),
        "warm": warm.as_dict(),
        "speedup": (warm.rps / cold.rps) if cold.rps > 0 else float("inf"),
        "consistent": consistent,
        "retries_total": client.retries_total,
        "server_metrics": server_metrics,
        # Server-side SLO evaluation at end of run (same shape for a
        # daemon's /metrics and a router's aggregate): compliance next to
        # the client-observed percentiles.
        "slo": server_metrics.get("slo"),
        "health": server_metrics.get("health"),
    }
    if soak is not None:
        report["soak"] = soak
    if distribution is not None:
        report["shard_distribution"] = distribution
        report["imbalance"] = imbalance
    return report
