"""Thread-safe LRU + TTL cache for scheduling results.

The service keys this cache by ``(instance fingerprint, algorithm, params,
validate)`` — see :meth:`repro.model.instance.Instance.fingerprint` — so a
replayed instance (same profiles, same machine, any labels) is answered
without re-running the scheduler.  Capacity is bounded by an LRU policy and
entries can additionally age out through a TTL, both tracked in
:class:`CacheStats`.

The clock is injectable so TTL behaviour is testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

__all__ = ["CacheStats", "LRUTTLCache", "MISS"]

#: Sentinel returned by :meth:`LRUTTLCache.get` on a miss (``None`` is a
#: legitimate cached value).
MISS: Any = object()


@dataclass
class CacheStats:
    """Counters exposed through the service ``/metrics`` endpoint."""

    hits: int = 0
    misses: int = 0
    evictions_lru: int = 0
    evictions_ttl: int = 0
    expired_purged: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions_lru": self.evictions_lru,
            "evictions_ttl": self.evictions_ttl,
            "expired_purged": self.expired_purged,
            "hit_rate": self.hit_rate,
        }


class LRUTTLCache:
    """Bounded mapping with least-recently-used eviction and optional TTL.

    Parameters
    ----------
    capacity:
        Maximum number of entries (``>= 1``).
    ttl:
        Time-to-live in seconds; ``None`` disables expiry.  Expired entries
        are dropped lazily on access and eagerly by :meth:`purge_expired`.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        capacity: int = 1024,
        *,
        ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None to disable)")
        self.capacity = int(capacity)
        self.ttl = ttl
        self._clock = clock
        self._data: OrderedDict[Hashable, tuple[float, Any]] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def _lookup(self, key: Hashable, *, count_miss: bool) -> Any:
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self.stats.misses += count_miss
                return MISS
            stored_at, value = entry
            if self.ttl is not None and self._clock() - stored_at > self.ttl:
                del self._data[key]
                self.stats.evictions_ttl += 1
                self.stats.misses += count_miss
                return MISS
            self._data.move_to_end(key)
            self.stats.hits += 1
            return value

    def get(self, key: Hashable) -> Any:
        """Value stored under ``key``, or :data:`MISS`; refreshes LRU order."""
        return self._lookup(key, count_miss=True)

    def get_if_hit(self, key: Hashable) -> Any:
        """Like :meth:`get`, but a miss is *not* counted in the stats.

        This is the shard fast path: the HTTP handler probes the cache with a
        router-provided key before falling back to the full request pipeline,
        and that pipeline performs the authoritative (counted) lookup.
        Counting the probe too would double every miss.  Hits *are* counted
        (the fast path is then the only lookup), and expired entries are
        dropped and counted as TTL evictions, exactly as in :meth:`get`.
        """
        return self._lookup(key, count_miss=False)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``; evicts the LRU entry beyond capacity.

        Entries popped by the capacity loop that were *already past their
        TTL* are counted as ``evictions_ttl``, not ``evictions_lru``: they
        were dead regardless of capacity pressure, and classifying them as
        LRU evictions would skew the eviction split that the cluster
        supervisor aggregates into ``/metrics`` (a busy shard with a short
        TTL would look capacity-starved when it is merely expiring).
        """
        with self._lock:
            now = self._clock()
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = (now, value)
            while len(self._data) > self.capacity:
                _, (stored_at, _) = self._data.popitem(last=False)
                if self.ttl is not None and now - stored_at > self.ttl:
                    self.stats.evictions_ttl += 1
                else:
                    self.stats.evictions_lru += 1

    def purge_expired(self) -> int:
        """Drop every expired entry now; returns the number removed.

        Eager purges are counted in ``stats.expired_purged`` (the service
        drain loop runs this periodically so long-idle shards do not pin dead
        entries), while ``stats.evictions_ttl`` counts only the lazy drops
        that happen on access.
        """
        if self.ttl is None:
            return 0
        cutoff = self._clock() - self.ttl
        with self._lock:
            stale = [k for k, (t, _) in self._data.items() if t < cutoff]
            for key in stale:
                del self._data[key]
            self.stats.expired_purged += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
