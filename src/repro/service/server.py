"""Stdlib HTTP frontend for :class:`~repro.service.core.SchedulerService`.

A :class:`http.server.ThreadingHTTPServer` (one thread per connection, JSON
bodies) exposing:

``POST /schedule``
    Body: ``{"algorithm", "instance" | "generate", "params", "validate"}``
    (see :func:`repro.service.core.request_from_payload`).  Returns the
    response payload of :func:`repro.service.core.compute_response` plus
    ``"cache_hit"`` and ``"elapsed_ms"``.  Malformed input → 400; service
    backpressure → 503; internal scheduling failures → 500.
``GET /healthz``
    Liveness probe: ``{"status": "ok", "uptime_seconds": ...}``.
``GET /metrics``
    The :meth:`SchedulerService.metrics` JSON (request counts, cache
    hit/miss, latency percentiles, queue depth, rejections).
``POST /purge``
    Explicit cache-eviction control message (the shared-nothing eviction
    protocol of the sharded cluster): drops expired entries now, or the whole
    cache with body ``{"all": true}``.  Returns the purge counts.
``POST /shutdown``
    Graceful stop — only honoured when the server was created with
    ``allow_shutdown=True`` (tests, CI smoke jobs, self-hosted load tests);
    403 otherwise.

Shard deployments (:mod:`repro.service.cluster`) create the server with
``trust_fast_headers=True``: when the router forwarded a request with the
precomputed cache-key headers (``X-Repro-Fingerprint`` & co.), a cache hit is
served straight from the handler thread without parsing the body — the shard
"owns" its cache slice and answers hits locally.

No third-party dependencies: the whole frontend is ``http.server`` +
``json``, matching the repo's stdlib-only constraint.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..exceptions import ModelError, ReproError, ServiceOverloadedError
from .cache import MISS
from .core import SchedulerService, request_from_payload

__all__ = [
    "JsonRequestHandler",
    "ServiceHTTPServer",
    "make_server",
    "start_background_server",
]

#: Refuse request bodies larger than this (64 MiB) — a crude but effective
#: guard against memory exhaustion from a single client.
MAX_BODY_BYTES = 64 * 1024 * 1024


class JsonRequestHandler(BaseHTTPRequestHandler):
    """Shared plumbing for the service's JSON-over-HTTP handlers.

    Used by the daemon/shard handler below and by the cluster router's
    handler: keep-alive semantics (HTTP/1.1, Nagle disabled — responses are
    written as two sends and a keep-alive peer would otherwise pay Nagle +
    delayed-ACK ~40ms per reply), JSON responses with correct
    ``Connection: close`` signalling, oversized-body rejection and the
    optional ``/purge`` body parse all live here so the two frontends
    cannot drift apart.
    """

    protocol_version = "HTTP/1.1"
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_body(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # An unconsumed request body would desynchronise a keep-alive
            # connection (its bytes would be parsed as the next request
            # line) — tell the client and drop the socket after replying.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict) -> None:
        self._send_body(status, json.dumps(payload).encode())

    def _checked_content_length(self) -> int | None:
        """Content-Length, or ``None`` after rejecting an oversized body."""
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # rejected without draining
            self._send_json(
                400, {"error": f"request body larger than {MAX_BODY_BYTES} bytes"}
            )
            return None
        return length

    def _read_purge_payload(self) -> dict | None:
        """Optional ``/purge`` body, or ``None`` when a 400 was already sent."""
        length = self._checked_content_length()
        if length is None:
            return None
        if length > 0:
            try:
                payload = self.rfile.read(length)
                decoded = json.loads(payload)
            except (json.JSONDecodeError, ValueError):
                self._send_json(400, {"error": "purge body is not valid JSON"})
                return None
            return decoded if isinstance(decoded, dict) else {}
        return {}


class _Handler(JsonRequestHandler):
    server: "ServiceHTTPServer"

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ModelError("missing or empty request body")
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # rejected without draining
            raise ModelError(f"request body larger than {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ModelError(f"request body is not valid JSON: {exc}") from exc

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (stdlib API)
        if self.path == "/healthz":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "uptime_seconds": time.monotonic() - self.server.started,
                },
            )
        elif self.path == "/metrics":
            self._send_json(200, self.server.service.metrics())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (stdlib API)
        if self.path == "/schedule":
            self._handle_schedule()
        elif self.path == "/replay":
            self._handle_replay()
        elif self.path == "/purge":
            self._handle_purge()
        elif self.path == "/shutdown":
            self._handle_shutdown()
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _try_fast_hit(self) -> bool:
        """Serve a cache hit keyed by trusted router headers; True if served.

        Only active with ``trust_fast_headers`` (shard workers behind the
        cluster router).  The router already parsed and fingerprinted the
        payload, so the full cache key travels in headers and a hit skips
        body parsing, fingerprinting and the dispatcher queue entirely.  On a
        miss nothing is consumed from the request stream — the caller falls
        through to the normal pipeline.
        """
        if not self.server.trust_fast_headers:
            return False
        fingerprint = self.headers.get("X-Repro-Fingerprint")
        if not fingerprint:
            return False
        start = time.perf_counter()
        key = (
            fingerprint,
            self.headers.get("X-Repro-Algorithm", "mrt"),
            self.headers.get("X-Repro-Params", "{}"),
            self.headers.get("X-Repro-Validate", "0") == "1",
        )
        payload = self.server.service.serve_cached(key)
        if payload is MISS:
            return False
        # Drain the (unparsed) body so the keep-alive connection stays usable.
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # too big to drain: drop the socket
        elif length > 0:
            self.rfile.read(length)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        self.server.service.note_latency(elapsed_ms)
        response = dict(payload)  # shallow: "result" is shared and read-only
        response["cache_hit"] = True
        response["elapsed_ms"] = elapsed_ms
        self._send_json(200, response)
        return True

    def _handle_schedule(self) -> None:
        try:
            if self._try_fast_hit():
                return
            request = request_from_payload(self._read_json())
            response = self.server.service.schedule(
                request, timeout=self.server.request_timeout
            )
        except ModelError as exc:
            self._send_json(400, {"error": str(exc)})
        except ServiceOverloadedError as exc:
            self._send_json(503, {"error": str(exc)})
        except ReproError as exc:
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        except (TimeoutError, FuturesTimeoutError):
            # Distinct classes on Python 3.10, aliases from 3.11 on.
            self._send_json(504, {"error": "scheduling request timed out"})
        except Exception as exc:  # noqa: BLE001 — never drop the connection
            # Anything unexpected (a user-registered scheduler raising a
            # non-ReproError, submit() during shutdown, ...) must still come
            # back as the documented 500 instead of a reset socket.
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._send_json(200, response)

    def _handle_replay(self) -> None:
        """Online replay: epoch-reschedule an arrival trace, stream the metrics.

        Replays run synchronously on the handler thread (one replay is a
        whole dichotomic-search run per epoch — batching individual replays
        would serialise them behind the dispatcher without amortising
        anything).  The micro-batching ``/schedule`` pipeline and its result
        cache are untouched.
        """
        # Local import: only /replay needs the online subsystem — keep the
        # serving frontend's module dependency graph decoupled from it.
        from ..online.replay import compute_replay_response, replay_from_payload

        start = time.perf_counter()
        try:
            trace, rescheduler, validate = replay_from_payload(self._read_json())
            response = compute_replay_response(trace, rescheduler, validate)
        except ModelError as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 — never drop the connection
            # ReproError and unexpected crashes alike map to the documented
            # 500 with the exception type named.
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        else:
            response["elapsed_ms"] = (time.perf_counter() - start) * 1e3
            self._send_json(200, response)

    def _handle_purge(self) -> None:
        """Explicit eviction message: drop expired entries (or everything)."""
        payload = self._read_purge_payload()
        if payload is None:
            return
        cache = self.server.service.cache
        cleared = 0
        if payload.get("all"):
            cleared = len(cache)
            cache.clear()
            expired = 0
        else:
            expired = cache.purge_expired()
        self._send_json(
            200,
            {"expired_purged": expired, "cleared": cleared, "size": len(cache)},
        )

    def _handle_shutdown(self) -> None:
        if not self.server.allow_shutdown:
            self._send_json(403, {"error": "shutdown endpoint disabled"})
            return
        self._send_json(200, {"status": "shutting down"})
        # ``shutdown`` blocks until ``serve_forever`` exits, so it must run
        # off this handler thread (which still has to finish the response).
        threading.Thread(target=self.server.shutdown, daemon=True).start()


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`SchedulerService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: SchedulerService,
        *,
        allow_shutdown: bool = False,
        request_timeout: float | None = 300.0,
        verbose: bool = False,
        trust_fast_headers: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.allow_shutdown = allow_shutdown
        self.request_timeout = request_timeout
        self.verbose = verbose
        self.trust_fast_headers = trust_fast_headers
        self.started = time.monotonic()
        self._serve_started = False

    def serve_forever(self, *args, **kwargs) -> None:
        self._serve_started = True
        super().serve_forever(*args, **kwargs)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Full teardown: stop serving, release the socket, close the service.

        Safe in every lifecycle state: ``shutdown`` is only invoked when the
        serve loop has actually been entered (it would block forever on a
        server whose ``serve_forever`` never ran), and it returns immediately
        when the loop has already exited.
        """
        if self._serve_started:
            self.shutdown()
        self.server_close()
        self.service.close()


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    service: SchedulerService | None = None,
    **server_kwargs,
) -> ServiceHTTPServer:
    """Bind a service server (``port=0`` picks an ephemeral port)."""
    return ServiceHTTPServer((host, port), service or SchedulerService(), **server_kwargs)


def start_background_server(
    host: str = "127.0.0.1",
    port: int = 0,
    service: SchedulerService | None = None,
    **server_kwargs,
) -> tuple[ServiceHTTPServer, threading.Thread]:
    """Start a server on a daemon thread; returns ``(server, thread)``.

    Used by the self-hosted load-test mode, the CLI tests and the benchmark.
    Stop it with ``server.close()``.
    """
    server = make_server(host, port, service, **server_kwargs)
    thread = threading.Thread(
        target=server.serve_forever, name="scheduler-service-http", daemon=True
    )
    thread.start()
    return server, thread
