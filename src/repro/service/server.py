"""Stdlib HTTP frontend for :class:`~repro.service.core.SchedulerService`.

A :class:`http.server.ThreadingHTTPServer` (one thread per connection, JSON
bodies) exposing:

``POST /schedule``
    Body: ``{"algorithm", "instance" | "generate", "params", "validate"}``
    (see :func:`repro.service.core.request_from_payload`).  Returns the
    response payload of :func:`repro.service.core.compute_response` plus
    ``"cache_hit"`` and ``"elapsed_ms"``.  Malformed input → 400; service
    backpressure → 503; internal scheduling failures → 500.
``GET /healthz``
    Liveness probe: ``{"status": "ok", "uptime_seconds": ...}``.
``GET /metrics``
    The :meth:`SchedulerService.metrics` JSON (request counts, cache
    hit/miss, latency percentiles, queue depth, rejections).
``POST /shutdown``
    Graceful stop — only honoured when the server was created with
    ``allow_shutdown=True`` (tests, CI smoke jobs, self-hosted load tests);
    403 otherwise.

No third-party dependencies: the whole frontend is ``http.server`` +
``json``, matching the repo's stdlib-only constraint.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..exceptions import ModelError, ReproError, ServiceOverloadedError
from .core import SchedulerService, request_from_payload

__all__ = ["ServiceHTTPServer", "make_server", "start_background_server"]

#: Refuse request bodies larger than this (64 MiB) — a crude but effective
#: guard against memory exhaustion from a single client.
MAX_BODY_BYTES = 64 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    server: "ServiceHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ModelError("missing or empty request body")
        if length > MAX_BODY_BYTES:
            raise ModelError(f"request body larger than {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ModelError(f"request body is not valid JSON: {exc}") from exc

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (stdlib API)
        if self.path == "/healthz":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "uptime_seconds": time.monotonic() - self.server.started,
                },
            )
        elif self.path == "/metrics":
            self._send_json(200, self.server.service.metrics())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (stdlib API)
        if self.path == "/schedule":
            self._handle_schedule()
        elif self.path == "/shutdown":
            self._handle_shutdown()
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _handle_schedule(self) -> None:
        try:
            request = request_from_payload(self._read_json())
            response = self.server.service.schedule(
                request, timeout=self.server.request_timeout
            )
        except ModelError as exc:
            self._send_json(400, {"error": str(exc)})
        except ServiceOverloadedError as exc:
            self._send_json(503, {"error": str(exc)})
        except ReproError as exc:
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        except (TimeoutError, FuturesTimeoutError):
            # Distinct classes on Python 3.10, aliases from 3.11 on.
            self._send_json(504, {"error": "scheduling request timed out"})
        except Exception as exc:  # noqa: BLE001 — never drop the connection
            # Anything unexpected (a user-registered scheduler raising a
            # non-ReproError, submit() during shutdown, ...) must still come
            # back as the documented 500 instead of a reset socket.
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._send_json(200, response)

    def _handle_shutdown(self) -> None:
        if not self.server.allow_shutdown:
            self._send_json(403, {"error": "shutdown endpoint disabled"})
            return
        self._send_json(200, {"status": "shutting down"})
        # ``shutdown`` blocks until ``serve_forever`` exits, so it must run
        # off this handler thread (which still has to finish the response).
        threading.Thread(target=self.server.shutdown, daemon=True).start()


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`SchedulerService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: SchedulerService,
        *,
        allow_shutdown: bool = False,
        request_timeout: float | None = 300.0,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.allow_shutdown = allow_shutdown
        self.request_timeout = request_timeout
        self.verbose = verbose
        self.started = time.monotonic()
        self._serve_started = False

    def serve_forever(self, *args, **kwargs) -> None:
        self._serve_started = True
        super().serve_forever(*args, **kwargs)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Full teardown: stop serving, release the socket, close the service.

        Safe in every lifecycle state: ``shutdown`` is only invoked when the
        serve loop has actually been entered (it would block forever on a
        server whose ``serve_forever`` never ran), and it returns immediately
        when the loop has already exited.
        """
        if self._serve_started:
            self.shutdown()
        self.server_close()
        self.service.close()


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    service: SchedulerService | None = None,
    **server_kwargs,
) -> ServiceHTTPServer:
    """Bind a service server (``port=0`` picks an ephemeral port)."""
    return ServiceHTTPServer((host, port), service or SchedulerService(), **server_kwargs)


def start_background_server(
    host: str = "127.0.0.1",
    port: int = 0,
    service: SchedulerService | None = None,
    **server_kwargs,
) -> tuple[ServiceHTTPServer, threading.Thread]:
    """Start a server on a daemon thread; returns ``(server, thread)``.

    Used by the self-hosted load-test mode, the CLI tests and the benchmark.
    Stop it with ``server.close()``.
    """
    server = make_server(host, port, service, **server_kwargs)
    thread = threading.Thread(
        target=server.serve_forever, name="scheduler-service-http", daemon=True
    )
    thread.start()
    return server, thread
