"""Stdlib HTTP frontend for :class:`~repro.service.core.SchedulerService`.

A :class:`http.server.ThreadingHTTPServer` (one thread per connection, JSON
bodies) exposing:

``POST /schedule``
    Body: ``{"algorithm", "instance" | "generate", "params", "validate"}``
    (see :func:`repro.service.core.request_from_payload`).  Returns the
    response payload of :func:`repro.service.core.compute_response` plus
    ``"cache_hit"`` and ``"elapsed_ms"``.  Malformed input → 400; service
    backpressure → 503; internal scheduling failures → 500.
``GET /healthz``
    SLO-driven health probe: ``{"status": "ok" | "degraded" | "failing",
    "uptime_seconds", "reasons", "scale_hint"}``; ``failing`` answers 503.
``GET /metrics``
    The :meth:`SchedulerService.metrics` JSON (request counts, cache
    hit/miss, latency percentiles, queue depth, rejections, SLO burn
    rates, health state).
``GET /metrics/history``
    Downsampled metric time series over the trailing window
    (``?window=<seconds>&step=<seconds>``) plus the SLO evaluation.
``POST /purge``
    Explicit cache-eviction control message (the shared-nothing eviction
    protocol of the sharded cluster): drops expired entries now, or the whole
    cache with body ``{"all": true}``.  Returns the purge counts.
``POST /shutdown``
    Graceful stop — only honoured when the server was created with
    ``allow_shutdown=True`` (tests, CI smoke jobs, self-hosted load tests);
    403 otherwise.

Shard deployments (:mod:`repro.service.cluster`) create the server with
``trust_fast_headers=True``: when the router forwarded a request with the
precomputed cache-key headers (``X-Repro-Fingerprint`` & co.), a cache hit is
served straight from the handler thread without parsing the body — the shard
"owns" its cache slice and answers hits locally.

No third-party dependencies: the whole frontend is ``http.server`` +
``json``, matching the repo's stdlib-only constraint.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from ..exceptions import ModelError, ReproError, ServiceOverloadedError
from ..obs.names import (
    SPAN_FAST_HIT,
    SPAN_FINGERPRINT,
    SPAN_PARSE,
    SPAN_SERIALIZE,
)
from ..obs.prometheus import render_service_metrics
from ..obs.tracing import Trace
from .cache import MISS
from .core import SchedulerService, request_from_payload

__all__ = [
    "JsonRequestHandler",
    "ServiceHTTPServer",
    "make_server",
    "start_background_server",
]

#: Refuse request bodies larger than this (64 MiB) — a crude but effective
#: guard against memory exhaustion from a single client.
MAX_BODY_BYTES = 64 * 1024 * 1024


class JsonRequestHandler(BaseHTTPRequestHandler):
    """Shared plumbing for the service's JSON-over-HTTP handlers.

    Used by the daemon/shard handler below and by the cluster router's
    handler: keep-alive semantics (HTTP/1.1, Nagle disabled — responses are
    written as two sends and a keep-alive peer would otherwise pay Nagle +
    delayed-ACK ~40ms per reply), JSON responses with correct
    ``Connection: close`` signalling, oversized-body rejection and the
    optional ``/purge`` body parse all live here so the two frontends
    cannot drift apart.
    """

    protocol_version = "HTTP/1.1"
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_body(
        self,
        status: int,
        body: bytes,
        *,
        content_type: str = "application/json",
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if extra_headers:
            for name, value in extra_headers.items():
                self.send_header(name, value)
        if self.close_connection:
            # An unconsumed request body would desynchronise a keep-alive
            # connection (its bytes would be parsed as the next request
            # line) — tell the client and drop the socket after replying.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        status: int,
        payload: dict,
        *,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self._send_body(
            status, json.dumps(payload).encode(), extra_headers=extra_headers
        )

    def _send_prometheus(self, text: str) -> None:
        self._send_body(
            200,
            text.encode(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    @staticmethod
    def _query_param(query: str, name: str) -> str | None:
        values = parse_qs(query).get(name)
        return values[0] if values else None

    def _checked_content_length(self) -> int | None:
        """Content-Length, or ``None`` after rejecting an oversized body."""
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # rejected without draining
            self._send_json(
                400, {"error": f"request body larger than {MAX_BODY_BYTES} bytes"}
            )
            return None
        return length

    def _read_purge_payload(self) -> dict | None:
        """Optional ``/purge`` body, or ``None`` when a 400 was already sent."""
        length = self._checked_content_length()
        if length is None:
            return None
        if length > 0:
            try:
                payload = self.rfile.read(length)
                decoded = json.loads(payload)
            except (json.JSONDecodeError, ValueError):
                self._send_json(400, {"error": "purge body is not valid JSON"})
                return None
            return decoded if isinstance(decoded, dict) else {}
        return {}


class _Handler(JsonRequestHandler):
    server: "ServiceHTTPServer"

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ModelError("missing or empty request body")
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # rejected without draining
            raise ModelError(f"request body larger than {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ModelError(f"request body is not valid JSON: {exc}") from exc

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (stdlib API)
        url = urlsplit(self.path)
        if url.path == "/healthz":
            # Health is the SLO-driven state machine, not bare liveness:
            # "failing" maps to 503 so load balancers eject the instance,
            # "degraded" stays 200 (still serving) with reasons attached.
            health = self.server.service.health()
            self._send_json(
                503 if health["state"] == "failing" else 200,
                {
                    "status": health["state"],
                    "uptime_seconds": time.monotonic() - self.server.started,
                    "reasons": health["reasons"],
                    "scale_hint": health["scale_hint"],
                },
            )
        elif url.path == "/metrics":
            metrics = self.server.service.metrics()
            if self._query_param(url.query, "format") == "prometheus":
                self._send_prometheus(render_service_metrics(metrics))
            else:
                self._send_json(200, metrics)
        elif url.path == "/metrics/history":
            self._handle_history(url.query)
        elif url.path.startswith("/trace/"):
            self._handle_trace(url.path[len("/trace/") :])
        elif url.path == "/traces":
            self._handle_traces(url.query)
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _handle_history(self, query: str) -> None:
        """Downsampled metric time series: ``?window=<s>&step=<s>``."""
        try:
            window = self._query_param(query, "window")
            step = self._query_param(query, "step")
            window_s = float(window) if window is not None else None
            step_s = float(step) if step is not None else None
            if window_s is not None and window_s <= 0:
                raise ValueError("window must be positive")
            if step_s is not None and step_s <= 0:
                raise ValueError("step must be positive")
        except ValueError as exc:
            self._send_json(400, {"error": f"bad history query: {exc}"})
            return
        self._send_json(
            200, self.server.service.history_document(window_s, step_s)
        )

    def _handle_trace(self, trace_id: str) -> None:
        """One stitched trace document: ``{"trace_id", "components": [...]}``.

        A single daemon/shard contributes exactly one component; the
        cluster router overrides this route to concatenate its own
        component with every shard's before responding.
        """
        trace = self.server.service.traces.get(trace_id)
        if trace is None:
            self._send_json(404, {"error": f"unknown trace {trace_id!r}"})
            return
        self._send_json(
            200, {"trace_id": trace_id, "components": [trace.as_dict()]}
        )

    def _handle_traces(self, query: str) -> None:
        """Newest-first trace summaries; ``?slow_ms=N`` filters by duration."""
        store = self.server.service.traces
        slow_param = self._query_param(query, "slow_ms")
        try:
            slow_ms = float(slow_param) if slow_param is not None else None
        except ValueError:
            self._send_json(400, {"error": f"bad slow_ms {slow_param!r}"})
            return
        self._send_json(
            200,
            {
                "traces": store.summaries(slow_ms=slow_ms),
                "slow_log": store.slow_log(),
                "slow_total": store.slow_total,
                "slow_ms": store.slow_ms,
            },
        )

    def do_POST(self) -> None:  # noqa: N802 (stdlib API)
        if self.path == "/schedule":
            self._handle_schedule()
        elif self.path == "/replay":
            self._handle_replay()
        elif self.path == "/purge":
            self._handle_purge()
        elif self.path == "/shutdown":
            self._handle_shutdown()
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _try_fast_hit(self, trace: Trace | None) -> bool:
        """Serve a cache hit keyed by trusted router headers; True if served.

        Only active with ``trust_fast_headers`` (shard workers behind the
        cluster router).  The router already parsed and fingerprinted the
        payload, so the full cache key travels in headers and a hit skips
        body parsing, fingerprinting and the dispatcher queue entirely.  On a
        miss nothing is consumed from the request stream — the caller falls
        through to the normal pipeline.
        """
        if not self.server.trust_fast_headers:
            return False
        fingerprint = self.headers.get("X-Repro-Fingerprint")
        if not fingerprint:
            return False
        start = time.perf_counter()
        key = (
            fingerprint,
            self.headers.get("X-Repro-Algorithm", "mrt"),
            self.headers.get("X-Repro-Params", "{}"),
            self.headers.get("X-Repro-Validate", "0") == "1",
        )
        payload = self.server.service.serve_cached(key)
        if payload is MISS:
            return False
        # Drain the (unparsed) body so the keep-alive connection stays usable.
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # too big to drain: drop the socket
        elif length > 0:
            self.rfile.read(length)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        self.server.service.note_latency(elapsed_ms)
        response = dict(payload)  # shallow: "result" is shared and read-only
        response["cache_hit"] = True
        response["elapsed_ms"] = elapsed_ms
        if trace is not None:
            trace.record_span(SPAN_FAST_HIT, start, time.perf_counter())
        self._finish_schedule(response, trace)
        return True

    def _finish_schedule(self, response: dict, trace: Trace | None) -> None:
        """Serialize (under a span), land the trace, send the response.

        The trace is stored *before* the bytes hit the wire so a client can
        turn around and ``GET /trace/<id>`` the id it reads from the
        ``X-Repro-Trace-Id`` response header immediately.  The body itself
        never carries the id — ``/schedule`` responses stay byte-identical
        to the untraced single-daemon output.
        """
        if trace is None:
            self._send_json(200, response)
            return
        start = time.perf_counter()
        body = json.dumps(response).encode()
        trace.record_span(SPAN_SERIALIZE, start, time.perf_counter())
        trace.finish()
        service = self.server.service
        service.traces.add(trace)
        if trace.duration_ms >= service.traces.slow_ms:
            self.log_message(
                "slow request trace=%s %.1fms", trace.trace_id, trace.duration_ms
            )
        self._send_body(
            200, body, extra_headers={"X-Repro-Trace-Id": trace.trace_id}
        )

    def _handle_schedule(self) -> None:
        service = self.server.service
        trace: Trace | None = None
        if service.tracing:
            # Adopt a propagated id (router→shard hop) or mint a fresh one.
            trace = service.tracer.start(self.headers.get("X-Repro-Trace-Id"))
        try:
            if self._try_fast_hit(trace):
                return
            if trace is not None:
                start = time.perf_counter()
                payload = self._read_json()
                parsed = time.perf_counter()
                trace.record_span(SPAN_PARSE, start, parsed)
                request = request_from_payload(payload)
                trace.record_span(SPAN_FINGERPRINT, parsed, time.perf_counter())
            else:
                request = request_from_payload(self._read_json())
            response = service.submit(request, trace=trace).result(
                timeout=self.server.request_timeout
            )
        except ModelError as exc:
            self._send_json(400, {"error": str(exc)})
        except ServiceOverloadedError as exc:
            self._send_json(503, {"error": str(exc)})
        except ReproError as exc:
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        except (TimeoutError, FuturesTimeoutError):
            # Distinct classes on Python 3.10, aliases from 3.11 on.
            self._send_json(504, {"error": "scheduling request timed out"})
        except Exception as exc:  # noqa: BLE001 — never drop the connection
            # Anything unexpected (a user-registered scheduler raising a
            # non-ReproError, submit() during shutdown, ...) must still come
            # back as the documented 500 instead of a reset socket.
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._finish_schedule(response, trace)

    def _handle_replay(self) -> None:
        """Online replay: epoch-reschedule an arrival trace, stream the metrics.

        Replays run synchronously on the handler thread (one replay is a
        whole dichotomic-search run per epoch — batching individual replays
        would serialise them behind the dispatcher without amortising
        anything).  The micro-batching ``/schedule`` pipeline and its result
        cache are untouched.
        """
        # Local import: only /replay needs the online subsystem — keep the
        # serving frontend's module dependency graph decoupled from it.
        from ..online.replay import compute_replay_response, replay_from_payload

        start = time.perf_counter()
        try:
            trace, rescheduler, validate = replay_from_payload(self._read_json())
            response = compute_replay_response(trace, rescheduler, validate)
        except ModelError as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 — never drop the connection
            # ReproError and unexpected crashes alike map to the documented
            # 500 with the exception type named.
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        else:
            response["elapsed_ms"] = (time.perf_counter() - start) * 1e3
            self._send_json(200, response)

    def _handle_purge(self) -> None:
        """Explicit eviction message: drop expired entries (or everything)."""
        payload = self._read_purge_payload()
        if payload is None:
            return
        cache = self.server.service.cache
        cleared = 0
        if payload.get("all"):
            cleared = len(cache)
            cache.clear()
            expired = 0
        else:
            expired = cache.purge_expired()
        self._send_json(
            200,
            {"expired_purged": expired, "cleared": cleared, "size": len(cache)},
        )

    def _handle_shutdown(self) -> None:
        if not self.server.allow_shutdown:
            self._send_json(403, {"error": "shutdown endpoint disabled"})
            return
        self._send_json(200, {"status": "shutting down"})
        # ``shutdown`` blocks until ``serve_forever`` exits, so it must run
        # off this handler thread (which still has to finish the response).
        threading.Thread(target=self.server.shutdown, daemon=True).start()


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`SchedulerService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: SchedulerService,
        *,
        allow_shutdown: bool = False,
        request_timeout: float | None = 300.0,
        verbose: bool = False,
        trust_fast_headers: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.allow_shutdown = allow_shutdown
        self.request_timeout = request_timeout
        self.verbose = verbose
        self.trust_fast_headers = trust_fast_headers
        self.started = time.monotonic()
        self._serve_started = False

    def serve_forever(self, *args, **kwargs) -> None:
        self._serve_started = True
        super().serve_forever(*args, **kwargs)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Full teardown: stop serving, release the socket, close the service.

        Safe in every lifecycle state: ``shutdown`` is only invoked when the
        serve loop has actually been entered (it would block forever on a
        server whose ``serve_forever`` never ran), and it returns immediately
        when the loop has already exited.
        """
        if self._serve_started:
            self.shutdown()
        self.server_close()
        self.service.close()


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    service: SchedulerService | None = None,
    **server_kwargs,
) -> ServiceHTTPServer:
    """Bind a service server (``port=0`` picks an ephemeral port)."""
    return ServiceHTTPServer((host, port), service or SchedulerService(), **server_kwargs)


def start_background_server(
    host: str = "127.0.0.1",
    port: int = 0,
    service: SchedulerService | None = None,
    **server_kwargs,
) -> tuple[ServiceHTTPServer, threading.Thread]:
    """Start a server on a daemon thread; returns ``(server, thread)``.

    Used by the self-hosted load-test mode, the CLI tests and the benchmark.
    Stop it with ``server.close()``.
    """
    server = make_server(host, port, service, **server_kwargs)
    thread = threading.Thread(
        target=server.serve_forever, name="scheduler-service-http", daemon=True
    )
    thread.start()
    return server, thread
