"""HTTP frontend for :class:`~repro.service.core.SchedulerService`.

The daemon is now an app/transport split (:mod:`repro.service.http`):
:class:`DaemonApp` is a pure ``handle(Request) -> Response`` object holding
every endpoint, and either transport —
:class:`~repro.service.http.threaded.ThreadedTransport` (one thread per
connection, the default) or
:class:`~repro.service.http.aio.AsyncioTransport` (one event loop, many
keep-alive connections) — binds it to a socket.  Both serve byte-identical
responses.  Endpoints:

``POST /schedule``
    Body: ``{"algorithm", "instance" | "generate", "params", "validate"}``
    (see :func:`repro.service.core.request_from_payload`).  Returns the
    response payload of :func:`repro.service.core.compute_response` plus
    ``"cache_hit"`` and ``"elapsed_ms"``.  Malformed input → 400; service
    backpressure → 503; internal scheduling failures → 500.
``POST /replay``
    Online replay, streamed: epoch-reschedule an arrival trace and return
    a chunked ``application/x-ndjson`` stream — one ``{"epoch": ...}``
    line per rescheduling epoch as it completes, then the full legacy
    response document (metrics + epochs + schedule + ``"elapsed_ms"``) as
    the final line.  Per-epoch batch plans are memoised in the service's
    plan cache, so re-runs and overlapping traces skip the offline kernel.
    A replay failure after streaming began truncates the stream (no
    terminating zero chunk); parse errors are still plain 400s.
``GET /healthz``
    SLO-driven health probe: ``{"status": "ok" | "degraded" | "failing",
    "uptime_seconds", "reasons", "scale_hint"}``; ``failing`` answers 503.
``GET /metrics``
    The :meth:`SchedulerService.metrics` JSON (request counts, cache
    hit/miss, latency percentiles, queue depth, rejections, SLO burn
    rates, health state); ``?format=prometheus`` renders the text
    exposition format instead.
``GET /metrics/history``
    Downsampled metric time series over the trailing window
    (``?window=<seconds>&step=<seconds>``) plus the SLO evaluation.
``GET /trace/<id>`` / ``GET /traces``
    One stitched trace document / newest-first trace summaries.
``POST /purge``
    Explicit cache-eviction control message (the shared-nothing eviction
    protocol of the sharded cluster): drops expired entries now, or the whole
    cache with body ``{"all": true}``.  Returns the purge counts.
``POST /shutdown``
    Graceful stop — only honoured when the app was created with
    ``allow_shutdown=True`` (tests, CI smoke jobs, self-hosted load tests);
    403 otherwise.

Shard deployments (:mod:`repro.service.cluster`) create the app with
``trust_fast_headers=True``: when the router forwarded a request with the
precomputed cache-key headers (``X-Repro-Fingerprint`` & co.), a cache hit is
served straight from the trusted headers without parsing the body — the shard
"owns" its cache slice and answers hits locally.

No third-party dependencies: the whole frontend is stdlib ``http.server`` /
``asyncio`` + ``json``, matching the repo's stdlib-only constraint.
"""

from __future__ import annotations

import json
import threading
import time

from ..obs.names import (
    SPAN_FAST_HIT,
    SPAN_FINGERPRINT,
    SPAN_PARSE,
    SPAN_SERIALIZE,
)
from ..obs.prometheus import render_service_metrics
from ..obs.tracing import Trace
from .cache import MISS
from .core import SchedulerService, request_from_payload
from .http import Request, Response, Route
from .http.aio import AsyncioTransport
from .http.app import App
from .http.threaded import ThreadedTransport

__all__ = [
    "DaemonApp",
    "ServiceHTTPServer",
    "make_server",
    "start_background_server",
]


class DaemonApp(App):
    """The daemon/shard application: every endpoint over one service.

    Pure request→response logic; sockets, threads and event loops live in
    the transport that binds it.  Handlers raise domain exceptions — the
    shared mapper in :mod:`repro.service.http.errors` owns the
    error→status contract (400/503/504/500).
    """

    def __init__(
        self,
        service: SchedulerService | None = None,
        *,
        allow_shutdown: bool = False,
        request_timeout: float | None = 300.0,
        verbose: bool = False,
        trust_fast_headers: bool = False,
    ) -> None:
        super().__init__(verbose=verbose)
        self.service = service or SchedulerService()
        self.allow_shutdown = allow_shutdown
        self.request_timeout = request_timeout
        self.trust_fast_headers = trust_fast_headers
        self.started = time.monotonic()

    def routes(self) -> list[Route]:
        return [
            Route("GET", "/healthz", self._handle_healthz),
            Route("GET", "/metrics", self._handle_metrics),
            Route("GET", "/metrics/history", self._handle_history),
            Route("GET", "/traces", self._handle_traces),
            Route("GET", "/trace/", self._handle_trace, prefix=True),
            Route("POST", "/schedule", self._handle_schedule),
            Route("POST", "/replay", self._handle_replay),
            Route("POST", "/purge", self._handle_purge),
            Route("POST", "/shutdown", self._handle_shutdown),
        ]

    def close(self) -> None:
        self.service.close()

    # ------------------------------------------------------------------ #
    # GET routes
    # ------------------------------------------------------------------ #
    def _handle_healthz(self, request: Request) -> Response:
        # Health is the SLO-driven state machine, not bare liveness:
        # "failing" maps to 503 so load balancers eject the instance,
        # "degraded" stays 200 (still serving) with reasons attached.
        health = self.service.health()
        return Response.json(
            503 if health["state"] == "failing" else 200,
            {
                "status": health["state"],
                "uptime_seconds": time.monotonic() - self.started,
                "reasons": health["reasons"],
                "scale_hint": health["scale_hint"],
            },
        )

    def _handle_metrics(self, request: Request) -> Response:
        metrics = self.service.metrics()
        if request.query_param("format") == "prometheus":
            return Response(
                200,
                render_service_metrics(metrics).encode(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        return Response.json(200, metrics)

    def _handle_history(self, request: Request) -> Response:
        """Downsampled metric time series: ``?window=<s>&step=<s>``."""
        window_s, step_s = self.parse_window_query(request)
        return Response.json(200, self.service.history_document(window_s, step_s))

    def _handle_trace(self, request: Request, trace_id: str) -> Response:
        """One stitched trace document: ``{"trace_id", "components": [...]}``.

        A single daemon/shard contributes exactly one component; the
        cluster router overrides this route to concatenate its own
        component with every shard's before responding.
        """
        trace = self.service.traces.get(trace_id)
        if trace is None:
            return Response.json(404, {"error": f"unknown trace {trace_id!r}"})
        return Response.json(
            200, {"trace_id": trace_id, "components": [trace.as_dict()]}
        )

    def _handle_traces(self, request: Request) -> Response:
        """Newest-first trace summaries; ``?slow_ms=N`` filters by duration."""
        store = self.service.traces
        slow_ms = self.parse_slow_ms_query(request)
        return Response.json(
            200,
            {
                "traces": store.summaries(slow_ms=slow_ms),
                "slow_log": store.slow_log(),
                "slow_total": store.slow_total,
                "slow_ms": store.slow_ms,
            },
        )

    # ------------------------------------------------------------------ #
    # POST routes
    # ------------------------------------------------------------------ #
    def _try_fast_hit(self, request: Request, trace: Trace | None) -> Response | None:
        """Serve a cache hit keyed by trusted router headers, or ``None``.

        Only active with ``trust_fast_headers`` (shard workers behind the
        cluster router).  The router already parsed and fingerprinted the
        payload, so the full cache key travels in headers and a hit skips
        body parsing, fingerprinting and the dispatcher queue entirely.  On
        a miss the caller falls through to the normal pipeline.
        """
        if not self.trust_fast_headers:
            return None
        fingerprint = request.headers.get("X-Repro-Fingerprint")
        if not fingerprint:
            return None
        start = time.perf_counter()
        key = (
            fingerprint,
            request.headers.get("X-Repro-Algorithm", "mrt"),
            request.headers.get("X-Repro-Params", "{}"),
            request.headers.get("X-Repro-Validate", "0") == "1",
        )
        payload = self.service.serve_cached(key)
        if payload is MISS:
            return None
        elapsed_ms = (time.perf_counter() - start) * 1e3
        self.service.note_latency(elapsed_ms)
        response = dict(payload)  # shallow: "result" is shared and read-only
        response["cache_hit"] = True
        response["elapsed_ms"] = elapsed_ms
        if trace is not None:
            trace.record_span(SPAN_FAST_HIT, start, time.perf_counter())
        return self._finish_schedule(response, trace)

    def _finish_schedule(self, payload: dict, trace: Trace | None) -> Response:
        """Serialize (under a span), land the trace, build the response.

        The trace is stored *before* the bytes hit the wire (the transport
        writes only after ``handle`` returns) so a client can turn around
        and ``GET /trace/<id>`` the id it reads from the
        ``X-Repro-Trace-Id`` response header immediately.  The body itself
        never carries the id — ``/schedule`` responses stay byte-identical
        to the untraced single-daemon output.
        """
        if trace is None:
            return Response.json(200, payload)
        start = time.perf_counter()
        body = json.dumps(payload).encode()
        trace.record_span(SPAN_SERIALIZE, start, time.perf_counter())
        trace.finish()
        self.service.traces.add(trace)
        if trace.duration_ms >= self.service.traces.slow_ms:
            self.log(
                "slow request trace=%s %.1fms", trace.trace_id, trace.duration_ms
            )
        return Response(200, body, headers={"X-Repro-Trace-Id": trace.trace_id})

    def _handle_schedule(self, request: Request) -> Response:
        service = self.service
        trace: Trace | None = None
        if service.tracing:
            # Adopt a propagated id (router→shard hop) or mint a fresh one.
            trace = service.tracer.start(request.headers.get("X-Repro-Trace-Id"))
        fast = self._try_fast_hit(request, trace)
        if fast is not None:
            return fast
        if trace is not None:
            start = time.perf_counter()
            payload = self.read_json_body(request)
            parsed = time.perf_counter()
            trace.record_span(SPAN_PARSE, start, parsed)
            sched_request = request_from_payload(payload)
            trace.record_span(SPAN_FINGERPRINT, parsed, time.perf_counter())
        else:
            sched_request = request_from_payload(self.read_json_body(request))
        response = service.submit(sched_request, trace=trace).result(
            timeout=self.request_timeout
        )
        return self._finish_schedule(response, trace)

    def _handle_replay(self, request: Request) -> Response:
        """Online replay, streamed: one NDJSON frame per epoch, chunked.

        Parsing still happens on the handler thread (so malformed payloads
        stay clean 400s), but the replay itself runs on a producer thread
        behind :func:`~repro.online.replay.iter_replay_frames`: each
        :class:`~repro.online.epoch.EpochReport` is emitted as an
        ``{"epoch": ...}`` line the moment its batch is scheduled, and the
        final line is the complete legacy response document.  Per-epoch
        batch plans are memoised in the service's
        :class:`~repro.online.plancache.PlanCache`, so repeated and
        overlapping traces skip the dichotomic search.  The micro-batching
        ``/schedule`` pipeline and its result cache are untouched.
        """
        # Local import: only /replay needs the online subsystem — keep the
        # serving frontend's module dependency graph decoupled from it.
        from ..online.replay import iter_replay_frames, replay_from_payload

        trace, rescheduler, validate = replay_from_payload(
            self.read_json_body(request), plan_cache=self.service.plan_cache
        )
        return Response.ndjson_stream(
            iter_replay_frames(trace, rescheduler, validate)
        )

    def _handle_purge(self, request: Request) -> Response:
        """Explicit eviction message: drop expired entries (or everything).

        ``{"all": true}`` also empties the replay plan cache (it has no TTL,
        so a full purge is its only eviction message besides LRU pressure);
        the count comes back as ``"plan_cleared"``.
        """
        payload = self.read_optional_dict_body(request, context="purge")
        cache = self.service.cache
        cleared = 0
        plan_cleared = 0
        if payload.get("all"):
            cleared = len(cache)
            cache.clear()
            plan_cleared = self.service.plan_cache.clear()
            expired = 0
        else:
            expired = cache.purge_expired()
        return Response.json(
            200,
            {
                "expired_purged": expired,
                "cleared": cleared,
                "plan_cleared": plan_cleared,
                "size": len(cache),
            },
        )

    def _handle_shutdown(self, request: Request) -> Response:
        if not self.allow_shutdown:
            return Response.json(403, {"error": "shutdown endpoint disabled"})
        # The stop signal fires only after the response bytes are on the
        # wire (the transport's shutdown hook is itself non-blocking).
        return Response.json(
            200, {"status": "shutting down"}, after_send=self._request_stop
        )

    def _request_stop(self) -> None:
        if self.transport_shutdown is not None:
            self.transport_shutdown()


class ServiceHTTPServer(ThreadedTransport):
    """Threaded transport bound to one :class:`SchedulerService`.

    Compatibility frontend: the constructor keeps the pre-split signature
    (address + service + keyword policy) and the service-level attributes
    (``service``, ``allow_shutdown``, ...) read through to the app, so
    existing callers and tests see no difference.
    """

    def __init__(
        self,
        address: tuple[str, int],
        service: SchedulerService,
        *,
        allow_shutdown: bool = False,
        request_timeout: float | None = 300.0,
        verbose: bool = False,
        trust_fast_headers: bool = False,
    ) -> None:
        app = DaemonApp(
            service,
            allow_shutdown=allow_shutdown,
            request_timeout=request_timeout,
            verbose=verbose,
            trust_fast_headers=trust_fast_headers,
        )
        super().__init__(address, app, verbose=verbose)

    @property
    def service(self) -> SchedulerService:
        return self.app.service

    @property
    def allow_shutdown(self) -> bool:
        return self.app.allow_shutdown

    @property
    def request_timeout(self) -> float | None:
        return self.app.request_timeout

    @property
    def trust_fast_headers(self) -> bool:
        return self.app.trust_fast_headers

    @property
    def started(self) -> float:
        return self.app.started


class AsyncServiceHTTPServer(AsyncioTransport):
    """Asyncio transport bound to one :class:`SchedulerService`.

    Same lifecycle and attribute surface as :class:`ServiceHTTPServer`, so
    ``make_server(..., transport="asyncio")`` is a drop-in swap.
    """

    @property
    def service(self) -> SchedulerService:
        return self.app.service


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    service: SchedulerService | None = None,
    *,
    transport: str = "threaded",
    **server_kwargs,
):
    """Bind a service server (``port=0`` picks an ephemeral port).

    ``transport`` selects the frontend ("threaded" or "asyncio"); both
    expose the same lifecycle (``url``, ``serve_forever``, ``close``) and
    serve byte-identical responses.
    """
    if transport == "threaded":
        return ServiceHTTPServer(
            (host, port), service or SchedulerService(), **server_kwargs
        )
    if transport == "asyncio":
        verbose = server_kwargs.get("verbose", False)
        app = DaemonApp(service or SchedulerService(), **server_kwargs)
        return AsyncServiceHTTPServer((host, port), app, verbose=verbose)
    from .http import TRANSPORTS

    raise ValueError(
        f"unknown transport {transport!r} (choose from {', '.join(TRANSPORTS)})"
    )


def start_background_server(
    host: str = "127.0.0.1",
    port: int = 0,
    service: SchedulerService | None = None,
    *,
    transport: str = "threaded",
    **server_kwargs,
):
    """Start a server on a daemon thread; returns ``(server, thread)``.

    Used by the self-hosted load-test mode, the CLI tests and the benchmark.
    Stop it with ``server.close()``.
    """
    server = make_server(host, port, service, transport=transport, **server_kwargs)
    thread = threading.Thread(
        target=server.serve_forever, name="scheduler-service-http", daemon=True
    )
    thread.start()
    return server, thread
