"""Threaded transport: one handler thread per connection (the default).

A thin adapter from ``http.server.ThreadingHTTPServer`` to the
:class:`~repro.service.http.app.App` contract: the handler reads the body,
builds a :class:`Request`, calls ``app.handle`` and writes the
:class:`Response`.  All routing, header policy and error mapping live in
the app — this module owns only sockets and threads, which is what makes
the asyncio transport a drop-in sibling.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

from .app import App, Request, Response
from .errors import oversized_body_response

__all__ = ["ThreadedTransport"]


class _AppHandler(BaseHTTPRequestHandler):
    """Generic handler delegating every request to the bound app."""

    server: "ThreadedTransport"
    protocol_version = "HTTP/1.1"
    # Responses are written as two sends (headers, body) on a keep-alive
    # connection; Nagle + the peer's delayed ACK would cost ~40ms per
    # reply otherwise.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _dispatch(self) -> None:
        app = self.server.app
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > app.max_body_bytes:
            # Rejected without draining: the unread body would desync the
            # keep-alive stream, so the response says close and we do.
            self._write(oversized_body_response(app.max_body_bytes))
            return
        body = self.rfile.read(length) if length > 0 else b""
        url = urlsplit(self.path)
        request = Request(
            method=self.command,
            target=self.path,
            path=url.path,
            query=url.query,
            headers=self.headers,
            body=body,
        )
        self._write(app.handle(request))

    # Every method funnels through the app: unknown (method, path) pairs
    # get the app's uniform JSON 404 instead of stdlib's HTML 501.
    do_GET = _dispatch  # noqa: N815 (stdlib API)
    do_POST = _dispatch  # noqa: N815
    do_HEAD = _dispatch  # noqa: N815
    do_PUT = _dispatch  # noqa: N815
    do_DELETE = _dispatch  # noqa: N815
    do_PATCH = _dispatch  # noqa: N815
    do_OPTIONS = _dispatch  # noqa: N815

    def _write(self, response: Response) -> None:
        if response.stream is not None:
            self._write_stream(response)
            return
        if response.close:
            self.close_connection = True
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(response.body)
        if response.after_send is not None:
            response.after_send()

    def _write_stream(self, response: Response) -> None:
        """Chunked Transfer-Encoding: one HTTP chunk per yielded frame.

        A producer that raises mid-stream aborts the connection without the
        terminating zero chunk — truncation is the client's error signal
        (the contract documented on :class:`Response` and pinned by the
        parity suite).
        """
        if response.close:
            self.close_connection = True
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Transfer-Encoding", "chunked")
        for name, value in response.headers.items():
            self.send_header(name, value)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        frames = iter(response.stream)
        try:
            for frame in frames:
                if not frame:
                    continue
                self.wfile.write(b"%x\r\n%s\r\n" % (len(frame), frame))
                self.wfile.flush()
        except Exception:  # noqa: BLE001 — producer or peer failed mid-stream
            self.close_connection = True
            return
        finally:
            closer = getattr(frames, "close", None)
            if closer is not None:
                try:
                    closer()
                except Exception:  # noqa: BLE001 — abort already signalled
                    pass
        self.wfile.write(b"0\r\n\r\n")
        if response.after_send is not None:
            response.after_send()


class ThreadedTransport(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` bound to one :class:`App`."""

    daemon_threads = True
    # socketserver's default accept backlog is 5: a high-concurrency client
    # (the loadtest soak opens hundreds of connections at once) gets
    # connection resets before a single byte of HTTP is spoken.  Match the
    # asyncio transport's backlog so the two differ in concurrency model,
    # not accept capacity.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        app: App,
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _AppHandler)
        self.app = app
        self.verbose = verbose
        app.verbose = app.verbose or verbose
        # The /shutdown hook: ``shutdown`` blocks until ``serve_forever``
        # exits, so it must run off the handler thread (which still has to
        # finish writing the response).
        app.transport_shutdown = self._background_shutdown
        self._serve_started = False

    def _background_shutdown(self) -> None:
        threading.Thread(target=self.shutdown, daemon=True).start()

    def serve_forever(self, *args, **kwargs) -> None:
        self._serve_started = True
        super().serve_forever(*args, **kwargs)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Full teardown: stop serving, release the socket, close the app.

        Safe in every lifecycle state: ``shutdown`` is only invoked when
        the serve loop has actually been entered (it would block forever
        on a server whose ``serve_forever`` never ran), and it returns
        immediately when the loop has already exited.
        """
        if self._serve_started:
            self.shutdown()
        self.server_close()
        self.app.close()
