"""Asyncio transport: one event loop, thousands of keep-alive connections.

The thread-per-connection default (:mod:`.threaded`) pays a thread stack
and scheduler churn per idle keep-alive connection; at hundreds of
concurrent clients that overhead dominates the warm cache-hit path.  This
transport holds every connection on a single event loop (stdlib
``asyncio.start_server`` + a minimal HTTP/1.1 parser) and dispatches each
parsed :class:`~repro.service.http.app.Request` to a bounded worker-thread
executor — ``App.handle`` and everything below it (the scheduler service,
its locks, the micro-batching dispatcher) runs exactly the code it runs
under the threaded transport, so the two serve byte-identical responses.

Parser scope (matching what the threaded stack accepts in practice):
request line + headers + ``Content-Length`` bodies, HTTP/1.0 and 1.1,
keep-alive with pipelined-request safety (requests on one connection are
parsed and answered strictly in order, so pipelined bytes simply wait in
the stream buffer), oversized bodies rejected before reading.  Chunked
request bodies are refused with a 400 — the threaded stack never decoded
them either, it just desynchronised; refusing is the honest version.
Slow clients are handled by ``drain()`` backpressure on writes.
"""

from __future__ import annotations

import asyncio
import platform
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from email.utils import formatdate
from http import HTTPStatus
from urllib.parse import urlsplit

from .app import App, Headers, Request, Response
from .errors import oversized_body_response

__all__ = ["AsyncioTransport"]

#: Refuse requests with more header lines than this.
MAX_HEADERS = 256

_SERVER_ID = f"ReproAsyncHTTP/1.1 Python/{platform.python_version()}"

#: Executor-side sentinel: ``next(frames, _STREAM_DONE)`` distinguishes a
#: clean end of stream from a producer exception without a try in the loop.
_STREAM_DONE = object()


def _bad_request(message: str) -> Response:
    """A parse-level 400; always closes (the stream may be desynced)."""
    return Response.json(400, {"error": message}, close=True)


class AsyncioTransport:
    """``asyncio.start_server`` frontend bound to one :class:`App`.

    Presents the same lifecycle surface as the threaded transport:
    ``server_address`` is available right after construction (the listening
    socket is bound eagerly), ``serve_forever()`` blocks running the event
    loop, ``shutdown()`` is thread-safe, ``close()`` tears everything down.

    ``app_workers`` bounds the executor running ``App.handle`` calls; the
    event loop itself never executes application code, so a slow scheduler
    batch cannot stall connection handling.
    """

    def __init__(
        self,
        address: tuple[str, int],
        app: App,
        *,
        verbose: bool = False,
        app_workers: int = 32,
    ) -> None:
        self.app = app
        self.verbose = verbose
        app.verbose = app.verbose or verbose
        app.transport_shutdown = self.shutdown
        self.app_workers = int(app_workers)
        self._socket = socket.create_server(address)
        self._lifecycle_lock = threading.Lock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._stop_requested = False
        self._serve_started = False
        self._finished = threading.Event()

    # ------------------------------------------------------------------ #
    # lifecycle (mirrors the ThreadedTransport surface)
    # ------------------------------------------------------------------ #
    @property
    def server_address(self) -> tuple:
        return self._socket.getsockname()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` (blocking)."""
        self._serve_started = True
        try:
            asyncio.run(self._serve())
        finally:
            self._finished.set()

    def shutdown(self) -> None:
        """Thread-safe stop signal; returns immediately."""
        with self._lifecycle_lock:
            self._stop_requested = True
            loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:  # loop already closed between check and call
                pass

    def server_close(self) -> None:
        """Release the listening socket (idempotent)."""
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def close(self) -> None:
        """Full teardown: stop the loop, release the socket, close the app."""
        self.shutdown()
        if self._serve_started:
            self._finished.wait(timeout=30.0)
        self.server_close()
        self.app.close()

    # ------------------------------------------------------------------ #
    # event loop
    # ------------------------------------------------------------------ #
    async def _serve(self) -> None:
        stop = asyncio.Event()
        with self._lifecycle_lock:
            self._loop = asyncio.get_running_loop()
            self._stop_event = stop
            if self._stop_requested:  # closed before the loop came up
                return
        executor = ThreadPoolExecutor(
            max_workers=self.app_workers, thread_name_prefix="repro-http-app"
        )
        self._executor = executor
        server = await asyncio.start_server(self._client_connected, sock=self._socket)
        try:
            await stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            # Idle keep-alive connection tasks are cancelled by
            # ``asyncio.run`` on loop teardown; the executor must not block
            # shutdown on an in-flight scheduler batch.
            executor.shutdown(wait=False)

    async def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # Same rationale as the threaded handler's
            # ``disable_nagle_algorithm``: replies are multiple sends.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        loop = asyncio.get_running_loop()
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:  # clean EOF or peer reset between requests
                    return
                request, close_after = parsed
                if isinstance(request, Response):
                    # Parse-level error response (malformed line, oversized
                    # body, ...): the stream may be desynced, always close.
                    await self._write_response(writer, request, close=True)
                    return
                if self.verbose:
                    self.app.log(
                        '%s - "%s %s"', writer.get_extra_info("peername"),
                        request.method, request.target,
                    )
                # Application code never runs on the event loop: the
                # scheduler compute path, its locks and the micro-batching
                # dispatcher behave exactly as under the threaded stack.
                response = await loop.run_in_executor(
                    self._executor, self.app.handle, request
                )
                close_after = close_after or response.close
                ok = await self._write_response(writer, response, close=close_after)
                if ok and response.after_send is not None:
                    response.after_send()
                if close_after or not ok:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            return  # peer went away mid-request; nothing to answer
        except asyncio.CancelledError:
            # Loop teardown cancels connection tasks wherever they are
            # parked; finishing normally keeps the stdlib stream
            # protocol's done-callback from logging the cancellation as
            # an error.
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[Request | Response, bool] | None:
        """Parse one request; ``None`` on EOF, a Response on parse errors."""
        line = b""
        for _ in range(8):  # RFC 9112 §2.2: ignore CRLFs before the line
            try:
                line = await reader.readline()
            except ValueError:  # line beyond the stream limit (64 KiB)
                return _bad_request("request line too long"), True
            if line == b"":
                return None
            if line not in (b"\r\n", b"\n"):
                break
        else:
            return _bad_request("expected a request line"), True
        try:
            words = line.decode("latin-1").split()
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            return _bad_request("malformed request line"), True
        if len(words) != 3 or not words[2].startswith("HTTP/1."):
            return _bad_request(f"malformed request line {line!r}"), True
        method, target, version = words

        raw_headers: dict[str, str] = {}
        for _ in range(MAX_HEADERS):
            try:
                line = await reader.readline()
            except ValueError:
                return _bad_request("header line too long"), True
            if line in (b"\r\n", b"\n"):
                break
            if line == b"":  # EOF mid-headers
                return None
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep or not name or name != name.strip() or " " in name:
                return _bad_request(f"malformed header line {line!r}"), True
            # First value wins, matching email.message.Message.get on the
            # threaded side.
            raw_headers.setdefault(name.lower(), value.strip())
        else:
            return _bad_request(f"more than {MAX_HEADERS} header lines"), True
        headers = Headers(raw_headers)

        if "chunked" in (headers.get("Transfer-Encoding") or "").lower():
            return _bad_request("chunked transfer encoding is not supported"), True
        try:
            length = int(headers.get("Content-Length", 0) or 0)
            if length < 0:
                raise ValueError
        except ValueError:
            return _bad_request(
                f"bad Content-Length {headers.get('Content-Length')!r}"
            ), True
        if length > self.app.max_body_bytes:
            # Rejected without reading — identical body and close
            # behaviour to the threaded transport's guard.
            return oversized_body_response(self.app.max_body_bytes), True
        body = await reader.readexactly(length) if length else b""

        connection = (headers.get("Connection") or "").lower()
        if version == "HTTP/1.0":
            close_after = "keep-alive" not in connection
        else:
            close_after = "close" in connection
        url = urlsplit(target)
        request = Request(
            method=method,
            target=target,
            path=url.path,
            query=url.query,
            headers=headers,
            body=body,
        )
        return request, close_after

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response, *, close: bool
    ) -> bool:
        """Write one response; ``False`` means the connection is unusable.

        The plain-body path always returns ``True`` (a vanished peer makes
        the response moot but ``after_send`` still fires, matching the
        threaded transport); only an aborted stream poisons the connection.
        """
        if response.stream is not None:
            return await self._write_stream(writer, response, close=close)
        try:
            phrase = HTTPStatus(response.status).phrase
        except ValueError:
            phrase = ""
        head = [
            f"HTTP/1.1 {response.status} {phrase}",
            f"Server: {_SERVER_ID}",
            f"Date: {formatdate(usegmt=True)}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
        ]
        head.extend(f"{name}: {value}" for name, value in response.headers.items())
        if close:
            head.append("Connection: close")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(response.body)
        # Backpressure-aware: a slow client reading in dribs just parks
        # this coroutine instead of blocking a handler thread.
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # peer vanished mid-write; the response is moot
        return True

    async def _write_stream(
        self, writer: asyncio.StreamWriter, response: Response, *, close: bool
    ) -> bool:
        """Chunked Transfer-Encoding, pulled frame-by-frame off the loop.

        Each ``next(frames)`` runs in the app executor (the producer may
        block on scheduler compute) and each chunk is followed by
        ``drain()``, so a slow consumer parks this coroutine instead of
        stalling the event loop.  A producer exception aborts without the
        terminating zero chunk — same truncation contract as the threaded
        transport — and returns ``False`` so the connection is dropped.
        """
        try:
            phrase = HTTPStatus(response.status).phrase
        except ValueError:
            phrase = ""
        head = [
            f"HTTP/1.1 {response.status} {phrase}",
            f"Server: {_SERVER_ID}",
            f"Date: {formatdate(usegmt=True)}",
            f"Content-Type: {response.content_type}",
            "Transfer-Encoding: chunked",
        ]
        head.extend(f"{name}: {value}" for name, value in response.headers.items())
        if close:
            head.append("Connection: close")
        loop = asyncio.get_running_loop()
        frames = iter(response.stream)
        try:
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
            await writer.drain()
            while True:
                frame = await loop.run_in_executor(
                    self._executor, next, frames, _STREAM_DONE
                )
                if frame is _STREAM_DONE:
                    break
                if not frame:
                    continue
                writer.write(b"%x\r\n%s\r\n" % (len(frame), frame))
                await writer.drain()
            writer.write(b"0\r\n\r\n")
            await writer.drain()
            return True
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 — producer or peer failed mid-stream
            return False
        finally:
            closer = getattr(frames, "close", None)
            if closer is not None:
                try:
                    closer()
                except Exception:  # noqa: BLE001 — generator may still be
                    pass  # running in the executor during loop teardown
