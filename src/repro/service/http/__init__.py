"""Transport-agnostic HTTP layer of the serving stack.

The daemon (:mod:`repro.service.server`) and the cluster router
(:mod:`repro.service.cluster.router`) used to be ~1300 lines of
near-duplicate ``BaseHTTPRequestHandler`` subclasses, each hand-rolling
routing, header handling and error→status mapping.  This package splits
that stack into two layers:

* **Application** — :class:`~repro.service.http.app.App`: a pure
  ``handle(Request) -> Response`` object with a declarative route table.
  Apps never touch sockets; handlers raise domain exceptions and the one
  shared mapper (:func:`~repro.service.http.errors.map_exception`) turns
  them into status codes, so the error contract is enforced once (lint
  rule RL008 keeps it that way).
* **Transport** — anything that parses bytes off a socket into a
  :class:`Request` and writes the :class:`Response` back.  Two are
  provided, serving byte-identical responses:

  - :class:`~repro.service.http.threaded.ThreadedTransport` — the
    classic ``ThreadingHTTPServer`` (one thread per connection); the
    default, zero behaviour change from the pre-split stack.
  - :class:`~repro.service.http.aio.AsyncioTransport` — a single-threaded
    ``asyncio`` frontend (minimal HTTP/1.1 parser, keep-alive, pipelined
    requests served in order) that dispatches ``App.handle`` calls to a
    worker-thread executor, so one process holds thousands of idle
    keep-alive connections without a thread each while the scheduler
    compute path and its locks stay untouched.

:mod:`~repro.service.http.pool` holds the client-side twins: the shared
keep-alive :class:`ConnectionPool` and the capped-jitter
:class:`RetryPolicy` used by both :class:`~repro.service.client.ServiceClient`
and the router's forwarding path.
"""

from __future__ import annotations

from .app import MAX_BODY_BYTES, App, Headers, Request, Response, Route
from .errors import map_exception, oversized_body_response
from .pool import ConnectionPool, RetryPolicy, open_http_connection

__all__ = [
    "App",
    "AsyncioTransport",
    "ConnectionPool",
    "Headers",
    "MAX_BODY_BYTES",
    "Request",
    "Response",
    "RetryPolicy",
    "Route",
    "TRANSPORTS",
    "ThreadedTransport",
    "make_transport",
    "map_exception",
    "open_http_connection",
    "oversized_body_response",
]

#: The pluggable transport kinds accepted by ``make_transport`` and the
#: CLI ``--transport`` flag.
TRANSPORTS = ("threaded", "asyncio")


def make_transport(kind: str, address: tuple[str, int], app: App, *, verbose: bool = False):
    """Bind ``app`` behind the chosen transport; returns the server object.

    Both transports expose the same lifecycle surface: ``server_address``,
    ``url``, ``serve_forever()``, ``shutdown()``, ``server_close()`` and
    ``close()``.
    """
    if kind == "threaded":
        from .threaded import ThreadedTransport

        return ThreadedTransport(address, app, verbose=verbose)
    if kind == "asyncio":
        from .aio import AsyncioTransport

        return AsyncioTransport(address, app, verbose=verbose)
    raise ValueError(
        f"unknown transport {kind!r} (choose from {', '.join(TRANSPORTS)})"
    )


def __getattr__(name: str):
    # Lazy transport classes: importing the package must not drag asyncio
    # machinery into shard worker processes that only use the default.
    if name == "ThreadedTransport":
        from .threaded import ThreadedTransport

        return ThreadedTransport
    if name == "AsyncioTransport":
        from .aio import AsyncioTransport

        return AsyncioTransport
    raise AttributeError(name)
