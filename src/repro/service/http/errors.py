"""The single error→status mapper of the serving stack (RL005/RL008).

Every handler exception in every app — daemon and router alike — funnels
through :func:`map_exception` via :meth:`App.handle
<repro.service.http.app.App.handle>`.  The contract:

=====================================  ======  ==================================
exception                              status  body
=====================================  ======  ==================================
``ModelError`` (malformed input)       400     ``{"error": str(exc)}``
``ServiceOverloadedError``             503     ``{"error": str(exc)}``
``TimeoutError``                       504     ``{"error": "scheduling request
                                               timed out"}``
anything else (``ReproError``, bugs)   500     ``{"error": "Type: message"}``
=====================================  ======  ==================================

A 4xx means the *client* sent something wrong (diagnostic attached); a 503
means back off and retry; a 500 is reserved for genuine server bugs and is
what the load generator counts as a server error.  Lint rule RL008 flags
any ``except`` handler elsewhere in ``service/`` that builds a status
response itself, keeping this module the single source of truth.
"""

from __future__ import annotations

from concurrent.futures import TimeoutError as FuturesTimeoutError

from ...exceptions import ModelError, ServiceOverloadedError
from .app import MAX_BODY_BYTES, Response

__all__ = ["map_exception", "oversized_body_response"]


def map_exception(exc: BaseException) -> Response:
    """Map one handler exception to its documented JSON error response."""
    if isinstance(exc, ModelError):
        return Response.json(400, {"error": str(exc)})
    if isinstance(exc, ServiceOverloadedError):
        return Response.json(503, {"error": str(exc)})
    # Distinct classes on Python 3.10, aliases from 3.11 on.
    if isinstance(exc, (TimeoutError, FuturesTimeoutError)):
        return Response.json(504, {"error": "scheduling request timed out"})
    # Anything unexpected (a user-registered scheduler raising a
    # non-ReproError, submit() during shutdown, ...) must still come back
    # as the documented 500 instead of a reset socket.
    return Response.json(500, {"error": f"{type(exc).__name__}: {exc}"})


def oversized_body_response(limit: int = MAX_BODY_BYTES) -> Response:
    """The 400 for a body the transport refuses to read.

    ``close=True``: the body was rejected *without draining*, so the bytes
    still sitting in the socket would desynchronise a keep-alive
    connection — the transport must drop it after replying.
    """
    return Response.json(
        400, {"error": f"request body larger than {limit} bytes"}, close=True
    )
