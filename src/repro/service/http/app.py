"""Request/Response model and the transport-agnostic :class:`App` base.

A transport parses one HTTP request into a :class:`Request`, calls
``app.handle(request)`` and writes the returned :class:`Response` — nothing
else crosses the boundary.  Apps declare their endpoints as a
:class:`Route` table; handlers raise domain exceptions
(:class:`~repro.exceptions.ModelError` & co.) and the shared mapper in
:mod:`~repro.service.http.errors` turns them into status codes, so the
error contract lives in exactly one place.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping
from urllib.parse import parse_qs

__all__ = [
    "App",
    "Headers",
    "MAX_BODY_BYTES",
    "Request",
    "Response",
    "Route",
]

#: Refuse request bodies larger than this (64 MiB) — a crude but effective
#: guard against memory exhaustion from a single client.  Enforced by the
#: transports *before* reading the body.
MAX_BODY_BYTES = 64 * 1024 * 1024


class Headers:
    """Case-insensitive read-only header mapping (asyncio transport side).

    The threaded transport hands apps the stdlib ``email.message.Message``
    (already case-insensitive); this is the equivalent for headers parsed
    by hand, so ``request.headers.get("X-Repro-Fingerprint")`` behaves the
    same under every transport.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Mapping[str, str] | None = None) -> None:
        self._items: dict[str, str] = {}
        if items:
            for name, value in items.items():
                self._items[name.lower()] = value

    def get(self, name: str, default: str | None = None) -> str | None:
        return self._items.get(name.lower(), default)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._items

    def __len__(self) -> int:
        return len(self._items)


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request, transport-independent.

    ``target`` is the raw request target (path + query, exactly as sent —
    the 404 diagnostics quote it verbatim); ``path`` and ``query`` are its
    split halves.  ``headers`` only needs case-insensitive ``get``.
    """

    method: str
    target: str
    path: str
    query: str
    headers: Any
    body: bytes = b""

    def query_param(self, name: str) -> str | None:
        """First value of a query parameter, or ``None`` when absent."""
        values = parse_qs(self.query).get(name)
        return values[0] if values else None


@dataclass
class Response:
    """One HTTP response: status, body bytes and extra headers.

    Transports always emit ``Content-Type`` and an exact ``Content-Length``
    (including ``0`` for empty bodies) plus every entry of ``headers`` —
    the ``X-Repro-*`` contract rides there.  ``close`` asks the transport
    to drop the connection after writing; ``after_send`` runs once the
    bytes are on the wire (the ``/shutdown`` hook).

    Streaming variant: when ``stream`` is set (an iterable of byte frames;
    ``body`` stays empty) the transport emits ``Transfer-Encoding: chunked``
    instead of a ``Content-Length``, writing exactly one HTTP chunk per
    non-empty frame as the iterator yields it — frame boundaries are part
    of the wire contract, pinned by the chunked parity matrix in
    ``tests/test_http_parity.py``.  A clean end of iteration writes the
    terminating zero-length chunk; an iterator that *raises* mid-stream
    aborts the connection **without** the terminator, so truncation is the
    client's one error signal on every transport.  ``after_send`` runs only
    after a complete stream.
    """

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)
    close: bool = False
    after_send: Callable[[], None] | None = None
    stream: Iterable[bytes] | None = None

    @classmethod
    def json(cls, status: int, payload: dict, **kwargs) -> "Response":
        """JSON response with the stack's canonical ``json.dumps`` bytes."""
        return cls(status, json.dumps(payload).encode(), **kwargs)

    @classmethod
    def ndjson_stream(cls, frames: Iterable[bytes], **kwargs) -> "Response":
        """Chunked NDJSON stream (one JSON line per frame, ``POST /replay``)."""
        return cls(200, stream=frames, content_type="application/x-ndjson", **kwargs)


@dataclass(frozen=True)
class Route:
    """One route-table entry.

    ``prefix=True`` matches any path starting with ``path`` and passes the
    remainder to the handler as a second argument (``/trace/<id>``).
    """

    method: str
    path: str
    handler: Callable[..., Response]
    prefix: bool = False


class App:
    """Transport-agnostic application: ``handle(Request) -> Response``.

    Subclasses implement :meth:`routes` (declarative table) and plain
    handler methods.  ``handle`` owns dispatch, the 404 fallback and the
    single error→status mapping; handlers either return a
    :class:`Response` or raise, never both map and send.
    """

    #: Transports reject bodies above this before reading them.
    max_body_bytes = MAX_BODY_BYTES

    def __init__(self, *, verbose: bool = False) -> None:
        self.verbose = verbose
        #: Installed by the transport that binds this app: a zero-argument
        #: callable triggering a graceful server stop (the /shutdown hook).
        self.transport_shutdown: Callable[[], None] | None = None
        self._exact: dict[tuple[str, str], Callable[..., Response]] = {}
        self._prefixes: list[Route] = []
        for route in self.routes():
            if route.prefix:
                self._prefixes.append(route)
            else:
                self._exact[(route.method, route.path)] = route.handler

    # ------------------------------------------------------------------ #
    # subclass surface
    # ------------------------------------------------------------------ #
    def routes(self) -> list[Route]:
        raise NotImplementedError

    def close(self) -> None:
        """Release app-owned resources (called by ``transport.close()``)."""

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def handle(self, request: Request) -> Response:
        handler = self._exact.get((request.method, request.path))
        args: tuple = (request,)
        if handler is None:
            for route in self._prefixes:
                if request.method == route.method and request.path.startswith(
                    route.path
                ):
                    handler = route.handler
                    args = (request, request.path[len(route.path) :])
                    break
        if handler is None:
            return Response.json(404, {"error": f"unknown path {request.target!r}"})
        try:
            return handler(*args)
        except Exception as exc:  # noqa: BLE001 — never drop the connection
            # The one place request-handling exceptions become statuses:
            # anything a handler raises (malformed input, backpressure, a
            # user-registered scheduler crashing) must still come back as
            # the documented JSON error instead of a reset socket.
            from .errors import map_exception

            return map_exception(exc)

    def log(self, message: str, *args) -> None:
        """Operator log line (stderr), printed only in verbose mode."""
        if self.verbose:
            print(message % args if args else message, file=sys.stderr, flush=True)

    # ------------------------------------------------------------------ #
    # shared request plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def read_json_body(request: Request) -> dict:
        """Decode a required JSON request body (400 via ModelError if bad)."""
        from ...exceptions import ModelError

        if not request.body:
            raise ModelError("missing or empty request body")
        try:
            return json.loads(request.body)
        except json.JSONDecodeError as exc:
            raise ModelError(f"request body is not valid JSON: {exc}") from exc

    @staticmethod
    def read_optional_dict_body(request: Request, *, context: str) -> dict:
        """Decode an optional JSON-object body (``/purge``); ``{}`` if empty."""
        from ...exceptions import ModelError

        if not request.body:
            return {}
        try:
            decoded = json.loads(request.body)
        except (json.JSONDecodeError, ValueError) as exc:
            raise ModelError(f"{context} body is not valid JSON") from exc
        return decoded if isinstance(decoded, dict) else {}

    @staticmethod
    def parse_window_query(request: Request) -> tuple[float | None, float | None]:
        """``?window=<s>&step=<s>`` of ``/metrics/history`` (400 when bad)."""
        from ...exceptions import ModelError

        try:
            window = request.query_param("window")
            step = request.query_param("step")
            window_s = float(window) if window is not None else None
            step_s = float(step) if step is not None else None
            if window_s is not None and window_s <= 0:
                raise ValueError("window must be positive")
            if step_s is not None and step_s <= 0:
                raise ValueError("step must be positive")
        except ValueError as exc:
            raise ModelError(f"bad history query: {exc}") from None
        return window_s, step_s

    @staticmethod
    def parse_slow_ms_query(request: Request) -> float | None:
        """``?slow_ms=N`` of ``/traces`` (400 when not a float)."""
        from ...exceptions import ModelError

        slow_param = request.query_param("slow_ms")
        if slow_param is None:
            return None
        try:
            return float(slow_param)
        except ValueError:
            raise ModelError(f"bad slow_ms {slow_param!r}") from None
