"""Shared keep-alive connection pool and retry policy (client + router).

Before this module, :class:`~repro.service.client.ServiceClient` and the
router's forwarding path each hand-rolled the same two things: eagerly
connected ``http.client`` connections with Nagle disabled (a reused
keep-alive connection writes headers and body separately, and Nagle + the
peer's delayed ACK would stall every exchange by ~40ms otherwise), and a
capped-backoff retry loop.  Both now live here exactly once.

* :func:`open_http_connection` — one eagerly-connected ``HTTPConnection``
  with ``TCP_NODELAY`` set before the first request.
* :class:`ConnectionPool` — a bounded idle pool keyed by an arbitrary
  hashable (the router keys by shard id) and the connection's *current*
  URL: after a shard respawn the URL changes, stale pooled connections
  fail to match and are simply dropped.
* :class:`RetryPolicy` — capped exponential backoff with optional full
  jitter; the client's 503-absorbing loop and any fixed-wait forward
  retry both express themselves through it.
"""

from __future__ import annotations

import http.client
import random
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Hashable

__all__ = ["ConnectionPool", "RetryPolicy", "open_http_connection"]


def open_http_connection(
    host_port: str,
    *,
    timeout: float,
    scheme: str = "http",
) -> http.client.HTTPConnection:
    """Eagerly-connected keep-alive connection with Nagle disabled.

    Connecting eagerly (instead of on first request) lets ``TCP_NODELAY``
    land before any bytes are written — the whole point of the option.
    """
    if scheme == "https":
        conn: http.client.HTTPConnection = http.client.HTTPSConnection(
            host_port, timeout=timeout
        )
    else:
        conn = http.client.HTTPConnection(host_port, timeout=timeout)
    conn.connect()
    conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return conn


class ConnectionPool:
    """Tiny keep-alive pool of HTTP connections, keyed by peer.

    ``acquire(key, url)`` hands back an idle connection previously pooled
    for the *same* ``(key, url)`` pair, or opens a fresh one.  The URL
    match is the staleness check: when a peer moves (router→shard after a
    respawn), pooled connections for the old URL are closed on sight.
    Callers hold a connection exclusively between acquire and release, so
    the pool is safe to share across handler threads.
    """

    def __init__(self, timeout: float, max_idle_per_key: int = 8) -> None:
        self.timeout = timeout
        self.max_idle = max_idle_per_key
        self._idle: dict[Hashable, deque[tuple[str, http.client.HTTPConnection]]] = {}
        self._lock = threading.Lock()

    def acquire(self, key: Hashable, url: str) -> http.client.HTTPConnection:
        with self._lock:
            idle = self._idle.get(key)
            while idle:
                pooled_url, conn = idle.popleft()
                if pooled_url == url:
                    return conn
                conn.close()  # stale: the peer moved (respawn)
        host_port = url.split("//", 1)[1]
        return open_http_connection(host_port, timeout=self.timeout)

    def release(
        self, key: Hashable, url: str, conn: http.client.HTTPConnection
    ) -> None:
        with self._lock:
            idle = self._idle.setdefault(key, deque())
            if len(idle) < self.max_idle:
                idle.append((url, conn))
                return
        conn.close()

    def close_all(self) -> None:
        with self._lock:
            for idle in self._idle.values():
                for _, conn in idle:
                    conn.close()
            self._idle.clear()


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff, optionally fully jittered.

    ``delay(attempt)`` is ``min(cap, backoff * 2**attempt)``; with
    ``jitter`` the actual sleep is drawn uniformly from ``[0, delay]``
    (full jitter — lockstep retries would re-thunder the herd they are
    spreading).  ``retries`` is how many retries follow the first attempt;
    0 disables retrying.
    """

    retries: int = 3
    backoff: float = 0.1
    backoff_cap: float = 2.0
    jitter: bool = True

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff <= 0 or self.backoff_cap <= 0:
            raise ValueError("backoff and backoff_cap must be positive")

    def delay(self, attempt: int) -> float:
        return min(self.backoff_cap, self.backoff * (2**attempt))

    def sleep(self, attempt: int) -> None:
        """Block for this attempt's (possibly jittered) backoff delay."""
        delay = self.delay(attempt)
        if self.jitter:
            # Backoff jitter must NOT be seeded/deterministic: clients that
            # back off in lockstep re-thunder the herd they are spreading.
            # repro-lint: disable=RL002
            delay = random.uniform(0.0, delay)
        time.sleep(delay)
