"""Scheduling-as-a-service layer.

Turns the package's one-shot schedulers into a long-lived serving stack:

* :class:`~repro.service.core.SchedulerService` — in-process facade with a
  micro-batching request queue, a worker pool (shared dispatch machinery
  with the experiment harness) and an LRU+TTL result cache keyed by
  :meth:`Instance.fingerprint() <repro.model.instance.Instance.fingerprint>`;
* :mod:`~repro.service.http` — the transport/app split: a shared
  WSGI-style core (``Request``/``Response``/``App``) plus two interchangeable
  frontends — threaded ``http.server`` (default) and a single-event-loop
  ``asyncio`` transport — serving byte-identical responses;
* :mod:`~repro.service.server` — the daemon/shard application
  (``POST /schedule``, ``GET /healthz``, ``GET /metrics``) over that layer;
* :mod:`~repro.service.client` — ``urllib`` client (with 503 retry/backoff);
* :mod:`~repro.service.loadtest` — cold/warm load generator used by
  ``python -m repro loadtest`` and the service throughput benchmark;
* :mod:`~repro.service.cluster` — sharded cluster: consistent-hash cache
  shards (``ShardRing``), per-shard worker processes, the ``ShardRouter``
  frontend and the ``ClusterSupervisor`` (``serve --shards N``).
"""

from .cache import CacheStats, LRUTTLCache, MISS
from .client import ReplayStreamError, ServiceClient, ServiceHTTPError
from .core import (
    ScheduleRequest,
    SchedulerService,
    canonical_json,
    compute_response,
    payload_fingerprint,
    request_from_payload,
)
from .loadtest import build_workload_payloads, run_loadtest
from .http import TRANSPORTS
from .server import (
    DaemonApp,
    ServiceHTTPServer,
    make_server,
    start_background_server,
)
from .cluster import (
    ClusterHandle,
    ClusterSupervisor,
    ShardRing,
    ShardRouterServer,
    ShardSpec,
    start_cluster,
)

__all__ = [
    "CacheStats",
    "ClusterHandle",
    "ClusterSupervisor",
    "DaemonApp",
    "LRUTTLCache",
    "MISS",
    "ReplayStreamError",
    "TRANSPORTS",
    "ScheduleRequest",
    "SchedulerService",
    "ServiceClient",
    "ServiceHTTPError",
    "ServiceHTTPServer",
    "ShardRing",
    "ShardRouterServer",
    "ShardSpec",
    "build_workload_payloads",
    "canonical_json",
    "compute_response",
    "make_server",
    "payload_fingerprint",
    "request_from_payload",
    "run_loadtest",
    "start_background_server",
    "start_cluster",
]
