"""Sharded scheduling cluster: consistent-hash cache shards behind a router.

The single-process daemon (:mod:`repro.service`) keeps its fingerprint
result cache in-process, so extra server processes each rebuild the same hot
set.  This package scales the cache *horizontally* instead:

* :mod:`~repro.service.cluster.ring` — :class:`ShardRing`, consistent
  hashing with virtual nodes over fingerprint prefixes;
* :mod:`~repro.service.cluster.worker` — shard workers (process or thread
  backend), each a full daemon owning a disjoint cache slice and serving
  its hits locally;
* :mod:`~repro.service.cluster.supervisor` — :class:`ClusterSupervisor`,
  spawn/monitor/respawn plus fleet-wide metrics and purge fan-out;
* :mod:`~repro.service.cluster.router` — :class:`ShardRouterServer`, the
  HTTP frontend that fingerprints raw payloads and relays them verbatim to
  the owning shard (responses stay byte-identical to the daemon's).

Shared-nothing eviction protocol: no cross-shard invalidation exists or is
needed (keys are partitioned), entries age out via TTL + the periodic
drain-loop purge, and ``POST /purge`` is the explicit eviction message.

Entry points: ``python -m repro serve --shards N`` (CLI) or
:func:`start_cluster` (in-process, used by tests and benchmarks).
"""

from .ring import KEY_PREFIX_LEN, ShardRing
from .router import (
    ClusterHandle,
    RouterApp,
    ShardRouterServer,
    make_router,
    routing_info,
    start_cluster,
)
from .supervisor import ClusterSupervisor
from .worker import (
    ProcessShardHandle,
    ShardHandle,
    ShardSpec,
    ThreadShardHandle,
    run_shard,
)

__all__ = [
    "KEY_PREFIX_LEN",
    "ClusterHandle",
    "ClusterSupervisor",
    "ProcessShardHandle",
    "RouterApp",
    "ShardHandle",
    "ShardRing",
    "ShardRouterServer",
    "ShardSpec",
    "ThreadShardHandle",
    "make_router",
    "routing_info",
    "run_shard",
    "start_cluster",
]
