"""Consistent-hash ring over instance-fingerprint prefixes.

The sharded cluster partitions the result cache by content: every request is
routed by its :meth:`Instance.fingerprint()
<repro.model.instance.Instance.fingerprint>` so all replays of the same
instance land on the same shard — the shard's LRU+TTL cache slice is
*disjoint* from every other shard's and no cross-shard invalidation is ever
needed.

:class:`ShardRing` is classic consistent hashing with virtual nodes: each
shard id owns ``vnodes`` pseudo-random points on a 64-bit ring (BLAKE2b of
``"{node}#{replica}"`` — a keyed, process-stable hash; Python's builtin
``hash`` is salted per process and would scatter assignments across the
router and its tests).  A key is mapped to the first point clockwise from
its own hash.  Properties the cluster relies on (pinned by property tests):

* **stability** — assignment is a pure function of the *set* of nodes
  (insertion order is irrelevant);
* **balance** — with 64 virtual nodes per shard the largest share stays
  within ~2x of the ideal ``1/N``;
* **minimal movement** — adding one shard re-homes only about ``1/(N+1)``
  of the keys, all of them onto the new shard (the survivors never move
  between old shards), so a rolling resize mostly preserves the hot set.

Keys are hashed by their first :data:`KEY_PREFIX_LEN` characters: the
fingerprint is itself a uniform content hash, so a short prefix carries all
the entropy the ring needs while keeping the router's per-request hashing
cost flat no matter how long the key is.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter
from hashlib import blake2b
from typing import Hashable, Iterable, Iterator

from ...exceptions import ClusterError

__all__ = ["KEY_PREFIX_LEN", "ShardRing"]

#: How many leading characters of a routing key feed the ring hash.
KEY_PREFIX_LEN = 16


def _point(token: str) -> int:
    """Stable 64-bit ring coordinate of a token."""
    return int.from_bytes(blake2b(token.encode(), digest_size=8).digest(), "big")


class ShardRing:
    """Consistent hashing with virtual nodes over string keys.

    Parameters
    ----------
    nodes:
        Initial node identifiers (any hashable; the cluster uses shard ids).
    vnodes:
        Virtual nodes (ring points) per node; more points = smoother balance
        at a small memory/build cost.  64 keeps the maximum share within
        about 2x of ideal.
    """

    def __init__(self, nodes: Iterable[Hashable] = (), *, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._nodes: set[Hashable] = set()
        self._points: list[int] = []
        self._owners: list[Hashable] = []
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------ #
    # node management
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(sorted(self._nodes, key=repr))

    def __contains__(self, node: Hashable) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> frozenset:
        return frozenset(self._nodes)

    def add_node(self, node: Hashable) -> None:
        """Add ``node`` (and its virtual points) to the ring."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        self._rebuild()

    def remove_node(self, node: Hashable) -> None:
        """Remove ``node``; its key range folds into the clockwise survivors."""
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        self._nodes.remove(node)
        self._rebuild()

    def _rebuild(self) -> None:
        # Rebuilt from the node *set* on every change: the ring is a pure
        # function of membership, which is what makes assignment stable
        # across routers, respawns and test permutations.
        entries: list[tuple[int, Hashable]] = []
        for node in self._nodes:
            for replica in range(self.vnodes):
                entries.append((_point(f"{node!r}#{replica}"), node))
        # Ties (astronomically unlikely 64-bit collisions) break on repr so
        # two builds of the same membership can never disagree.
        entries.sort(key=lambda e: (e[0], repr(e[1])))
        self._points = [point for point, _ in entries]
        self._owners = [node for _, node in entries]

    # ------------------------------------------------------------------ #
    # assignment
    # ------------------------------------------------------------------ #
    def assign(self, key: str) -> Hashable:
        """Owning node of ``key`` (hashed by its :data:`KEY_PREFIX_LEN` prefix)."""
        if not self._points:
            raise ClusterError("cannot assign a key on an empty ring")
        index = bisect_right(self._points, _point(key[:KEY_PREFIX_LEN]))
        if index == len(self._points):  # wrap past the highest point
            index = 0
        return self._owners[index]

    def spread(self, keys: Iterable[str]) -> Counter:
        """Assignment histogram of ``keys`` (diagnostics / balance tests)."""
        counts: Counter = Counter()
        for key in keys:
            counts[self.assign(key)] += 1
        return counts
