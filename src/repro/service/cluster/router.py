"""Shard router: the HTTP frontend of the sharded scheduling cluster.

``POST /schedule`` requests are *routed by content*: the router fingerprints
the raw payload with the same
:func:`~repro.service.core.payload_fingerprint` /
:func:`~repro.model.instance.profile_fingerprint` pair the single-process
daemon uses, asks the :class:`~repro.service.cluster.ring.ShardRing` for the
owning shard, and forwards the *unmodified* body bytes there over a pooled
loopback HTTP connection.  Because the body is relayed verbatim and every
shard runs the exact same request pipeline as the standalone daemon, a
cluster response is byte-identical to a single-process response for the same
request.

The router additionally precomputes the shard's full cache key
(fingerprint, algorithm, canonical params JSON, validate flag) and sends it
as ``X-Repro-*`` headers: the shard (created with ``trust_fast_headers``)
serves cache hits straight from its handler thread without re-parsing the
body — hit work splits between the router process (parse + fingerprint) and
the owning shard (lookup + serialisation), which is what lets hit throughput
scale with cores.

Payloads the fast fingerprint cannot handle (generator specs, malformed
bodies) are routed by a hash of their canonical JSON — deterministic, so
replays still land on the same shard and error responses come from the same
shard-side code path as the daemon's.

Other routes: ``GET /healthz`` (fleet liveness + the SLO-driven health
state machine; a fully-dead fleet or ``failing`` state answers 503),
``GET /metrics`` (aggregated per-shard + router view, including
hit-distribution imbalance, exact cluster-wide SLO burn rates and the
``scale_hint`` autoscaler contract), ``GET /metrics/history`` (per-shard
time series + merged cluster windows), ``POST /purge`` (fan the eviction
message out to every shard) and the gated ``POST /shutdown``.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from hashlib import blake2b
from http.server import ThreadingHTTPServer
from urllib.parse import urlsplit

from ...exceptions import ClusterError
from ...lint.registry import build_info as lint_build_info
from ...obs.health import evaluate_health
from ...obs.histogram import LatencyHistogram
from ...obs.names import SPAN_FORWARD, SPAN_ROUTE
from ...obs.prometheus import render_cluster_metrics
from ...obs.slo import SLO, evaluate_slo
from ...obs.timeseries import WindowDelta
from ...obs.tracing import Trace, TraceStore, Tracer
from ..cache import MISS, LRUTTLCache
from ..core import canonical_json, payload_fingerprint
from ..server import JsonRequestHandler
from .supervisor import ClusterSupervisor
from .worker import ShardSpec

__all__ = [
    "ClusterHandle",
    "ShardRouterServer",
    "routing_info",
    "start_cluster",
]


def routing_info(raw: bytes) -> tuple[str, dict[str, str]]:
    """Routing key and fast-path headers for a raw ``/schedule`` body.

    Returns ``(key, headers)`` where ``key`` feeds the consistent-hash ring
    and ``headers`` is either the full precomputed shard cache key
    (``X-Repro-*``) or empty when the fast path does not apply.  Never
    raises: undecodable bodies are routed by a content hash and rejected by
    the owning shard with exactly the daemon's error response.
    """
    try:
        payload = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
        return "raw:" + blake2b(raw, digest_size=8).hexdigest(), {}
    if isinstance(payload, dict):
        instance = payload.get("instance")
        if isinstance(instance, dict):
            fingerprint = payload_fingerprint(instance)
            if fingerprint is not None:
                algorithm = payload.get("algorithm", "mrt")
                params = payload.get("params", {})
                if isinstance(algorithm, str) and isinstance(params, dict):
                    try:
                        params_json = canonical_json(params)
                    except (TypeError, ValueError):  # pragma: no cover
                        return fingerprint, {}
                    return fingerprint, {
                        "X-Repro-Fingerprint": fingerprint,
                        "X-Repro-Algorithm": algorithm,
                        "X-Repro-Params": params_json,
                        "X-Repro-Validate": (
                            "1" if payload.get("validate", False) else "0"
                        ),
                    }
                # Ill-typed algorithm/params: still route by content so the
                # shard's request parser produces the canonical 400.
                return fingerprint, {}
    try:
        canon = canonical_json(payload)
    except (TypeError, ValueError):
        canon = raw.decode("utf-8", "replace")
    return "body:" + blake2b(canon.encode(), digest_size=8).hexdigest(), {}


class _ShardConnectionPool:
    """Tiny keep-alive pool of router→shard HTTP connections.

    Connections are keyed by the shard's *current* URL: after a respawn the
    shard comes back on a new port and the stale connections simply fail to
    match and are dropped.
    """

    def __init__(self, timeout: float, max_idle_per_shard: int = 8) -> None:
        self.timeout = timeout
        self.max_idle = max_idle_per_shard
        self._idle: dict[int, deque[tuple[str, http.client.HTTPConnection]]] = {}
        self._lock = threading.Lock()

    def acquire(self, shard_id: int, url: str) -> http.client.HTTPConnection:
        with self._lock:
            idle = self._idle.get(shard_id)
            while idle:
                pooled_url, conn = idle.popleft()
                if pooled_url == url:
                    return conn
                conn.close()  # stale: the shard moved (respawn)
        host_port = url.split("//", 1)[1]
        conn = http.client.HTTPConnection(host_port, timeout=self.timeout)
        # Connect eagerly so Nagle can be disabled before the first request:
        # a reused keep-alive connection writes headers and body separately,
        # and Nagle + the peer's delayed ACK would stall every forward by
        # ~40ms otherwise.
        conn.connect()
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def release(self, shard_id: int, url: str, conn: http.client.HTTPConnection) -> None:
        with self._lock:
            idle = self._idle.setdefault(shard_id, deque())
            if len(idle) < self.max_idle:
                idle.append((url, conn))
                return
        conn.close()

    def close_all(self) -> None:
        with self._lock:
            for idle in self._idle.values():
                for _, conn in idle:
                    conn.close()
            self._idle.clear()


class _RouterHandler(JsonRequestHandler):
    server: "ShardRouterServer"

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (stdlib API)
        url = urlsplit(self.path)
        if url.path == "/healthz":
            self._handle_healthz()
        elif url.path == "/metrics":
            metrics = self.server.aggregate_metrics()
            if self._query_param(url.query, "format") == "prometheus":
                self._send_prometheus(render_cluster_metrics(metrics))
            else:
                self._send_json(200, metrics)
        elif url.path == "/metrics/history":
            self._handle_history(url.query)
        elif url.path.startswith("/trace/"):
            self._handle_trace(url.path[len("/trace/") :])
        elif url.path == "/traces":
            self._handle_traces(url.query)
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _handle_healthz(self) -> None:
        """Fleet health: liveness + the SLO-driven cluster state machine.

        Answers 503 for a fully-dead fleet and for the ``failing`` state so
        load balancers can key off the status code; the JSON body keeps the
        pre-existing keys (``status``/``shards``/``alive``/``backend``/
        ``uptime_seconds``) and adds ``reasons`` + ``scale_hint``.  Uses the
        monitor-cached health document when fresh; recomputes when the
        cache is stale or liveness has visibly changed under it.
        """
        supervisor = self.server.supervisor
        alive = supervisor.alive_count()
        health = supervisor.last_health(
            max_age=supervisor.health_interval * 2.0
        )
        if health is None or alive < supervisor.num_shards:
            health = self.server.cluster_health()
        failing = alive == 0 or health["state"] == "failing"
        self._send_json(
            503 if failing else 200,
            {
                "status": health["state"],
                "shards": supervisor.num_shards,
                "alive": alive,
                "backend": supervisor.backend,
                "uptime_seconds": supervisor.uptime_seconds,
                "reasons": health["reasons"],
                "scale_hint": health["scale_hint"],
            },
        )

    def _handle_history(self, query: str) -> None:
        """Fleet time series: per-shard history docs + exact cluster SLO.

        One fan-out gathers every shard's ``/metrics/history``; the
        cluster-level SLO evaluation merges the window deltas those
        documents already carry (no second fan-out).
        """
        try:
            window = self._query_param(query, "window")
            step = self._query_param(query, "step")
            window_s = float(window) if window is not None else None
            step_s = float(step) if step is not None else None
            if window_s is not None and window_s <= 0:
                raise ValueError("window must be positive")
            if step_s is not None and step_s <= 0:
                raise ValueError("step must be positive")
        except ValueError as exc:
            self._send_json(400, {"error": f"bad history query: {exc}"})
            return
        server = self.server
        supervisor = server.supervisor
        documents = supervisor.shard_histories(window_s, step_s)
        slo_status = server.cluster_slo_status(documents)
        health = evaluate_health(
            slo_status,
            alive=supervisor.alive_count(),
            shards=supervisor.num_shards,
        )
        self._send_json(
            200,
            {
                "component": "router",
                "window_s": window_s,
                "step_s": step_s,
                "shards": {
                    str(sid): doc for sid, doc in sorted(documents.items())
                },
                "slo": slo_status,
                "health": health,
            },
        )

    def _handle_trace(self, trace_id: str) -> None:
        """Stitch one trace across the fleet: router + every shard component.

        The router's component is the authoritative head (it observed the
        client-facing request); shard components are gathered with a
        best-effort fan-out keyed by the same propagated id, so one
        ``X-Repro-Trace-Id`` yields a single document spanning the forward
        hop *and* the shard-side pipeline.
        """
        trace = self.server.traces.get(trace_id)
        components: list[dict] = []
        if trace is not None:
            components.append(trace.as_dict())
        components.extend(
            self.server.supervisor.gather_trace_components(trace_id)
        )
        if not components:
            self._send_json(404, {"error": f"unknown trace {trace_id!r}"})
            return
        self._send_json(200, {"trace_id": trace_id, "components": components})

    def _handle_traces(self, query: str) -> None:
        """Router-side trace summaries (shard spans stitch in via /trace/<id>)."""
        store = self.server.traces
        slow_param = self._query_param(query, "slow_ms")
        try:
            slow_ms = float(slow_param) if slow_param is not None else None
        except ValueError:
            self._send_json(400, {"error": f"bad slow_ms {slow_param!r}"})
            return
        self._send_json(
            200,
            {
                "traces": store.summaries(slow_ms=slow_ms),
                "slow_log": store.slow_log(),
                "slow_total": store.slow_total,
                "slow_ms": store.slow_ms,
            },
        )

    def do_POST(self) -> None:  # noqa: N802 (stdlib API)
        if self.path == "/schedule":
            self._handle_schedule()
        elif self.path == "/purge":
            self._handle_purge()
        elif self.path == "/shutdown":
            self._handle_shutdown()
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _handle_schedule(self) -> None:
        # Mirrors the daemon's oversized-body rejection (without draining).
        length = self._checked_content_length()
        if length is None:
            return
        raw = self.rfile.read(length) if length > 0 else b""
        # Route cache: routing_info is a pure function of the body bytes, and
        # the whole point of the fingerprint cache is that bodies repeat —
        # replays skip the JSON parse + fingerprint entirely (a ~100-byte
        # digest lookup instead), which keeps the router off the critical
        # path of warm-hit throughput.
        server = self.server
        trace: Trace | None = None
        if server.tracing:
            # Adopt a client-supplied id or mint one; either way the same id
            # travels to the owning shard so /trace/<id> stitches both sides.
            trace = server.tracer.start(self.headers.get("X-Repro-Trace-Id"))
        route_start = time.perf_counter()
        digest = blake2b(raw, digest_size=16).digest()
        cached = self.server.route_cache.get(digest)
        if cached is not MISS:
            key, fast_headers = cached
        else:
            key, fast_headers = routing_info(raw)
            self.server.route_cache.put(digest, (key, fast_headers))
        if trace is not None:
            trace.record_span(
                SPAN_ROUTE,
                route_start,
                time.perf_counter(),
                route_cached=cached is not MISS,
            )
        forward_headers = dict(fast_headers)
        if trace is not None:
            forward_headers["X-Repro-Trace-Id"] = trace.trace_id
        start = time.perf_counter()
        attempts = self.server.forward_retries + 1
        for attempt in range(attempts):
            try:
                # Re-resolve the shard URL on every attempt: a crashed shard
                # comes back on a fresh port once the monitor respawns it.
                shard_id, url = self.server.supervisor.route(key)
            except ClusterError as exc:
                self.server.record_route_error(None)
                self._send_routed(503, {"error": str(exc)}, trace)
                return
            forward_start = time.perf_counter()
            try:
                status, body = self._forward_once(
                    shard_id, url, raw, forward_headers
                )
            except (OSError, http.client.HTTPException):
                if trace is not None:
                    trace.record_span(
                        SPAN_FORWARD,
                        forward_start,
                        time.perf_counter(),
                        shard=shard_id,
                        attempt=attempt,
                        error=True,
                    )
                self.server.record_route_error(shard_id)
                if attempt + 1 >= attempts:
                    self._send_routed(
                        503,
                        {
                            "error": f"shard {shard_id} unavailable after "
                            f"{attempts} attempts; retry later"
                        },
                        trace,
                    )
                    return
                time.sleep(self.server.retry_wait)
                continue
            if trace is not None:
                trace.record_span(
                    SPAN_FORWARD,
                    forward_start,
                    time.perf_counter(),
                    shard=shard_id,
                    attempt=attempt,
                    status=status,
                )
            elapsed_ms = (time.perf_counter() - start) * 1e3
            self.server.record_forward(shard_id, elapsed_ms)
            self._send_routed(status, body, trace)
            return

    def _send_routed(
        self, status: int, body: bytes | dict, trace: Trace | None
    ) -> None:
        """Land the router trace, then relay ``body`` with the trace header.

        The trace is stored for *every* outcome — a 503 after exhausted
        retries is exactly the request you want a span-per-attempt record
        of — and the body bytes are never touched, preserving byte-identity
        with the single-process daemon.
        """
        if isinstance(body, dict):
            body = json.dumps(body).encode()
        extra_headers = None
        if trace is not None:
            trace.finish()
            self.server.traces.add(trace)
            if trace.duration_ms >= self.server.traces.slow_ms:
                self.log_message(
                    "slow request trace=%s %.1fms",
                    trace.trace_id,
                    trace.duration_ms,
                )
            extra_headers = {"X-Repro-Trace-Id": trace.trace_id}
        self._send_body(status, body, extra_headers=extra_headers)

    def _forward_once(
        self, shard_id: int, url: str, raw: bytes, fast_headers: dict[str, str]
    ) -> tuple[int, bytes]:
        pool = self.server.connections
        conn = pool.acquire(shard_id, url)
        reusable = False
        try:
            conn.request(
                "POST",
                "/schedule",
                body=raw,
                headers={
                    "Content-Type": "application/json",
                    "Accept": "application/json",
                    **fast_headers,
                },
            )
            response = conn.getresponse()
            body = response.read()
            reusable = not response.will_close
            return response.status, body
        finally:
            if reusable:
                pool.release(shard_id, url, conn)
            else:
                conn.close()

    def _handle_purge(self) -> None:
        payload = self._read_purge_payload()
        if payload is None:
            return
        results = self.server.supervisor.purge_all(all=bool(payload.get("all")))
        reachable = [r for r in results.values() if r is not None]
        self._send_json(
            200,
            {
                "expired_purged": sum(r["expired_purged"] for r in reachable),
                "cleared": sum(r["cleared"] for r in reachable),
                "shards": {str(sid): r for sid, r in results.items()},
            },
        )

    def _handle_shutdown(self) -> None:
        if not self.server.allow_shutdown:
            self._send_json(403, {"error": "shutdown endpoint disabled"})
            return
        self._send_json(200, {"status": "shutting down"})
        threading.Thread(target=self.server.shutdown, daemon=True).start()


class ShardRouterServer(ThreadingHTTPServer):
    """Threading HTTP router in front of one :class:`ClusterSupervisor`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        supervisor: ClusterSupervisor,
        *,
        allow_shutdown: bool = False,
        verbose: bool = False,
        forward_timeout: float = 300.0,
        forward_retries: int = 3,
        retry_wait: float = 0.25,
        tracing: bool = True,
        trace_capacity: int = 256,
        slow_ms: float = 500.0,
        trace_seed: int = 0,
        slo: SLO | None = None,
    ) -> None:
        super().__init__(address, _RouterHandler)
        self.supervisor = supervisor
        self.slo = slo if slo is not None else SLO()
        # The supervisor's monitor loop drives the cluster health probe so
        # the fleet reacts to burn rates without waiting for a scrape.
        supervisor.health_probe = self.cluster_health
        self.allow_shutdown = allow_shutdown
        self.verbose = verbose
        self.forward_retries = int(forward_retries)
        self.retry_wait = float(retry_wait)
        self.connections = _ShardConnectionPool(forward_timeout)
        # body-digest → (routing key, fast headers); see _handle_schedule.
        self.route_cache = LRUTTLCache(4096)
        self.tracing = bool(tracing)
        self.tracer = Tracer("router", seed=trace_seed)
        self.traces = TraceStore(trace_capacity, slow_ms=slow_ms)
        self._stats_lock = threading.Lock()
        self._requests_total = 0
        self._routing_errors = 0
        self._per_shard: dict[int, dict[str, int]] = {}
        # Router-observed forward latency: bounded log-bucket histogram
        # (the old deque grew a sample per request and aggregated wrongly).
        self.latency = LatencyHistogram()
        self._serve_started = False

    # ------------------------------------------------------------------ #
    # bookkeeping (called from handler threads)
    # ------------------------------------------------------------------ #
    def record_forward(self, shard_id: int, elapsed_ms: float) -> None:
        with self._stats_lock:
            self._requests_total += 1
            entry = self._per_shard.setdefault(
                shard_id, {"requests": 0, "errors": 0}
            )
            entry["requests"] += 1
            self.latency.observe(elapsed_ms)

    def record_route_error(self, shard_id: int | None) -> None:
        with self._stats_lock:
            self._routing_errors += 1
            if shard_id is not None:
                entry = self._per_shard.setdefault(
                    shard_id, {"requests": 0, "errors": 0}
                )
                entry["errors"] += 1

    # ------------------------------------------------------------------ #
    # SLO / health
    # ------------------------------------------------------------------ #
    def cluster_slo_status(self, snapshots: dict[int, dict | None]) -> dict:
        """Exact fleet-wide SLO evaluation from per-shard documents.

        ``snapshots`` maps shard id to any document carrying an ``slo``
        block (a ``/metrics`` snapshot or a ``/metrics/history`` doc).
        Each window's shard deltas merge by summing counters and histogram
        buckets — per-shard monotonic clocks never compare, the
        interval-relative deltas do — so the cluster burn rates equal what
        a single process observing all requests would compute.
        """
        fast_parts: list[WindowDelta] = []
        slow_parts: list[WindowDelta] = []
        for snapshot in snapshots.values():
            if not isinstance(snapshot, dict):
                continue
            windows = (snapshot.get("slo") or {}).get("windows") or {}
            for parts, name in ((fast_parts, "fast"), (slow_parts, "slow")):
                delta = (windows.get(name) or {}).get("delta")
                if delta:
                    parts.append(WindowDelta.from_dict(delta))
        return evaluate_slo(
            self.slo,
            WindowDelta.merged(fast_parts),
            WindowDelta.merged(slow_parts),
        )

    def cluster_health(
        self, snapshots: dict[int, dict | None] | None = None
    ) -> dict:
        """Evaluate (and cache on the supervisor) the fleet health document.

        Installed as the supervisor's :attr:`health_probe`; also invoked by
        ``/healthz`` on a stale cache and by :meth:`aggregate_metrics`
        (which passes the snapshots it already fanned out for).
        """
        supervisor = self.supervisor
        if snapshots is None:
            snapshots = supervisor.shard_metrics()
        health = evaluate_health(
            self.cluster_slo_status(snapshots),
            alive=supervisor.alive_count(),
            shards=supervisor.num_shards,
        )
        supervisor.record_health(health)
        return health

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def aggregate_metrics(self) -> dict:
        """One ``/metrics`` view over the whole cluster.

        Shape: ``cluster`` (summed counters + rolled-up cache stats + the
        *exact* fleet-wide latency: shard histograms merged bucket-by-bucket,
        so ``p50_ms``/``p99_ms`` are true cluster percentiles instead of the
        old router-only view), ``router`` (forward counts per shard, routing
        errors, router-observed forward latency, trace-store gauges),
        ``shards`` (full per-shard snapshots — per-shard percentiles live
        here) and ``imbalance`` (max-over-ideal of the per-shard request
        counts — 1.0 is a perfectly even spread).
        """
        supervisor = self.supervisor
        snapshots = supervisor.shard_metrics()
        urls = supervisor.shard_urls()
        counter_keys = (
            "requests_total",
            "rejections",
            "batches",
            "deduped_in_batch",
            "fast_hits",
            "queue_depth",
        )
        totals = dict.fromkeys(counter_keys, 0)
        cache_keys = (
            "hits",
            "misses",
            "evictions_lru",
            "evictions_ttl",
            "expired_purged",
            "size",
        )
        cache_totals = dict.fromkeys(cache_keys, 0)
        shards_view: dict[str, dict] = {}
        fleet_latency = LatencyHistogram()
        for shard_id, snapshot in sorted(snapshots.items()):
            shards_view[str(shard_id)] = {
                "url": urls.get(shard_id),
                "alive": snapshot is not None,
                "metrics": snapshot,
            }
            if snapshot is None:
                continue
            for key in counter_keys:
                totals[key] += int(snapshot.get(key, 0))
            shard_cache = snapshot.get("cache", {})
            for key in cache_keys:
                cache_totals[key] += int(shard_cache.get(key, 0))
            # Exact merge: every shard buckets into the same pinned bounds,
            # so summing counters yields the true fleet-wide distribution.
            shard_histogram = snapshot.get("latency", {}).get("histogram")
            if shard_histogram is not None:
                fleet_latency.merge(shard_histogram)
        lookups = cache_totals["hits"] + cache_totals["misses"]
        cache_totals["hit_rate"] = cache_totals["hits"] / lookups if lookups else 0.0
        slo_status = self.cluster_slo_status(snapshots)
        health = evaluate_health(
            slo_status,
            alive=supervisor.alive_count(),
            shards=supervisor.num_shards,
        )
        supervisor.record_health(health)
        with self._stats_lock:
            router = {
                "requests_total": self._requests_total,
                "routing_errors": self._routing_errors,
                "route_cache": {
                    **self.route_cache.stats.as_dict(),
                    "size": len(self.route_cache),
                },
                "per_shard": {
                    str(sid): dict(entry)
                    for sid, entry in sorted(self._per_shard.items())
                },
                "latency": self.latency.summary(),
                "traces": {
                    "stored": len(self.traces),
                    "capacity": self.traces.capacity,
                    "slow_total": self.traces.slow_total,
                    "slow_ms": self.traces.slow_ms,
                    "enabled": self.tracing,
                },
            }
        latency = fleet_latency.summary()
        forwarded = [e["requests"] for e in router["per_shard"].values()]
        total_forwarded = sum(forwarded)
        ideal = total_forwarded / supervisor.num_shards if total_forwarded else 0.0
        imbalance = {
            "requests_total": total_forwarded,
            "ideal_per_shard": ideal,
            "max_per_shard": max(forwarded) if forwarded else 0,
            "max_over_ideal": (max(forwarded) / ideal) if ideal else None,
        }
        return {
            "cluster": {
                "shards": supervisor.num_shards,
                "alive": supervisor.alive_count(),
                "backend": supervisor.backend,
                "respawns": supervisor.respawns,
                "uptime_seconds": supervisor.uptime_seconds,
                **totals,
                "cache": cache_totals,
                "latency": latency,
            },
            "router": router,
            "shards": shards_view,
            "imbalance": imbalance,
            "slo": slo_status,
            "health": health,
            # The autoscaler contract, surfaced at the top level so a
            # consumer needs no knowledge of the health-block layout.
            "scale_hint": health["scale_hint"],
            # Router-side invariant advertisement, mirroring each shard's
            # own ``build`` block inside its snapshot.
            "build": lint_build_info(),
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def serve_forever(self, *args, **kwargs) -> None:
        self._serve_started = True
        super().serve_forever(*args, **kwargs)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop routing and release the listening socket.

        Does *not* stop the shard fleet — that is the supervisor's job (see
        :meth:`ClusterHandle.close` for the combined teardown).
        """
        if self._serve_started:
            self.shutdown()
        # Uninstall the health probe: the supervisor may outlive the router
        # and must not keep fanning out on behalf of a closed frontend.
        if self.supervisor.health_probe == self.cluster_health:
            self.supervisor.health_probe = None
        self.server_close()
        self.connections.close_all()


@dataclass
class ClusterHandle:
    """A running cluster: router server, its serve thread and the fleet."""

    supervisor: ClusterSupervisor
    server: ShardRouterServer
    thread: threading.Thread

    @property
    def url(self) -> str:
        return self.server.url

    def close(self) -> None:
        self.server.close()
        self.supervisor.close()

    def __enter__(self) -> "ClusterHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_cluster(
    shards: int = 2,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    spec: ShardSpec | None = None,
    backend: str = "process",
    vnodes: int = 64,
    respawn: bool = True,
    allow_shutdown: bool = False,
    verbose: bool = False,
    forward_timeout: float = 300.0,
    slo: SLO | None = None,
) -> ClusterHandle:
    """Boot a sharded cluster and serve its router on a background thread.

    The cluster equivalent of
    :func:`~repro.service.server.start_background_server`; used by the
    self-hosted ``loadtest --shards``, the cluster benchmark and the tests.
    Stop it with :meth:`ClusterHandle.close`.
    """
    supervisor = ClusterSupervisor(
        shards, spec=spec, backend=backend, vnodes=vnodes, respawn=respawn
    ).start()
    try:
        server = ShardRouterServer(
            (host, port),
            supervisor,
            allow_shutdown=allow_shutdown,
            verbose=verbose,
            forward_timeout=forward_timeout,
            slo=slo,
        )
    except Exception:
        supervisor.close()
        raise
    thread = threading.Thread(
        target=server.serve_forever, name="repro-cluster-router", daemon=True
    )
    thread.start()
    return ClusterHandle(supervisor=supervisor, server=server, thread=thread)
