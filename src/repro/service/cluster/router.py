"""Shard router: the HTTP frontend of the sharded scheduling cluster.

``POST /schedule`` requests are *routed by content*: the router fingerprints
the raw payload with the same
:func:`~repro.service.core.payload_fingerprint` /
:func:`~repro.model.instance.profile_fingerprint` pair the single-process
daemon uses, asks the :class:`~repro.service.cluster.ring.ShardRing` for the
owning shard, and forwards the *unmodified* body bytes there over a pooled
loopback HTTP connection.  Because the body is relayed verbatim and every
shard runs the exact same request pipeline as the standalone daemon, a
cluster response is byte-identical to a single-process response for the same
request.

The router additionally precomputes the shard's full cache key
(fingerprint, algorithm, canonical params JSON, validate flag) and sends it
as ``X-Repro-*`` headers: the shard (created with ``trust_fast_headers``)
serves cache hits straight from the trusted headers without re-parsing the
body — hit work splits between the router process (parse + fingerprint) and
the owning shard (lookup + serialisation), which is what lets hit throughput
scale with cores.

Payloads the fast fingerprint cannot handle (generator specs, malformed
bodies) are routed by a hash of their canonical JSON — deterministic, so
replays still land on the same shard and error responses come from the same
shard-side code path as the daemon's.

Like the daemon (:mod:`repro.service.server`), the router is an
app/transport split: :class:`RouterApp` holds every route and all routing
state, and either transport of :mod:`repro.service.http` binds it to a
socket — ``start_cluster(..., transport="asyncio")`` serves the same
byte-identical responses from one event loop.

``POST /replay`` routes by ``(trace-prefix, kernel)`` — the fingerprint of
the trace's earliest-released tasks plus the kernel name (see
:func:`replay_routing_key`) — so re-runs and overlapping traces land on the
shard whose per-epoch plan cache is already warm, and relays the shard's
chunked NDJSON stream frame-for-frame as it is produced.

Other routes: ``GET /healthz`` (fleet liveness + the SLO-driven health
state machine; a fully-dead fleet or ``failing`` state answers 503),
``GET /metrics`` (aggregated per-shard + router view, including
hit-distribution imbalance, exact cluster-wide SLO burn rates and the
``scale_hint`` autoscaler contract), ``GET /metrics/history`` (per-shard
time series + merged cluster windows), ``POST /purge`` (fan the eviction
message out to every shard) and the gated ``POST /shutdown``.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass
from hashlib import blake2b

from ...exceptions import ClusterError
from ...lint.registry import build_info as lint_build_info
from ...obs.health import evaluate_health
from ...obs.histogram import LatencyHistogram
from ...obs.names import SPAN_FORWARD, SPAN_ROUTE
from ...obs.prometheus import render_cluster_metrics
from ...obs.slo import SLO, evaluate_slo
from ...obs.timeseries import WindowDelta
from ...obs.tracing import Trace, TraceStore, Tracer
from ..cache import MISS, LRUTTLCache
from ..core import canonical_json, payload_fingerprint
from ..http import ConnectionPool, Request, Response, Route
from ..http.aio import AsyncioTransport
from ..http.app import App
from ..http.threaded import ThreadedTransport
from .supervisor import ClusterSupervisor
from .worker import ShardSpec

__all__ = [
    "ClusterHandle",
    "RouterApp",
    "ShardRouterServer",
    "make_router",
    "replay_routing_key",
    "routing_info",
    "start_cluster",
]


def routing_info(raw: bytes) -> tuple[str, dict[str, str]]:
    """Routing key and fast-path headers for a raw ``/schedule`` body.

    Returns ``(key, headers)`` where ``key`` feeds the consistent-hash ring
    and ``headers`` is either the full precomputed shard cache key
    (``X-Repro-*``) or empty when the fast path does not apply.  Never
    raises: undecodable bodies are routed by a content hash and rejected by
    the owning shard with exactly the daemon's error response.
    """
    try:
        payload = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
        return "raw:" + blake2b(raw, digest_size=8).hexdigest(), {}
    if isinstance(payload, dict):
        instance = payload.get("instance")
        if isinstance(instance, dict):
            fingerprint = payload_fingerprint(instance)
            if fingerprint is not None:
                algorithm = payload.get("algorithm", "mrt")
                params = payload.get("params", {})
                if isinstance(algorithm, str) and isinstance(params, dict):
                    try:
                        params_json = canonical_json(params)
                    except (TypeError, ValueError):  # pragma: no cover
                        return fingerprint, {}
                    return fingerprint, {
                        "X-Repro-Fingerprint": fingerprint,
                        "X-Repro-Algorithm": algorithm,
                        "X-Repro-Params": params_json,
                        "X-Repro-Validate": (
                            "1" if payload.get("validate", False) else "0"
                        ),
                    }
                # Ill-typed algorithm/params: still route by content so the
                # shard's request parser produces the canonical 400.
                return fingerprint, {}
    try:
        canon = canonical_json(payload)
    except (TypeError, ValueError):
        canon = raw.decode("utf-8", "replace")
    return "body:" + blake2b(canon.encode(), digest_size=8).hexdigest(), {}


#: How many of the earliest-released tasks form the replay routing prefix.
_REPLAY_PREFIX_TASKS = 8


def replay_routing_key(raw: bytes) -> str:
    """``(trace-prefix, kernel)`` routing key for a raw ``/replay`` body.

    Replays are routed by the fingerprint of the trace's *prefix* — the
    first :data:`_REPLAY_PREFIX_TASKS` tasks in stable release order — plus
    the kernel name, so re-runs, extended traces and overlapping traces all
    land on the shard whose plan cache is already warm with their early
    epochs.  (Routing by the full-trace fingerprint would scatter a trace
    and its one-task extension to different shards; routing by prefix keeps
    them together, and later epochs of a longer trace warm the same shard
    further.)  Generator specs route by their canonical spec hash — the
    same ``(spec, kernel)`` always replays on the same shard.  Never
    raises: undecodable bodies route by content hash and are rejected by
    the owning shard with exactly the daemon's error bytes.
    """
    try:
        payload = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
        return "replay-raw:" + blake2b(raw, digest_size=8).hexdigest()
    if isinstance(payload, dict):
        kernel = payload.get("kernel", "barrier")
        if not isinstance(kernel, str):
            kernel = "?"
        trace = payload.get("trace")
        if isinstance(trace, dict) and isinstance(trace.get("tasks"), list):
            tasks = trace["tasks"]

            def release_of(task) -> float:
                value = task.get("release", 0.0) if isinstance(task, dict) else 0.0
                return value if isinstance(value, (int, float)) else 0.0

            prefix = sorted(tasks, key=release_of)[:_REPLAY_PREFIX_TASKS]
            fingerprint = payload_fingerprint(
                {"num_procs": trace.get("num_procs"), "tasks": prefix}
            )
            if fingerprint is not None:
                return f"replay:{kernel}:{fingerprint}"
        generate = payload.get("generate")
        if isinstance(generate, dict):
            try:
                canon = canonical_json(generate)
            except (TypeError, ValueError):  # pragma: no cover - json-decoded
                canon = repr(generate)
            digest = blake2b(canon.encode(), digest_size=8).hexdigest()
            return f"replay:{kernel}:gen:{digest}"
    try:
        canon = canonical_json(payload)
    except (TypeError, ValueError):
        canon = raw.decode("utf-8", "replace")
    return "replay-body:" + blake2b(canon.encode(), digest_size=8).hexdigest()


class RouterApp(App):
    """The router application: content routing + fleet aggregation.

    Pure request→response logic over one :class:`ClusterSupervisor`;
    sockets live in whichever transport binds it.  Forward failures are
    infrastructure outcomes, not handler exceptions — they answer 503 here
    (the shard-unavailable contract), while malformed *client* input is
    still rejected by the owning shard's own pipeline so the bytes match
    the daemon's.
    """

    def __init__(
        self,
        supervisor: ClusterSupervisor,
        *,
        allow_shutdown: bool = False,
        verbose: bool = False,
        forward_timeout: float = 300.0,
        forward_retries: int = 3,
        retry_wait: float = 0.25,
        tracing: bool = True,
        trace_capacity: int = 256,
        slow_ms: float = 500.0,
        trace_seed: int = 0,
        slo: SLO | None = None,
    ) -> None:
        super().__init__(verbose=verbose)
        self.supervisor = supervisor
        self.slo = slo if slo is not None else SLO()
        # The supervisor's monitor loop drives the cluster health probe so
        # the fleet reacts to burn rates without waiting for a scrape.
        supervisor.health_probe = self.cluster_health
        self.allow_shutdown = allow_shutdown
        self.forward_retries = int(forward_retries)
        self.retry_wait = float(retry_wait)
        self.connections = ConnectionPool(forward_timeout)
        # body-digest → (routing key, fast headers); see _handle_schedule.
        self.route_cache = LRUTTLCache(4096)
        self.tracing = bool(tracing)
        self.tracer = Tracer("router", seed=trace_seed)
        self.traces = TraceStore(trace_capacity, slow_ms=slow_ms)
        self._stats_lock = threading.Lock()
        self._requests_total = 0
        self._routing_errors = 0
        self._per_shard: dict[int, dict[str, int]] = {}
        # Router-observed forward latency: bounded log-bucket histogram
        # (the old deque grew a sample per request and aggregated wrongly).
        self.latency = LatencyHistogram()

    def routes(self) -> list[Route]:
        return [
            Route("GET", "/healthz", self._handle_healthz),
            Route("GET", "/metrics", self._handle_metrics),
            Route("GET", "/metrics/history", self._handle_history),
            Route("GET", "/traces", self._handle_traces),
            Route("GET", "/trace/", self._handle_trace, prefix=True),
            Route("POST", "/schedule", self._handle_schedule),
            Route("POST", "/replay", self._handle_replay),
            Route("POST", "/purge", self._handle_purge),
            Route("POST", "/shutdown", self._handle_shutdown),
        ]

    def close(self) -> None:
        """Stop routing on behalf of this app (the fleet stays up).

        Does *not* stop the shard fleet — that is the supervisor's job (see
        :meth:`ClusterHandle.close` for the combined teardown).
        """
        # Uninstall the health probe: the supervisor may outlive the router
        # and must not keep fanning out on behalf of a closed frontend.
        if self.supervisor.health_probe == self.cluster_health:
            self.supervisor.health_probe = None
        self.connections.close_all()

    # ------------------------------------------------------------------ #
    # GET routes
    # ------------------------------------------------------------------ #
    def _handle_healthz(self, request: Request) -> Response:
        """Fleet health: liveness + the SLO-driven cluster state machine.

        Answers 503 for a fully-dead fleet and for the ``failing`` state so
        load balancers can key off the status code; the JSON body keeps the
        pre-existing keys (``status``/``shards``/``alive``/``backend``/
        ``uptime_seconds``) and adds ``reasons`` + ``scale_hint``.  Uses the
        monitor-cached health document when fresh; recomputes when the
        cache is stale or liveness has visibly changed under it.
        """
        supervisor = self.supervisor
        alive = supervisor.alive_count()
        health = supervisor.last_health(max_age=supervisor.health_interval * 2.0)
        if health is None or alive < supervisor.num_shards:
            health = self.cluster_health()
        failing = alive == 0 or health["state"] == "failing"
        return Response.json(
            503 if failing else 200,
            {
                "status": health["state"],
                "shards": supervisor.num_shards,
                "alive": alive,
                "backend": supervisor.backend,
                "uptime_seconds": supervisor.uptime_seconds,
                "reasons": health["reasons"],
                "scale_hint": health["scale_hint"],
            },
        )

    def _handle_metrics(self, request: Request) -> Response:
        metrics = self.aggregate_metrics()
        if request.query_param("format") == "prometheus":
            return Response(
                200,
                render_cluster_metrics(metrics).encode(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        return Response.json(200, metrics)

    def _handle_history(self, request: Request) -> Response:
        """Fleet time series: per-shard history docs + exact cluster SLO.

        One fan-out gathers every shard's ``/metrics/history``; the
        cluster-level SLO evaluation merges the window deltas those
        documents already carry (no second fan-out).
        """
        window_s, step_s = self.parse_window_query(request)
        supervisor = self.supervisor
        documents = supervisor.shard_histories(window_s, step_s)
        slo_status = self.cluster_slo_status(documents)
        health = evaluate_health(
            slo_status,
            alive=supervisor.alive_count(),
            shards=supervisor.num_shards,
        )
        return Response.json(
            200,
            {
                "component": "router",
                "window_s": window_s,
                "step_s": step_s,
                "shards": {
                    str(sid): doc for sid, doc in sorted(documents.items())
                },
                "slo": slo_status,
                "health": health,
            },
        )

    def _handle_trace(self, request: Request, trace_id: str) -> Response:
        """Stitch one trace across the fleet: router + every shard component.

        The router's component is the authoritative head (it observed the
        client-facing request); shard components are gathered with a
        best-effort fan-out keyed by the same propagated id, so one
        ``X-Repro-Trace-Id`` yields a single document spanning the forward
        hop *and* the shard-side pipeline.
        """
        trace = self.traces.get(trace_id)
        components: list[dict] = []
        if trace is not None:
            components.append(trace.as_dict())
        components.extend(self.supervisor.gather_trace_components(trace_id))
        if not components:
            return Response.json(404, {"error": f"unknown trace {trace_id!r}"})
        return Response.json(
            200, {"trace_id": trace_id, "components": components}
        )

    def _handle_traces(self, request: Request) -> Response:
        """Router-side trace summaries (shard spans stitch in via /trace/<id>)."""
        store = self.traces
        slow_ms = self.parse_slow_ms_query(request)
        return Response.json(
            200,
            {
                "traces": store.summaries(slow_ms=slow_ms),
                "slow_log": store.slow_log(),
                "slow_total": store.slow_total,
                "slow_ms": store.slow_ms,
            },
        )

    # ------------------------------------------------------------------ #
    # POST routes
    # ------------------------------------------------------------------ #
    def _handle_schedule(self, request: Request) -> Response:
        raw = request.body
        # Route cache: routing_info is a pure function of the body bytes, and
        # the whole point of the fingerprint cache is that bodies repeat —
        # replays skip the JSON parse + fingerprint entirely (a ~100-byte
        # digest lookup instead), which keeps the router off the critical
        # path of warm-hit throughput.
        trace: Trace | None = None
        if self.tracing:
            # Adopt a client-supplied id or mint one; either way the same id
            # travels to the owning shard so /trace/<id> stitches both sides.
            trace = self.tracer.start(request.headers.get("X-Repro-Trace-Id"))
        route_start = time.perf_counter()
        digest = blake2b(raw, digest_size=16).digest()
        cached = self.route_cache.get(digest)
        if cached is not MISS:
            key, fast_headers = cached
        else:
            key, fast_headers = routing_info(raw)
            self.route_cache.put(digest, (key, fast_headers))
        if trace is not None:
            trace.record_span(
                SPAN_ROUTE,
                route_start,
                time.perf_counter(),
                route_cached=cached is not MISS,
            )
        forward_headers = dict(fast_headers)
        if trace is not None:
            forward_headers["X-Repro-Trace-Id"] = trace.trace_id
        start = time.perf_counter()
        attempts = self.forward_retries + 1
        for attempt in range(attempts):
            try:
                # Re-resolve the shard URL on every attempt: a crashed shard
                # comes back on a fresh port once the monitor respawns it.
                shard_id, url = self.supervisor.route(key)
            except ClusterError as exc:
                # Infrastructure outcome, not a handler bug: an empty ring
                # answers the documented 503, span-per-attempt trace kept.
                self.record_route_error(None)
                return self._routed_response(503, {"error": str(exc)}, trace)
            forward_start = time.perf_counter()
            try:
                status, body = self._forward_once(
                    shard_id, url, raw, forward_headers
                )
            except (OSError, http.client.HTTPException):
                if trace is not None:
                    trace.record_span(
                        SPAN_FORWARD,
                        forward_start,
                        time.perf_counter(),
                        shard=shard_id,
                        attempt=attempt,
                        error=True,
                    )
                self.record_route_error(shard_id)
                if attempt + 1 >= attempts:
                    return self._routed_response(
                        503,
                        {
                            "error": f"shard {shard_id} unavailable after "
                            f"{attempts} attempts; retry later"
                        },
                        trace,
                    )
                time.sleep(self.retry_wait)
                continue
            if trace is not None:
                trace.record_span(
                    SPAN_FORWARD,
                    forward_start,
                    time.perf_counter(),
                    shard=shard_id,
                    attempt=attempt,
                    status=status,
                )
            elapsed_ms = (time.perf_counter() - start) * 1e3
            self.record_forward(shard_id, elapsed_ms)
            return self._routed_response(status, body, trace)
        raise AssertionError("unreachable: every retry path returns")

    def _routed_response(
        self, status: int, body: bytes | dict, trace: Trace | None
    ) -> Response:
        """Land the router trace, then relay ``body`` with the trace header.

        The trace is stored for *every* outcome — a 503 after exhausted
        retries is exactly the request you want a span-per-attempt record
        of — and relayed body bytes are never touched, preserving
        byte-identity with the single-process daemon.
        """
        if isinstance(body, dict):
            body = json.dumps(body).encode()
        headers: dict[str, str] = {}
        if trace is not None:
            trace.finish()
            self.traces.add(trace)
            if trace.duration_ms >= self.traces.slow_ms:
                self.log(
                    "slow request trace=%s %.1fms",
                    trace.trace_id,
                    trace.duration_ms,
                )
            headers["X-Repro-Trace-Id"] = trace.trace_id
        return Response(status, body, headers=headers)

    def _handle_replay(self, request: Request) -> Response:
        """Route a replay to its ``(trace-prefix, kernel)`` shard and relay
        the chunked NDJSON stream frame-for-frame.

        Retries (like ``/schedule``'s) happen only *before* the stream
        starts: once the shard answered 200 the first frame may already be
        on the wire, so a mid-stream shard death surfaces to the client as
        stream truncation — the same error signal the daemon emits, which
        is exactly what keeps the two frontends behaviourally identical.
        Non-200 shard responses are read in full and relayed verbatim, so
        error bytes match the daemon's.  The replay path records no router
        trace: a trace's spans land when the response is *finished*, and a
        streamed body outlives the handler — forward latency is recorded
        as time-to-first-byte instead.
        """
        raw = request.body
        key = replay_routing_key(raw)
        start = time.perf_counter()
        attempts = self.forward_retries + 1
        for attempt in range(attempts):
            try:
                shard_id, url = self.supervisor.route(key)
            except ClusterError as exc:
                self.record_route_error(None)
                return self._routed_response(503, {"error": str(exc)}, None)
            conn = self.connections.acquire(shard_id, url)
            try:
                conn.request(
                    "POST",
                    "/replay",
                    body=raw,
                    headers={
                        "Content-Type": "application/json",
                        "Accept": "application/x-ndjson",
                    },
                )
                upstream = conn.getresponse()
            except (OSError, http.client.HTTPException):
                conn.close()
                self.record_route_error(shard_id)
                if attempt + 1 >= attempts:
                    return self._routed_response(
                        503,
                        {
                            "error": f"shard {shard_id} unavailable after "
                            f"{attempts} attempts; retry later"
                        },
                        None,
                    )
                time.sleep(self.retry_wait)
                continue
            if upstream.status != 200:
                # Error document (400 and friends): small, read it whole and
                # relay the bytes untouched — daemon/router parity.
                body = upstream.read()
                if upstream.will_close:
                    conn.close()
                else:
                    self.connections.release(shard_id, url, conn)
                self.record_forward(
                    shard_id, (time.perf_counter() - start) * 1e3
                )
                return Response(upstream.status, body)
            self.record_forward(shard_id, (time.perf_counter() - start) * 1e3)
            return Response(
                200,
                stream=self._relay_stream(shard_id, url, conn, upstream),
                content_type=upstream.getheader("Content-Type")
                or "application/x-ndjson",
            )
        raise AssertionError("unreachable: every retry path returns")

    def _relay_stream(self, shard_id, url, conn, upstream):
        """Re-emit the shard's NDJSON stream one line (= one chunk) at a time.

        ``http.client`` transparently decodes the shard's chunked framing;
        re-framing by line preserves the one-chunk-per-epoch boundary the
        parity suite pins.  A truncated upstream (shard died mid-replay)
        must truncate the client-facing stream too, so this reads with
        ``read1`` — the one decoding path that *raises* ``IncompleteRead``
        on truncation and returns ``b""`` only after consuming the clean
        terminating zero chunk (``readline``'s ``peek`` swallows the
        difference, and ``isclosed()`` cannot tell either: the protocol-lost
        path closes the response object too).  The pooled connection is only
        released for reuse after a complete, clean relay.
        """
        reusable = False
        try:
            buffer = b""
            while True:
                data = upstream.read1(65536)
                if not data:
                    if buffer:
                        raise ConnectionError(
                            "upstream replay stream ended mid-line"
                        )
                    reusable = not upstream.will_close
                    return
                buffer += data
                while (newline := buffer.find(b"\n")) >= 0:
                    yield buffer[: newline + 1]
                    buffer = buffer[newline + 1 :]
        finally:
            if reusable:
                self.connections.release(shard_id, url, conn)
            else:
                conn.close()

    def _forward_once(
        self, shard_id: int, url: str, raw: bytes, fast_headers: dict[str, str]
    ) -> tuple[int, bytes]:
        pool = self.connections
        conn = pool.acquire(shard_id, url)
        reusable = False
        try:
            conn.request(
                "POST",
                "/schedule",
                body=raw,
                headers={
                    "Content-Type": "application/json",
                    "Accept": "application/json",
                    **fast_headers,
                },
            )
            response = conn.getresponse()
            body = response.read()
            reusable = not response.will_close
            return response.status, body
        finally:
            if reusable:
                pool.release(shard_id, url, conn)
            else:
                conn.close()

    def _handle_purge(self, request: Request) -> Response:
        payload = self.read_optional_dict_body(request, context="purge")
        results = self.supervisor.purge_all(all=bool(payload.get("all")))
        reachable = [r for r in results.values() if r is not None]
        return Response.json(
            200,
            {
                "expired_purged": sum(r["expired_purged"] for r in reachable),
                "cleared": sum(r["cleared"] for r in reachable),
                "plan_cleared": sum(
                    r.get("plan_cleared", 0) for r in reachable
                ),
                "shards": {str(sid): r for sid, r in results.items()},
            },
        )

    def _handle_shutdown(self, request: Request) -> Response:
        if not self.allow_shutdown:
            return Response.json(403, {"error": "shutdown endpoint disabled"})
        return Response.json(
            200, {"status": "shutting down"}, after_send=self._request_stop
        )

    def _request_stop(self) -> None:
        if self.transport_shutdown is not None:
            self.transport_shutdown()

    # ------------------------------------------------------------------ #
    # bookkeeping (called from handler threads)
    # ------------------------------------------------------------------ #
    def record_forward(self, shard_id: int, elapsed_ms: float) -> None:
        with self._stats_lock:
            self._requests_total += 1
            entry = self._per_shard.setdefault(
                shard_id, {"requests": 0, "errors": 0}
            )
            entry["requests"] += 1
            self.latency.observe(elapsed_ms)

    def record_route_error(self, shard_id: int | None) -> None:
        with self._stats_lock:
            self._routing_errors += 1
            if shard_id is not None:
                entry = self._per_shard.setdefault(
                    shard_id, {"requests": 0, "errors": 0}
                )
                entry["errors"] += 1

    # ------------------------------------------------------------------ #
    # SLO / health
    # ------------------------------------------------------------------ #
    def cluster_slo_status(self, snapshots: dict[int, dict | None]) -> dict:
        """Exact fleet-wide SLO evaluation from per-shard documents.

        ``snapshots`` maps shard id to any document carrying an ``slo``
        block (a ``/metrics`` snapshot or a ``/metrics/history`` doc).
        Each window's shard deltas merge by summing counters and histogram
        buckets — per-shard monotonic clocks never compare, the
        interval-relative deltas do — so the cluster burn rates equal what
        a single process observing all requests would compute.
        """
        fast_parts: list[WindowDelta] = []
        slow_parts: list[WindowDelta] = []
        for snapshot in snapshots.values():
            if not isinstance(snapshot, dict):
                continue
            windows = (snapshot.get("slo") or {}).get("windows") or {}
            for parts, name in ((fast_parts, "fast"), (slow_parts, "slow")):
                delta = (windows.get(name) or {}).get("delta")
                if delta:
                    parts.append(WindowDelta.from_dict(delta))
        return evaluate_slo(
            self.slo,
            WindowDelta.merged(fast_parts),
            WindowDelta.merged(slow_parts),
        )

    def cluster_health(
        self, snapshots: dict[int, dict | None] | None = None
    ) -> dict:
        """Evaluate (and cache on the supervisor) the fleet health document.

        Installed as the supervisor's :attr:`health_probe`; also invoked by
        ``/healthz`` on a stale cache and by :meth:`aggregate_metrics`
        (which passes the snapshots it already fanned out for).
        """
        supervisor = self.supervisor
        if snapshots is None:
            snapshots = supervisor.shard_metrics()
        health = evaluate_health(
            self.cluster_slo_status(snapshots),
            alive=supervisor.alive_count(),
            shards=supervisor.num_shards,
        )
        supervisor.record_health(health)
        return health

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def aggregate_metrics(self) -> dict:
        """One ``/metrics`` view over the whole cluster.

        Shape: ``cluster`` (summed counters + rolled-up cache stats + the
        *exact* fleet-wide latency: shard histograms merged bucket-by-bucket,
        so ``p50_ms``/``p99_ms`` are true cluster percentiles instead of the
        old router-only view), ``router`` (forward counts per shard, routing
        errors, router-observed forward latency, trace-store gauges),
        ``shards`` (full per-shard snapshots — per-shard percentiles live
        here) and ``imbalance`` (max-over-ideal of the per-shard request
        counts — 1.0 is a perfectly even spread).
        """
        supervisor = self.supervisor
        snapshots = supervisor.shard_metrics()
        urls = supervisor.shard_urls()
        counter_keys = (
            "requests_total",
            "rejections",
            "batches",
            "deduped_in_batch",
            "fast_hits",
            "queue_depth",
        )
        totals = dict.fromkeys(counter_keys, 0)
        cache_keys = (
            "hits",
            "misses",
            "evictions_lru",
            "evictions_ttl",
            "expired_purged",
            "size",
        )
        cache_totals = dict.fromkeys(cache_keys, 0)
        plan_totals = dict.fromkeys(cache_keys, 0)
        shards_view: dict[str, dict] = {}
        fleet_latency = LatencyHistogram()
        for shard_id, snapshot in sorted(snapshots.items()):
            shards_view[str(shard_id)] = {
                "url": urls.get(shard_id),
                "alive": snapshot is not None,
                "metrics": snapshot,
            }
            if snapshot is None:
                continue
            for key in counter_keys:
                totals[key] += int(snapshot.get(key, 0))
            shard_cache = snapshot.get("cache", {})
            for key in cache_keys:
                cache_totals[key] += int(shard_cache.get(key, 0))
            shard_plans = snapshot.get("plan_cache", {})
            for key in cache_keys:
                plan_totals[key] += int(shard_plans.get(key, 0))
            # Exact merge: every shard buckets into the same pinned bounds,
            # so summing counters yields the true fleet-wide distribution.
            shard_histogram = snapshot.get("latency", {}).get("histogram")
            if shard_histogram is not None:
                fleet_latency.merge(shard_histogram)
        lookups = cache_totals["hits"] + cache_totals["misses"]
        cache_totals["hit_rate"] = cache_totals["hits"] / lookups if lookups else 0.0
        plan_lookups = plan_totals["hits"] + plan_totals["misses"]
        plan_totals["hit_rate"] = (
            plan_totals["hits"] / plan_lookups if plan_lookups else 0.0
        )
        slo_status = self.cluster_slo_status(snapshots)
        health = evaluate_health(
            slo_status,
            alive=supervisor.alive_count(),
            shards=supervisor.num_shards,
        )
        supervisor.record_health(health)
        # The stats lock covers only the router's own counters; the route
        # cache and the trace store synchronise themselves.
        with self._stats_lock:
            requests_total = self._requests_total
            routing_errors = self._routing_errors
            per_shard = {
                str(sid): dict(entry)
                for sid, entry in sorted(self._per_shard.items())
            }
            latency_summary = self.latency.summary()
        router = {
            "requests_total": requests_total,
            "routing_errors": routing_errors,
            "route_cache": {
                **self.route_cache.stats.as_dict(),
                "size": len(self.route_cache),
            },
            "per_shard": per_shard,
            "latency": latency_summary,
            "traces": {
                "stored": len(self.traces),
                "capacity": self.traces.capacity,
                "slow_total": self.traces.slow_total,
                "slow_ms": self.traces.slow_ms,
                "enabled": self.tracing,
            },
        }
        latency = fleet_latency.summary()
        forwarded = [e["requests"] for e in router["per_shard"].values()]
        total_forwarded = sum(forwarded)
        ideal = total_forwarded / supervisor.num_shards if total_forwarded else 0.0
        imbalance = {
            "requests_total": total_forwarded,
            "ideal_per_shard": ideal,
            "max_per_shard": max(forwarded) if forwarded else 0,
            "max_over_ideal": (max(forwarded) / ideal) if ideal else None,
        }
        return {
            "cluster": {
                "shards": supervisor.num_shards,
                "alive": supervisor.alive_count(),
                "backend": supervisor.backend,
                "respawns": supervisor.respawns,
                "uptime_seconds": supervisor.uptime_seconds,
                **totals,
                "cache": cache_totals,
                "plan_cache": plan_totals,
                "latency": latency,
            },
            "router": router,
            "shards": shards_view,
            "imbalance": imbalance,
            "slo": slo_status,
            "health": health,
            # The autoscaler contract, surfaced at the top level so a
            # consumer needs no knowledge of the health-block layout.
            "scale_hint": health["scale_hint"],
            # Router-side invariant advertisement, mirroring each shard's
            # own ``build`` block inside its snapshot.
            "build": lint_build_info(),
        }


class ShardRouterServer(ThreadedTransport):
    """Threaded transport bound to one :class:`RouterApp`.

    Compatibility frontend keeping the pre-split constructor signature;
    router-level attributes and methods (``supervisor``,
    ``aggregate_metrics``, ``traces``, ...) read through to the app.
    """

    def __init__(
        self,
        address: tuple[str, int],
        supervisor: ClusterSupervisor,
        *,
        verbose: bool = False,
        **router_kwargs,
    ) -> None:
        app = RouterApp(supervisor, verbose=verbose, **router_kwargs)
        super().__init__(address, app, verbose=verbose)

    def __getattr__(self, name: str):
        if name == "app":  # not yet bound during base-class __init__
            raise AttributeError(name)
        return getattr(self.app, name)


class AsyncShardRouterServer(AsyncioTransport):
    """Asyncio transport bound to one :class:`RouterApp` (same surface)."""

    def __getattr__(self, name: str):
        if name == "app":
            raise AttributeError(name)
        return getattr(self.app, name)


def make_router(
    address: tuple[str, int],
    supervisor: ClusterSupervisor,
    *,
    transport: str = "threaded",
    verbose: bool = False,
    **router_kwargs,
):
    """Bind a router frontend over ``supervisor`` on the chosen transport.

    Both return types expose the same surface (``url``, ``serve_forever``,
    ``close``, plus every :class:`RouterApp` attribute by delegation) and
    serve byte-identical responses.
    """
    if transport == "threaded":
        return ShardRouterServer(
            address, supervisor, verbose=verbose, **router_kwargs
        )
    if transport == "asyncio":
        app = RouterApp(supervisor, verbose=verbose, **router_kwargs)
        return AsyncShardRouterServer(address, app, verbose=verbose)
    from ..http import TRANSPORTS

    raise ValueError(
        f"unknown transport {transport!r} (choose from {', '.join(TRANSPORTS)})"
    )


@dataclass
class ClusterHandle:
    """A running cluster: router server, its serve thread and the fleet."""

    supervisor: ClusterSupervisor
    server: ShardRouterServer
    thread: threading.Thread

    @property
    def url(self) -> str:
        return self.server.url

    def close(self) -> None:
        self.server.close()
        self.supervisor.close()

    def __enter__(self) -> "ClusterHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_cluster(
    shards: int = 2,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    spec: ShardSpec | None = None,
    backend: str = "process",
    vnodes: int = 64,
    respawn: bool = True,
    allow_shutdown: bool = False,
    verbose: bool = False,
    forward_timeout: float = 300.0,
    slo: SLO | None = None,
    transport: str = "threaded",
) -> ClusterHandle:
    """Boot a sharded cluster and serve its router on a background thread.

    The cluster equivalent of
    :func:`~repro.service.server.start_background_server`; used by the
    self-hosted ``loadtest --shards``, the cluster benchmark and the tests.
    ``transport`` selects the *router* frontend; each shard picks its own
    via :attr:`ShardSpec.transport`.  Stop it with
    :meth:`ClusterHandle.close`.
    """
    supervisor = ClusterSupervisor(
        shards, spec=spec, backend=backend, vnodes=vnodes, respawn=respawn
    ).start()
    try:
        server = make_router(
            (host, port),
            supervisor,
            transport=transport,
            allow_shutdown=allow_shutdown,
            verbose=verbose,
            forward_timeout=forward_timeout,
            slo=slo,
        )
    except Exception:
        supervisor.close()
        raise
    thread = threading.Thread(
        target=server.serve_forever, name="repro-cluster-router", daemon=True
    )
    thread.start()
    return ClusterHandle(supervisor=supervisor, server=server, thread=thread)
