"""Cluster supervisor: spawns, monitors and respawns the shard workers.

:class:`ClusterSupervisor` owns the shard fleet of one cluster:

* builds the :class:`~repro.service.cluster.ring.ShardRing` over the shard
  ids (the ring is membership-only, so a respawned shard keeps its key
  range even though its port changes);
* spawns one worker per shard (``backend="process"`` by default, falling
  back to in-process threads where subprocesses are forbidden — the same
  degradation as :func:`repro.analysis.experiments.make_pool`);
* runs a monitor thread that detects dead workers and respawns them in
  place (the replacement starts cold: a crash loses that shard's cache
  slice and nothing else);
* aggregates per-shard ``/metrics`` and fans out the ``/purge`` eviction
  message;
* periodically invokes the router-installed :attr:`health_probe` and
  caches the resulting health document (:meth:`last_health`), tightening
  its liveness poll while the fleet is not ``ok`` — the supervisor reacts
  to the SLO burn-rate signals, not just to dead processes.

The supervisor is transport-agnostic: the HTTP frontend over it lives in
:mod:`repro.service.cluster.router`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from ...exceptions import ClusterError
from ..client import ServiceClient
from .ring import ShardRing
from .worker import ProcessShardHandle, ShardHandle, ShardSpec, ThreadShardHandle

__all__ = ["ClusterSupervisor"]


class ClusterSupervisor:
    """Spawn/monitor/respawn a fleet of shard workers behind one ring.

    Parameters
    ----------
    shards:
        Number of shard workers (>= 1).
    spec:
        Per-shard :class:`~repro.service.cluster.worker.ShardSpec`.
    backend:
        ``"process"`` (default; real parallelism, auto-falls back to
        threads in restricted sandboxes) or ``"thread"``.
    vnodes:
        Virtual nodes per shard on the consistent-hash ring.
    respawn:
        Monitor and respawn dead shards (disable for tests that manage the
        lifecycle themselves).
    monitor_interval / ready_timeout:
        Liveness poll period and per-shard startup deadline (seconds).
    health_interval:
        How often (seconds) the monitor invokes the router-installed
        :attr:`health_probe` (cluster-wide SLO + health evaluation).
    """

    def __init__(
        self,
        shards: int,
        *,
        spec: ShardSpec | None = None,
        backend: str = "process",
        vnodes: int = 64,
        respawn: bool = True,
        monitor_interval: float = 0.25,
        ready_timeout: float = 30.0,
        health_interval: float = 1.0,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if backend not in ("process", "thread"):
            raise ValueError(f"backend must be 'process' or 'thread', got {backend!r}")
        self.num_shards = int(shards)
        self.spec = spec or ShardSpec()
        self.backend = backend
        self.ring = ShardRing(range(self.num_shards), vnodes=vnodes)
        self.ready_timeout = float(ready_timeout)
        self.monitor_interval = float(monitor_interval)
        self._respawn_enabled = respawn
        self._handles: dict[int, ShardHandle] = {}
        self._urls: dict[int, str] = {}
        self._lock = threading.Lock()
        self._respawns = 0
        self._started_at: float | None = None
        self._closed = False
        self._monitor: threading.Thread | None = None
        #: Set by the HTTP router: a zero-argument callable returning the
        #: cluster health document ({"state", "reasons", "scale_hint"}).
        #: The monitor loop calls it every ``health_interval`` seconds.
        self.health_probe = None
        self.health_interval = float(health_interval)
        self._last_health: dict | None = None
        self._last_health_at: float | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ClusterSupervisor":
        """Spawn every shard (blocking until all report ready)."""
        if self._started_at is not None:
            raise RuntimeError("cluster already started")
        self._started_at = time.monotonic()
        try:
            for shard_id in range(self.num_shards):
                self._spawn(shard_id)
        except Exception:
            self.close()
            raise
        if self._respawn_enabled:
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
            )
            self._monitor.start()
        return self

    def _make_handle(self, shard_id: int) -> ShardHandle:
        if self.backend == "process":
            return ProcessShardHandle(shard_id, self.spec)
        return ThreadShardHandle(shard_id, self.spec)

    def _spawn(self, shard_id: int) -> None:
        handle = self._make_handle(shard_id)
        try:
            url = handle.start(self.ready_timeout)
        except (OSError, PermissionError) as exc:
            if self.backend != "process":
                raise
            # Restricted sandbox: degrade the whole fleet to threads (the
            # process backend would fail identically for every shard).
            self.backend = "thread"
            handle = self._make_handle(shard_id)
            url = handle.start(self.ready_timeout)
            if shard_id == 0:
                print(f"cluster: process backend unavailable ({exc}); using threads")
        with self._lock:
            # The supervisor may have been closed while this (blocking)
            # spawn was in flight — a late respawn must not outlive it.
            if self._closed:
                register = False
            else:
                self._handles[shard_id] = handle
                self._urls[shard_id] = url
                register = True
        if not register:
            handle.stop()

    def _is_closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self) -> None:
        """Stop the monitor and terminate every shard."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._monitor is not None:
            self._monitor.join(timeout=self.monitor_interval * 8 + 5.0)
        with self._lock:
            handles = list(self._handles.values())
            self._handles.clear()
            self._urls.clear()
        for handle in handles:
            try:
                handle.stop()
            except Exception:  # pragma: no cover - best-effort teardown
                pass

    def __enter__(self) -> "ClusterSupervisor":
        return self.start() if self._started_at is None else self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # routing / introspection
    # ------------------------------------------------------------------ #
    def shard_url(self, shard_id: int) -> str:
        with self._lock:
            try:
                return self._urls[shard_id]
            except KeyError:
                raise ClusterError(f"shard {shard_id} is not running") from None

    def shard_urls(self) -> dict[int, str]:
        with self._lock:
            return dict(self._urls)

    def route(self, key: str) -> tuple[int, str]:
        """Owning ``(shard_id, base_url)`` of a routing key."""
        shard_id = self.ring.assign(key)
        return shard_id, self.shard_url(shard_id)

    def alive_count(self) -> int:
        with self._lock:
            return sum(1 for h in self._handles.values() if h.is_alive())

    @property
    def respawns(self) -> int:
        with self._lock:
            return self._respawns

    def record_health(self, document: dict) -> None:
        """Cache the latest cluster health document (router or monitor)."""
        with self._lock:
            self._last_health = document
            self._last_health_at = time.monotonic()

    def last_health(self, *, max_age: float | None = None) -> dict | None:
        """The most recent health document, or ``None`` if absent/stale."""
        with self._lock:
            if self._last_health is None:
                return None
            if max_age is not None and (
                time.monotonic() - self._last_health_at > max_age
            ):
                return None
            return self._last_health

    @property
    def uptime_seconds(self) -> float:
        return 0.0 if self._started_at is None else time.monotonic() - self._started_at

    # ------------------------------------------------------------------ #
    # fleet-wide operations
    # ------------------------------------------------------------------ #
    def _fan_out(
        self, call, *, timeout: float
    ) -> dict[int, dict | None]:
        """Run ``call(url)`` against every shard concurrently.

        Concurrency bounds the fleet-wide latency at the slowest *single*
        shard — with sequential polling one hung shard would stall the whole
        aggregated ``/metrics`` response for its full timeout before the
        next shard was even tried.  Unreachable shards yield ``None``.
        """
        urls = sorted(self.shard_urls().items())
        if not urls:
            return {}

        def probe(url: str) -> dict | None:
            try:
                return call(ServiceClient(url, timeout=timeout, retries=0))
            except Exception:
                return None

        with ThreadPoolExecutor(max_workers=min(len(urls), 16)) as pool:
            snapshots = pool.map(probe, (url for _, url in urls))
            return {shard_id: snap for (shard_id, _), snap in zip(urls, snapshots)}

    def shard_metrics(self, *, timeout: float = 5.0) -> dict[int, dict | None]:
        """Per-shard ``/metrics`` snapshots (``None`` for unreachable shards)."""
        return self._fan_out(lambda client: client.metrics(), timeout=timeout)

    def shard_histories(
        self,
        window: float | None = None,
        step: float | None = None,
        *,
        timeout: float = 5.0,
    ) -> dict[int, dict | None]:
        """Per-shard ``/metrics/history`` documents (``None`` = unreachable)."""
        return self._fan_out(
            lambda client: client.metrics_history(window, step),
            timeout=timeout,
        )

    def purge_all(self, *, all: bool = False) -> dict[int, dict | None]:  # noqa: A002
        """Fan the explicit eviction message out to every shard."""
        return self._fan_out(
            lambda client: client.purge(all=all), timeout=30.0
        )

    def gather_trace_components(
        self, trace_id: str, *, timeout: float = 5.0
    ) -> list[dict]:
        """Every shard-side component of one propagated trace id.

        Best-effort fan-out: shards that never saw the id answer 404 and
        contribute nothing, so the list usually holds exactly the owning
        shard's component.  The router concatenates these after its own
        component to form the stitched ``GET /trace/<id>`` document.
        """
        documents = self._fan_out(
            lambda client: client.trace(trace_id), timeout=timeout
        )
        components: list[dict] = []
        for shard_id in sorted(documents):
            document = documents[shard_id]
            if document:
                components.extend(document.get("components", []))
        return components

    # ------------------------------------------------------------------ #
    # monitor
    # ------------------------------------------------------------------ #
    def _maybe_probe_health(self, next_probe: float) -> float:
        """Run the router-installed health probe when due; returns the next
        due time.  Probe failures (router mid-shutdown, shards respawning)
        leave the cached document untouched and retry next interval."""
        probe = self.health_probe
        now = time.monotonic()
        if probe is None or now < next_probe:
            return next_probe
        try:
            document = probe()
        except Exception:
            document = None
        if document is not None:
            self.record_health(document)
        return now + self.health_interval

    def _monitor_loop(self) -> None:
        next_probe = time.monotonic()
        while not self._is_closed():
            health = self.last_health()
            interval = self.monitor_interval
            if health is not None and health.get("state") != "ok":
                # An unhealthy fleet gets a tighter loop: dead shards are
                # respawned (and the health probe re-run) sooner.
                interval = self.monitor_interval / 4.0
            time.sleep(interval)
            if self._is_closed():
                return
            next_probe = self._maybe_probe_health(next_probe)
            with self._lock:
                dead = [
                    shard_id
                    for shard_id, handle in self._handles.items()
                    if not handle.is_alive()
                ]
            for shard_id in dead:
                if self._is_closed():
                    return
                try:
                    with self._lock:
                        handle = self._handles.get(shard_id)
                    if handle is not None:
                        handle.stop()  # reap the corpse before replacing it
                    self._spawn(shard_id)
                    with self._lock:
                        self._respawns += 1
                except Exception:  # pragma: no cover - keep monitoring
                    # Spawn failed (e.g. resource exhaustion): leave the
                    # shard down and retry on the next tick.
                    pass
