"""Shard worker processes: each owns a disjoint slice of the result cache.

A shard is simply a full single-process scheduling daemon — a
:class:`~repro.service.core.SchedulerService` behind a
:class:`~repro.service.server.ServiceHTTPServer` — bound to an ephemeral
loopback port and created with ``trust_fast_headers=True`` so cache hits for
the keys it owns are served locally, straight from the handler thread.
Shared-nothing by construction: the router partitions the key space with the
:class:`~repro.service.cluster.ring.ShardRing`, so no entry ever exists on
two shards and there is no cross-shard invalidation; eviction is TTL expiry
(plus the periodic drain-loop purge) and the explicit ``POST /purge``
control message.

Two backends, one interface (:class:`ShardHandle`):

* :class:`ProcessShardHandle` — ``multiprocessing.Process`` running
  :func:`run_shard`; real parallelism, the production shape.  The child
  reports ``(shard_id, host, port)`` over a pipe once its socket is bound.
* :class:`ThreadShardHandle` — the same HTTP server on a daemon thread in
  the current process; no extra parallelism, but identical wire behaviour.
  Used as the automatic fallback where subprocesses are forbidden
  (restricted sandboxes — the same degradation strategy as
  :func:`repro.analysis.experiments.make_pool`) and by fast tests.
"""

from __future__ import annotations

import multiprocessing
import threading
from dataclasses import asdict, dataclass
from multiprocessing.connection import Connection

from ...exceptions import ClusterError
from ...obs.slo import SLO
from ..core import SchedulerService
from ..server import ServiceHTTPServer, make_server

__all__ = [
    "ProcessShardHandle",
    "ShardHandle",
    "ShardSpec",
    "ThreadShardHandle",
    "run_shard",
]


@dataclass(frozen=True)
class ShardSpec:
    """Picklable per-shard service configuration.

    Mirrors the :class:`~repro.service.core.SchedulerService` constructor
    (minus the injectable clock, which cannot cross a process boundary).
    Every shard of a cluster runs the same spec; the *capacity* of the
    cluster cache is therefore ``shards * cache_capacity``.
    """

    workers: int | None = None
    prefer: str = "thread"
    batch_size: int = 32
    batch_wait: float = 0.0
    cache_capacity: int = 2048
    cache_ttl: float | None = None
    purge_interval: float | None = None
    plan_cache_capacity: int = 512
    max_pending: int = 1024
    verbose: bool = False
    tracing: bool = True
    trace_capacity: int = 256
    slow_ms: float = 500.0
    sample_interval: float | None = 1.0
    history_capacity: int = 720
    slo_p99_ms: float = 500.0
    #: HTTP frontend of each shard ("threaded" or "asyncio") — a transport
    #: concern, not a service knob, hence popped in :meth:`build_service`.
    transport: str = "threaded"

    def build_service(self, shard_id: int | None = None) -> SchedulerService:
        kwargs = asdict(self)
        kwargs.pop("verbose")
        kwargs.pop("transport")
        # The SLO rides the spec as its scalar knob (an SLO dataclass would
        # pickle fine, but one number keeps the CLI surface flat).
        kwargs["slo"] = SLO(p99_ms=kwargs.pop("slo_p99_ms"))
        if shard_id is not None:
            # Component label of every trace this shard records — the
            # stitched /trace/<id> document tells shards apart by it.
            kwargs["trace_component"] = f"shard-{shard_id}"
        return SchedulerService(**kwargs)


def run_shard(shard_id: int, spec: ShardSpec, conn: Connection) -> None:
    """Process entry point of one shard worker.

    Binds an ephemeral loopback port, reports ``(shard_id, host, port)``
    through ``conn`` and serves until terminated by the supervisor.
    Module-level so it is picklable under every multiprocessing start
    method.
    """
    service = spec.build_service(shard_id)
    # allow_shutdown stays False: the supervisor stops shards itself
    # (terminate / server.close), and an open /shutdown on the shard port
    # would bypass the router's shutdown gate.
    server = make_server(
        "127.0.0.1",
        0,
        service,
        transport=spec.transport,
        trust_fast_headers=True,
        verbose=spec.verbose,
    )
    host, port = server.server_address[:2]
    conn.send((shard_id, host, int(port)))
    conn.close()
    try:
        server.serve_forever()
    finally:  # pragma: no cover - usually killed by the supervisor
        server.server_close()
        service.close()


class ShardHandle:
    """Lifecycle interface shared by the process and thread backends."""

    kind: str = "?"
    shard_id: int
    url: str

    def start(self, ready_timeout: float) -> str:
        raise NotImplementedError

    def is_alive(self) -> bool:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError


class ProcessShardHandle(ShardHandle):
    """One shard as a daemon subprocess."""

    kind = "process"

    def __init__(
        self,
        shard_id: int,
        spec: ShardSpec,
        *,
        mp_context: multiprocessing.context.BaseContext | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.spec = spec
        self._ctx = mp_context or multiprocessing.get_context()
        self.process: multiprocessing.Process | None = None
        self.url = ""

    def start(self, ready_timeout: float = 30.0) -> str:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        self.process = self._ctx.Process(
            target=run_shard,
            args=(self.shard_id, self.spec, child_conn),
            name=f"repro-shard-{self.shard_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()  # child's end lives in the child now
        try:
            if not parent_conn.poll(ready_timeout):
                raise ClusterError(
                    f"shard {self.shard_id} did not report ready within "
                    f"{ready_timeout:g}s"
                )
            _, host, port = parent_conn.recv()
        except (EOFError, OSError) as exc:
            self.stop()  # reap the half-started child — never leak it
            raise ClusterError(
                f"shard {self.shard_id} died before reporting its address"
            ) from exc
        except ClusterError:
            self.stop()
            raise
        finally:
            parent_conn.close()
        self.url = f"http://{host}:{port}"
        return self.url

    def is_alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def stop(self) -> None:
        if self.process is None:
            return
        # Shards are stateless beyond their in-memory cache slice: a hard
        # terminate is a clean shutdown (no durable state to flush).
        self.process.terminate()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stubborn child
            self.process.kill()
            self.process.join(timeout=5.0)


class ThreadShardHandle(ShardHandle):
    """One shard as an in-process daemon thread (sandbox fallback, tests)."""

    kind = "thread"

    def __init__(self, shard_id: int, spec: ShardSpec) -> None:
        self.shard_id = shard_id
        self.spec = spec
        self._server: ServiceHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self.url = ""

    def start(self, ready_timeout: float = 30.0) -> str:
        service = self.spec.build_service(self.shard_id)
        self._server = make_server(
            "127.0.0.1",
            0,
            service,
            transport=self.spec.transport,
            trust_fast_headers=True,
            verbose=self.spec.verbose,
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"repro-shard-{self.shard_id}",
            daemon=True,
        )
        self._thread.start()
        host, port = self._server.server_address[:2]
        self.url = f"http://{host}:{port}"
        return self.url

    def is_alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            self._server = None
