"""Fixed-memory metric time series sampled from the serving counters.

``/metrics`` is a point-in-time snapshot: it can say *what the counters
read now* but not *whether p99 is degrading* or *how fast the error
budget burns*.  This module adds the missing time axis with constant
memory:

* :class:`MetricSample` — one timestamped observation: gauge values,
  cumulative counters and a cumulative
  :class:`~repro.obs.histogram.LatencyHistogram` snapshot.
* :class:`MetricRing` — a bounded ring of samples taken at a
  configurable interval on an injectable clock (the service's dispatcher
  drives it from its idle tick, so no extra thread exists).
* :class:`WindowDelta` — the *exact* difference between two ring
  samples: because counters and histogram bucket counts are monotone,
  subtracting an old cumulative snapshot from the newest one yields
  precisely the distribution of everything observed in between
  (:func:`histogram_delta`).  Window deltas merge across shards the same
  way full histograms do — summing — so the router's fleet-wide windowed
  p99 is exact, not an approximation.

Everything here is stdlib-only and deterministic (RL002-clean): no
wall-clock reads, no randomness — time enters only through the injected
clock, which tests replace with a counter.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Iterable

from .histogram import BOUNDS_MS, LatencyHistogram

__all__ = [
    "MetricRing",
    "MetricSample",
    "WindowDelta",
    "gauge_stats",
    "histogram_delta",
]


def histogram_delta(
    start: dict | None, end: dict | None
) -> LatencyHistogram:
    """Exact latency distribution between two cumulative snapshots.

    Bucket counts are monotone counters, so ``end - start`` per bucket is
    precisely the histogram of the observations recorded between the two
    snapshots.  The window's true ``min_ms``/``max_ms`` are not
    recoverable from cumulative snapshots; the delta uses the bounds of
    its extreme non-empty buckets instead, which keeps percentile
    estimates within one bucket of the ground truth.

    A shard respawn resets its counters to zero; when the end snapshot's
    total count is *below* the start's, the start baseline predates the
    restart and the end snapshot itself is the honest window content.
    """
    empty = LatencyHistogram()
    if end is None:
        return empty
    end_h = LatencyHistogram.from_dict(end)
    if start is None:
        return end_h
    start_h = LatencyHistogram.from_dict(start)
    if end_h.count < start_h.count:  # counter reset (restart) between samples
        return end_h
    counts = [max(0, e - s) for s, e in zip(start_h.counts, end_h.counts)]
    total = sum(counts)
    if total == 0:
        return empty
    out = LatencyHistogram()
    out.counts = counts
    out.count = total
    out.sum_ms = max(0.0, end_h.sum_ms - start_h.sum_ms)
    lo = next(i for i, n in enumerate(counts) if n)
    hi = next(i for i in range(len(counts) - 1, -1, -1) if counts[i])
    out.min_ms = BOUNDS_MS[lo - 1] if lo > 0 else 0.0
    out.max_ms = BOUNDS_MS[hi] if hi < len(BOUNDS_MS) else max(
        end_h.max_ms, BOUNDS_MS[-1]
    )
    return out


def gauge_stats(values: Iterable[float]) -> dict:
    """First/last/max/mean trend summary of one gauge over a window."""
    series = [float(v) for v in values]
    if not series:
        return {"first": 0.0, "last": 0.0, "max": 0.0, "mean": 0.0}
    return {
        "first": series[0],
        "last": series[-1],
        "max": max(series),
        "mean": sum(series) / len(series),
    }


class MetricSample:
    """One timestamped observation of gauges + cumulative counters.

    ``t`` is on the ring's (injectable, monotonic) clock; ``latency`` is
    the cumulative :meth:`LatencyHistogram.as_dict` snapshot at sample
    time, kept as a plain dict so samples serialise straight to JSON.
    """

    __slots__ = ("t", "gauges", "counters", "latency")

    def __init__(
        self,
        t: float,
        gauges: dict[str, float],
        counters: dict[str, int],
        latency: dict | None,
    ) -> None:
        self.t = float(t)
        self.gauges = dict(gauges)
        self.counters = dict(counters)
        self.latency = latency

    def as_dict(self) -> dict:
        return {
            "t": self.t,
            "gauges": dict(self.gauges),
            "counters": dict(self.counters),
            "latency": self.latency,
        }


class WindowDelta:
    """What happened between two ring samples: counter deltas, gauge
    trends and the exact latency distribution of the interval.

    Deltas from different shards merge exactly (sum counters, sum
    histogram buckets, sum gauge trends — a fleet's queue depth is the
    sum of its shards' queue depths), which is what lets the router
    evaluate cluster-wide SLO windows without approximation.
    """

    __slots__ = ("duration_s", "samples", "counters", "gauges", "latency")

    def __init__(
        self,
        *,
        duration_s: float = 0.0,
        samples: int = 0,
        counters: dict[str, int] | None = None,
        gauges: dict[str, dict] | None = None,
        latency: LatencyHistogram | None = None,
    ) -> None:
        self.duration_s = float(duration_s)
        self.samples = int(samples)
        self.counters: dict[str, int] = dict(counters or {})
        self.gauges: dict[str, dict] = {
            k: dict(v) for k, v in (gauges or {}).items()
        }
        self.latency = latency if latency is not None else LatencyHistogram()

    def counter(self, name: str) -> int:
        return int(self.counters.get(name, 0))

    def as_dict(self) -> dict:
        """Mergeable snapshot; shape pinned by lint rule RL003."""
        return {
            "duration_s": self.duration_s,
            "samples": self.samples,
            "counters": dict(self.counters),
            "gauges": {k: dict(v) for k, v in self.gauges.items()},
            "latency": self.latency.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WindowDelta":
        return cls(
            duration_s=float(data.get("duration_s", 0.0)),
            samples=int(data.get("samples", 0)),
            counters={
                str(k): int(v)
                for k, v in dict(data.get("counters", {})).items()
            },
            gauges={
                str(k): dict(v)
                for k, v in dict(data.get("gauges", {})).items()
            },
            latency=LatencyHistogram.from_dict(data["latency"])
            if data.get("latency")
            else None,
        )

    def merge(self, other: "WindowDelta | dict") -> "WindowDelta":
        """Fold another shard's window into this one, exactly."""
        if isinstance(other, dict):
            other = WindowDelta.from_dict(other)
        self.duration_s = max(self.duration_s, other.duration_s)
        self.samples += other.samples
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0) + int(value)
        for key, stats in other.gauges.items():
            mine = self.gauges.get(key)
            if mine is None:
                self.gauges[key] = dict(stats)
            else:
                for stat in ("first", "last", "max", "mean"):
                    mine[stat] = mine.get(stat, 0.0) + float(
                        stats.get(stat, 0.0)
                    )
        self.latency.merge(other.latency)
        return self

    @classmethod
    def merged(cls, parts: Iterable["WindowDelta | dict"]) -> "WindowDelta":
        out = cls()
        for part in parts:
            out.merge(part)
        return out


class MetricRing:
    """Bounded ring of :class:`MetricSample` on an injectable clock.

    ``capacity`` bounds memory regardless of uptime (old samples fall
    off); ``interval`` gates :meth:`maybe_sample` so the dispatcher's
    idle tick can call it unconditionally; ``interval=None`` disables
    interval-driven sampling while leaving explicit :meth:`record`
    (and :meth:`sample_now`-style callers) functional.
    """

    def __init__(
        self,
        capacity: int = 720,
        *,
        interval: float | None = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 2:
            raise ValueError("metric ring capacity must be >= 2")
        if interval is not None and interval <= 0:
            raise ValueError("sample interval must be positive (or None)")
        self.capacity = int(capacity)
        self.interval = interval
        self._clock = clock
        self._samples: deque[MetricSample] = deque(maxlen=self.capacity)
        self._recorded = 0
        self._lock = threading.Lock()
        self._next_sample = clock() + interval if interval is not None else None

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def samples(self) -> list[MetricSample]:
        with self._lock:
            return list(self._samples)

    def _snapshot(self) -> tuple[list[MetricSample], bool]:
        """Retained samples plus whether the ring has evicted any."""
        with self._lock:
            retained = list(self._samples)
            return retained, self._recorded > len(retained)

    def record(
        self,
        gauges: dict[str, float],
        counters: dict[str, int],
        latency: dict | None,
        *,
        t: float | None = None,
    ) -> MetricSample:
        """Append one sample unconditionally (``t`` defaults to the clock)."""
        sample = MetricSample(
            self._clock() if t is None else t, gauges, counters, latency
        )
        with self._lock:
            self._samples.append(sample)
            self._recorded += 1
        return sample

    def maybe_sample(
        self, collect: Callable[[], tuple[dict, dict, dict | None]]
    ) -> bool:
        """Record a sample if the interval elapsed; ``collect`` returns
        ``(gauges, counters, latency_snapshot)`` and only runs when due."""
        if self.interval is None:
            return False
        now = self._clock()
        with self._lock:
            if now < self._next_sample:
                return False
            # Schedule relative to *now*: after an idle gap the ring takes
            # one catch-up sample instead of a burst.
            self._next_sample = now + self.interval
        gauges, counters, latency = collect()
        self.record(gauges, counters, latency, t=now)
        return True

    # ------------------------------------------------------------------ #
    def window(self, window_s: float, *, now: float | None = None) -> "WindowDelta":
        """Exact delta over the trailing ``window_s`` seconds.

        The baseline is the newest sample at or before ``now - window_s``.
        When none is old enough there are two cases: a *young* process
        (nothing ever evicted) uses a zero baseline — the cumulative
        totals genuinely all happened inside the window — while a
        *wrapped* ring uses its oldest retained sample, truncating the
        window to the ring's span rather than billing evicted history to
        it.  A ring whose newest sample predates the window (sampling
        stopped) yields an empty delta.
        """
        snap, wrapped = self._snapshot()
        if not snap:
            return WindowDelta()
        if now is None:
            now = self._clock()
        cutoff = float(now) - float(window_s)
        inside = [s for s in snap if s.t > cutoff]
        if not inside:
            return WindowDelta()
        baseline_idx = len(snap) - len(inside) - 1
        start = snap[baseline_idx] if baseline_idx >= 0 else None
        if start is None and wrapped:
            if len(inside) < 2:
                return WindowDelta()
            start, inside = inside[0], inside[1:]
        end = inside[-1]
        counters: dict[str, int] = {}
        for key, end_value in end.counters.items():
            base = int(start.counters.get(key, 0)) if start is not None else 0
            delta = int(end_value) - base
            if delta < 0:  # counter reset (restart) between the samples
                delta = int(end_value)
            counters[key] = delta
        gauge_keys = sorted({k for s in inside for k in s.gauges})
        gauges = {
            key: gauge_stats(s.gauges.get(key, 0.0) for s in inside)
            for key in gauge_keys
        }
        return WindowDelta(
            duration_s=end.t - (start.t if start is not None else inside[0].t),
            samples=len(inside),
            counters=counters,
            gauges=gauges,
            latency=histogram_delta(
                start.latency if start is not None else None, end.latency
            ),
        )

    def history(
        self,
        window_s: float,
        step_s: float,
        *,
        now: float | None = None,
    ) -> dict:
        """Downsampled view of the trailing window (``GET /metrics/history``).

        One point per ``step_s`` bucket (the bucket's newest sample);
        counters are reported as deltas between consecutive points and the
        per-point latency block is the exact inter-point histogram delta.
        """
        if now is None:
            now = self._clock()
        window_s = float(window_s)
        step_s = max(float(step_s), 1e-9)
        snap, wrapped = self._snapshot()
        cutoff = float(now) - window_s
        inside = [s for s in snap if s.t > cutoff]
        baseline_idx = len(snap) - len(inside) - 1
        prev = snap[baseline_idx] if baseline_idx >= 0 else None
        if prev is None and wrapped and inside:
            # Wrapped ring: the oldest retained sample is the baseline,
            # not a data point — same truncation rule as :meth:`window`.
            prev, inside = inside[0], inside[1:]
        selected: list[MetricSample] = []
        last_bucket = None
        for sample in inside:
            bucket = int((sample.t - cutoff) / step_s)
            if selected and bucket == last_bucket:
                selected[-1] = sample
            else:
                selected.append(sample)
            last_bucket = bucket
        points = []
        for sample in selected:
            deltas: dict[str, int] = {}
            for key, value in sample.counters.items():
                base = int(prev.counters.get(key, 0)) if prev is not None else 0
                delta = int(value) - base
                if delta < 0:
                    delta = int(value)
                deltas[key] = delta
            lat = histogram_delta(
                prev.latency if prev is not None else None, sample.latency
            )
            points.append(
                {
                    "t": sample.t,
                    "age_s": float(now) - sample.t,
                    "gauges": dict(sample.gauges),
                    "deltas": deltas,
                    "latency": {
                        "count": lat.count,
                        "p50_ms": lat.percentile(50.0),
                        "p99_ms": lat.percentile(99.0),
                    },
                }
            )
            prev = sample
        return {
            "clock": float(now),
            "interval_s": self.interval,
            "capacity": self.capacity,
            "samples": len(snap),
            "window_s": window_s,
            "step_s": step_s,
            "points": points,
        }
