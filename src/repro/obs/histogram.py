"""Fixed log-bucket latency histograms that merge exactly across shards.

The serving stack previously kept raw per-request latency lists — memory
grew with traffic, and fleet percentiles were aggregated wrongly (median
of per-shard p50s, ``max`` of p99s).  A histogram with *pinned* bucket
bounds fixes both at once: memory is a constant ``len(BOUNDS_MS) + 1``
counters regardless of traffic, and because every shard buckets into the
same bounds, summing the counter vectors is an *exact* merge — the
cluster-wide percentile estimate equals what a single process observing
all requests would report.

Bucket scheme (``SCHEME``): geometric bounds ``0.05ms * sqrt(2)**i``,
two buckets per octave from 50µs to ~37s, plus one overflow bucket.
Percentiles interpolate linearly inside the covering bucket and clamp to
the observed ``[min_ms, max_ms]`` range, so single-observation and
narrow-spread histograms report exact values.  Mergers refuse mixed
schemes rather than silently blending incompatible bounds.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["BOUNDS_MS", "LatencyHistogram"]

#: Pinned bucket upper bounds in milliseconds (exclusive of the overflow
#: bucket).  Changing these breaks merge compatibility across versions —
#: bump ``SCHEME`` in the same commit.
BOUNDS_MS: tuple[float, ...] = tuple(
    0.05 * (2.0 ** (i / 2.0)) for i in range(40)
)


class LatencyHistogram:
    """Constant-memory latency sketch with exact cross-shard merge."""

    SCHEME = "log-sqrt2-v1"

    __slots__ = ("counts", "count", "sum_ms", "min_ms", "max_ms")

    def __init__(self) -> None:
        self.counts: list[int] = [0] * (len(BOUNDS_MS) + 1)
        self.count = 0
        self.sum_ms = 0.0
        self.min_ms = float("inf")
        self.max_ms = 0.0

    # ------------------------------------------------------------------ #
    def observe(self, value_ms: float) -> None:
        """Record one latency observation (milliseconds).

        Not synchronised: callers observing from several threads must hold
        their own lock (the service layer observes under its state lock).
        """
        value_ms = max(0.0, float(value_ms))
        self.counts[self._bucket_index(value_ms)] += 1
        self.count += 1
        self.sum_ms += value_ms
        if value_ms < self.min_ms:
            self.min_ms = value_ms
        if value_ms > self.max_ms:
            self.max_ms = value_ms

    @staticmethod
    def _bucket_index(value_ms: float) -> int:
        # Bisection over ~40 pinned bounds; bounds are sorted by
        # construction so the first bound >= value is the bucket.
        lo, hi = 0, len(BOUNDS_MS)
        while lo < hi:
            mid = (lo + hi) // 2
            if value_ms <= BOUNDS_MS[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # ------------------------------------------------------------------ #
    def merge(self, other: "LatencyHistogram | dict") -> "LatencyHistogram":
        """Fold ``other`` (histogram or its ``as_dict``) into self, exactly."""
        if isinstance(other, dict):
            other = LatencyHistogram.from_dict(other)
        if other.SCHEME != self.SCHEME:  # pragma: no cover - defensive
            raise ValueError(
                f"cannot merge histogram scheme {other.SCHEME!r} into "
                f"{self.SCHEME!r}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum_ms += other.sum_ms
        self.min_ms = min(self.min_ms, other.min_ms)
        self.max_ms = max(self.max_ms, other.max_ms)
        return self

    @classmethod
    def merged(
        cls, parts: Iterable["LatencyHistogram | dict"]
    ) -> "LatencyHistogram":
        out = cls()
        for part in parts:
            out.merge(part)
        return out

    # ------------------------------------------------------------------ #
    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0..100); 0.0 when empty."""
        if self.count == 0:
            return 0.0
        target = (q / 100.0) * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= target:
                lower = BOUNDS_MS[i - 1] if i > 0 else 0.0
                upper = BOUNDS_MS[i] if i < len(BOUNDS_MS) else self.max_ms
                fraction = (target - cumulative) / n
                value = lower + (upper - lower) * max(0.0, min(1.0, fraction))
                return float(min(max(value, self.min_ms), self.max_ms))
            cumulative += n
        return float(self.max_ms)  # pragma: no cover - defensive

    def fraction_over(self, threshold_ms: float) -> float:
        """Estimated fraction of observations above ``threshold_ms``.

        The SLO burn-rate engine's primitive: with a p99 objective the
        error budget is the fraction of requests allowed over the target,
        and this is the observed spend.  Counts whole buckets above the
        threshold exactly and splits the covering bucket linearly, so the
        estimate is within one bucket's population of the truth.
        """
        if self.count == 0:
            return 0.0
        threshold_ms = max(0.0, float(threshold_ms))
        idx = self._bucket_index(threshold_ms)
        below = sum(self.counts[:idx])
        covering = self.counts[idx]
        if covering:
            lower = BOUNDS_MS[idx - 1] if idx > 0 else 0.0
            upper = (
                BOUNDS_MS[idx]
                if idx < len(BOUNDS_MS)
                else max(self.max_ms, lower)
            )
            if upper > lower:
                fraction = (threshold_ms - lower) / (upper - lower)
                below += covering * max(0.0, min(1.0, fraction))
            else:
                below += covering
        over = self.count - below
        return float(max(0.0, min(1.0, over / self.count)))

    @property
    def mean_ms(self) -> float:
        return self.sum_ms / self.count if self.count else 0.0

    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict:
        """Mergeable snapshot; shape pinned by lint rule RL003."""
        return {
            "scheme": self.SCHEME,
            "count": self.count,
            "sum_ms": self.sum_ms,
            "min_ms": self.min_ms if self.count else 0.0,
            "max_ms": self.max_ms,
            "counts": list(self.counts),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyHistogram":
        scheme = data.get("scheme")
        if scheme != cls.SCHEME:
            raise ValueError(
                f"histogram snapshot scheme {scheme!r} does not match "
                f"{cls.SCHEME!r}"
            )
        out = cls()
        counts = list(data["counts"])
        if len(counts) != len(out.counts):
            raise ValueError("histogram snapshot has wrong bucket count")
        out.counts = [int(n) for n in counts]
        out.count = int(data["count"])
        out.sum_ms = float(data["sum_ms"])
        out.max_ms = float(data["max_ms"])
        out.min_ms = float(data["min_ms"]) if out.count else float("inf")
        return out

    def summary(self) -> dict:
        """The ``/metrics`` latency block: headline stats + merge payload."""
        return {
            "count": self.count,
            "p50_ms": self.percentile(50.0),
            "p99_ms": self.percentile(99.0),
            "mean_ms": self.mean_ms,
            "histogram": self.as_dict(),
        }
