"""Health state machine: ``ok → degraded → failing`` with typed reasons.

Turns an SLO evaluation (plus optional fleet signals) into the three
states a probe, a load balancer or the cluster supervisor can act on:

* ``ok`` — no objective burning, fleet complete, queue stable.
* ``degraded`` — something is wrong but the service still serves:
  one burn window breached, a shard down (respawn pending), or the
  dispatcher queue growing faster than it drains.
* ``failing`` — actively failing its users: the whole fleet is dead, or
  **both** burn windows are breached (the classic multi-window signal —
  burning now *and* persistently).  ``/healthz`` maps this state to
  HTTP 503 so load balancers eject the instance.

Every contributing condition is a machine-readable reason code
(``{"code", "detail"}``) — supervisors branch on ``code``, humans read
``detail``.  Recovery is implicit in the window algebra: when load
stops, the fast window clears within ~1 fast window (failing →
degraded) and the slow window within ~1 slow window (degraded → ok), so
a fleet returns to ``ok`` within two slow windows of the incident
ending without any reset hook.

:func:`evaluate_health` also emits the ``scale_hint`` block — the
contract the future autoscaler consumes: ``direction`` is ``"grow"``
(fast burn or sustained queue growth: more shards would help *now*),
``"shrink"`` (sustained headroom: the slow window saw traffic but p99
sits far under target with an idle queue) or ``"hold"``.

Pure functions over dicts: no clock, no I/O, no state — the windows
carry the time axis, which keeps every transition reproducible under an
injectable clock.
"""

from __future__ import annotations

__all__ = [
    "HEALTH_STATES",
    "REASON_FAST_BURN_AVAILABILITY",
    "REASON_FAST_BURN_P99",
    "REASON_FLEET_DOWN",
    "REASON_QUEUE_GROWTH",
    "REASON_SHARDS_DEAD",
    "REASON_SLOW_BURN_AVAILABILITY",
    "REASON_SLOW_BURN_P99",
    "REASON_SUSTAINED_HEADROOM",
    "STATE_DEGRADED",
    "STATE_FAILING",
    "STATE_OK",
    "evaluate_health",
    "state_value",
]

STATE_OK = "ok"
STATE_DEGRADED = "degraded"
STATE_FAILING = "failing"

#: Severity order; the index is the Prometheus gauge value.
HEALTH_STATES = (STATE_OK, STATE_DEGRADED, STATE_FAILING)

REASON_FAST_BURN_P99 = "fast_burn_p99"
REASON_FAST_BURN_AVAILABILITY = "fast_burn_availability"
REASON_SLOW_BURN_P99 = "slow_burn_p99"
REASON_SLOW_BURN_AVAILABILITY = "slow_burn_availability"
REASON_QUEUE_GROWTH = "queue_growth"
REASON_SHARDS_DEAD = "shards_dead"
REASON_FLEET_DOWN = "fleet_down"
REASON_SUSTAINED_HEADROOM = "sustained_headroom"

#: Queue depth (requests) below which growth is never flagged — tiny
#: absolute backlogs are noise, not a capacity signal.
QUEUE_GROWTH_MIN_DEPTH = 8.0

#: Shrink hints require the slow-window p99 to sit under this fraction
#: of the target — "comfortably under", not "barely under".
HEADROOM_P99_FRACTION = 0.25


def state_value(state: str) -> int:
    """Numeric severity of a state (``repro_health_state`` gauge value)."""
    return HEALTH_STATES.index(state)


def _burn_reasons(slo_status: dict) -> list[dict]:
    objective = slo_status["objective"]
    reasons: list[dict] = []
    specs = (
        ("fast", objective["fast_burn_threshold"],
         REASON_FAST_BURN_P99, REASON_FAST_BURN_AVAILABILITY),
        ("slow", objective["slow_burn_threshold"],
         REASON_SLOW_BURN_P99, REASON_SLOW_BURN_AVAILABILITY),
    )
    for window, threshold, latency_code, availability_code in specs:
        status = slo_status["windows"][window]
        if status["latency_burn"] >= threshold:
            reasons.append(
                {
                    "code": latency_code,
                    "detail": (
                        f"{window}-window latency burn "
                        f"{status['latency_burn']:.1f}x (>= {threshold:g}x): "
                        f"{status['fraction_over_target']:.1%} of requests "
                        f"over {objective['p99_ms']:g}ms"
                    ),
                }
            )
        if status["availability_burn"] >= threshold:
            reasons.append(
                {
                    "code": availability_code,
                    "detail": (
                        f"{window}-window availability burn "
                        f"{status['availability_burn']:.1f}x "
                        f"(>= {threshold:g}x): availability "
                        f"{status['availability']:.4f} vs target "
                        f"{objective['availability']:g}"
                    ),
                }
            )
    return reasons


def _queue_growth_reason(slo_status: dict) -> dict | None:
    queue = (
        slo_status["windows"]["fast"]["delta"]["gauges"].get("queue_depth")
    )
    if not queue:
        return None
    growing = (
        queue["last"] >= QUEUE_GROWTH_MIN_DEPTH
        and queue["last"] > queue["first"]
        and queue["last"] >= 2.0 * max(queue["first"], 1.0)
    )
    if not growing:
        return None
    return {
        "code": REASON_QUEUE_GROWTH,
        "detail": (
            f"queue depth grew {queue['first']:g} -> {queue['last']:g} "
            f"over the fast window (mean {queue['mean']:.1f}): arrivals "
            f"outpace the dispatcher"
        ),
    }


def _scale_hint(slo_status: dict, reasons: list[dict]) -> dict:
    codes = [r["code"] for r in reasons]
    grow_codes = [
        code
        for code in codes
        if code in (
            REASON_FAST_BURN_P99,
            REASON_FAST_BURN_AVAILABILITY,
            REASON_QUEUE_GROWTH,
        )
    ]
    if grow_codes:
        return {"direction": "grow", "reasons": grow_codes}
    slow = slo_status["windows"]["slow"]
    queue = slow["delta"]["gauges"].get("queue_depth") or {}
    headroom = (
        not codes
        and slow["requests"] > 0
        and slow["rejections"] == 0
        and slow["p99_ms"]
        <= slo_status["objective"]["p99_ms"] * HEADROOM_P99_FRACTION
        and queue.get("max", 0.0) < QUEUE_GROWTH_MIN_DEPTH
    )
    if headroom:
        return {"direction": "shrink", "reasons": [REASON_SUSTAINED_HEADROOM]}
    return {"direction": "hold", "reasons": []}


def evaluate_health(
    slo_status: dict,
    *,
    alive: int | None = None,
    shards: int | None = None,
) -> dict:
    """Fold an SLO evaluation (+ optional fleet liveness) into a state.

    ``alive``/``shards`` are supplied by the cluster router; a standalone
    daemon omits them.  Returns ``{"state", "reasons", "scale_hint"}`` —
    the block daemon and router ``/healthz`` serve and the supervisor's
    monitor loop consumes.
    """
    reasons = _burn_reasons(slo_status)
    queue_reason = _queue_growth_reason(slo_status)
    if queue_reason is not None:
        reasons.append(queue_reason)
    fleet_down = alive == 0 and shards is not None and shards > 0
    if fleet_down:
        reasons.append(
            {
                "code": REASON_FLEET_DOWN,
                "detail": f"0 of {shards} shards alive",
            }
        )
    elif alive is not None and shards is not None and alive < shards:
        reasons.append(
            {
                "code": REASON_SHARDS_DEAD,
                "detail": f"{alive} of {shards} shards alive",
            }
        )
    if fleet_down or (
        slo_status["fast_breach"] and slo_status["slow_breach"]
    ):
        state = STATE_FAILING
    elif reasons:
        state = STATE_DEGRADED
    else:
        state = STATE_OK
    return {
        "state": state,
        "reasons": reasons,
        "scale_hint": _scale_hint(slo_status, reasons),
    }
