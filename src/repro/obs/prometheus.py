"""Prometheus text exposition for the `/metrics` JSON documents.

``GET /metrics?format=prometheus`` renders the same numbers the JSON
document reports, as text exposition format version 0.0.4 — the format
every Prometheus-compatible scraper (Prometheus, VictoriaMetrics,
Grafana Agent) ingests.  Only metric families declared in
:data:`repro.obs.names.METRICS` can be emitted: the renderer iterates
that registry's ``HELP``/``TYPE`` metadata, so an undeclared family is a
``KeyError`` here and an RL007 finding at the call site, never a silent
new series.

Latency renders as a real Prometheus histogram (cumulative ``_bucket``
series over the pinned bounds, ``_sum``/``_count``), so ``histogram_quantile``
works out of the box and shard series aggregate exactly server-side.
"""

from __future__ import annotations

from .histogram import BOUNDS_MS
from . import names

__all__ = ["render_cluster_metrics", "render_service_metrics"]


def _fmt(value: float) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _labels(labels: dict | None) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class _Exposition:
    """Accumulates samples, emitting HELP/TYPE once per family."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._declared: set[str] = set()

    def _declare(self, name: str) -> None:
        if name in self._declared:
            return
        kind, help_text = names.METRICS[name]
        self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} {kind}")
        self._declared.add(name)

    def sample(
        self, name: str, value: float, labels: dict | None = None
    ) -> None:
        self._declare(name)
        self._lines.append(f"{name}{_labels(labels)} {_fmt(value)}")

    def histogram(
        self, name: str, snapshot: dict, labels: dict | None = None
    ) -> None:
        """Emit one histogram family from a ``LatencyHistogram.as_dict``."""
        self._declare(name)
        base = dict(labels or {})
        cumulative = 0
        counts = snapshot["counts"]
        for bound, count in zip(BOUNDS_MS, counts):
            cumulative += count
            bucket = dict(base, le=format(bound, ".6g"))
            self._lines.append(
                f"{name}_bucket{_labels(bucket)} {cumulative}"
            )
        cumulative += counts[len(BOUNDS_MS)]
        bucket = dict(base, le="+Inf")
        self._lines.append(f"{name}_bucket{_labels(bucket)} {cumulative}")
        self._lines.append(
            f"{name}_sum{_labels(base)} {_fmt(snapshot['sum_ms'])}"
        )
        self._lines.append(f"{name}_count{_labels(base)} {cumulative}")

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def _core_samples(
    exp: _Exposition, metrics: dict, labels: dict | None = None
) -> None:
    """Samples every service-shaped metrics dict (daemon, shard) carries."""
    exp.sample(names.METRIC_REQUESTS_TOTAL, metrics["requests_total"], labels)
    exp.sample(names.METRIC_REJECTIONS_TOTAL, metrics["rejections"], labels)
    exp.sample(names.METRIC_BATCHES_TOTAL, metrics["batches"], labels)
    exp.sample(names.METRIC_DEDUPED_TOTAL, metrics["deduped_in_batch"], labels)
    exp.sample(names.METRIC_FAST_HITS_TOTAL, metrics["fast_hits"], labels)
    exp.sample(names.METRIC_QUEUE_DEPTH, metrics["queue_depth"], labels)
    cache = metrics["cache"]
    exp.sample(names.METRIC_CACHE_HITS_TOTAL, cache["hits"], labels)
    exp.sample(names.METRIC_CACHE_MISSES_TOTAL, cache["misses"], labels)
    exp.sample(names.METRIC_CACHE_SIZE, cache.get("size", 0), labels)
    histogram = metrics["latency"].get("histogram")
    if histogram is not None:
        exp.histogram(names.METRIC_LATENCY_MS, histogram, labels)


#: health-state string -> gauge value, pinned by ``health.HEALTH_STATES``.
_STATE_VALUES = {"ok": 0, "degraded": 1, "failing": 2}
_HINT_VALUES = {"shrink": -1, "hold": 0, "grow": 1}


def _signal_samples(
    exp: _Exposition, metrics: dict, labels: dict | None = None
) -> None:
    """SLO / health / history gauges, when the document carries them."""
    health = metrics.get("health")
    if isinstance(health, dict):
        exp.sample(
            names.METRIC_HEALTH_STATE,
            _STATE_VALUES.get(health.get("state"), 0),
            labels,
        )
        hint = health.get("scale_hint") or {}
        exp.sample(
            names.METRIC_SCALE_HINT,
            _HINT_VALUES.get(hint.get("direction"), 0),
            labels,
        )
    slo = metrics.get("slo")
    if isinstance(slo, dict):
        exp.sample(names.METRIC_SLO_FAST_BURN, slo["fast_burn"], labels)
        exp.sample(names.METRIC_SLO_SLOW_BURN, slo["slow_burn"], labels)
    history = metrics.get("history")
    if isinstance(history, dict):
        exp.sample(
            names.METRIC_HISTORY_SAMPLES, history["samples"], labels
        )


def _trace_samples(
    exp: _Exposition, metrics: dict, labels: dict | None = None
) -> None:
    traces = metrics.get("traces")
    if traces is None:
        return
    exp.sample(names.METRIC_TRACES_STORED, traces["stored"], labels)
    exp.sample(names.METRIC_SLOW_REQUESTS_TOTAL, traces["slow_total"], labels)


def render_service_metrics(metrics: dict) -> str:
    """Exposition for the single-daemon / shard ``/metrics`` document."""
    exp = _Exposition()
    _core_samples(exp, metrics)
    _trace_samples(exp, metrics)
    _signal_samples(exp, metrics)
    exp.sample(names.METRIC_UPTIME_SECONDS, metrics["uptime_seconds"])
    return exp.render()


def render_cluster_metrics(metrics: dict) -> str:
    """Exposition for the router's aggregated ``/metrics`` document.

    Cluster-wide series carry no labels (they are the exact merge across
    the fleet); the same families repeat per shard with a ``shard`` label
    so imbalance stays diagnosable from one scrape.
    """
    exp = _Exposition()
    cluster = metrics["cluster"]
    router = metrics["router"]
    _core_samples(exp, cluster)
    exp.sample(names.METRIC_FORWARDS_TOTAL, router["requests_total"])
    exp.sample(names.METRIC_ROUTE_ERRORS_TOTAL, router["routing_errors"])
    exp.sample(names.METRIC_SHARDS, cluster["shards"])
    _trace_samples(exp, router)
    _signal_samples(exp, metrics)
    exp.sample(names.METRIC_UPTIME_SECONDS, cluster["uptime_seconds"])
    for shard_id, entry in sorted(metrics.get("shards", {}).items()):
        snapshot = entry.get("metrics") if isinstance(entry, dict) else None
        if not isinstance(snapshot, dict):
            continue  # an unreachable shard reports no snapshot
        labels = {"shard": str(shard_id)}
        _core_samples(exp, snapshot, labels)
        _trace_samples(exp, snapshot, labels)
        _signal_samples(exp, snapshot, labels)
    return exp.render()
