"""Pinned registry of every span and metric name the stack may emit.

Observability names are load-bearing: dashboards, the Prometheus scrape
in CI and the stitched-trace assertions all key off these exact strings,
and a typo'd name does not fail loudly — the series silently vanishes.
Every span opened through :meth:`repro.obs.tracing.Trace.span` /
:meth:`~repro.obs.tracing.Trace.record_span` and every metric family
rendered by :mod:`repro.obs.prometheus` must therefore reference one of
the constants below; lint rule RL007 enforces that statically (string
literals at a span call site, or ``repro_*`` literals outside this
module, are findings).

Adding a name is a deliberate act: declare the constant here, add it to
the registry mapping, and the rule accepts it everywhere.
"""

from __future__ import annotations

__all__ = [
    "METRICS",
    "METRIC_NAMES",
    "SPAN_NAMES",
]

# ---------------------------------------------------------------------- #
# span names (one constant per pipeline stage)
# ---------------------------------------------------------------------- #
#: Root span of one HTTP request (daemon, shard or router side).
SPAN_REQUEST = "request"
#: Body read + JSON decode.
SPAN_PARSE = "parse"
#: Payload canonicalisation + content fingerprint.
SPAN_FINGERPRINT = "fingerprint"
#: Fingerprint-cache probe (hit or miss).
SPAN_CACHE_LOOKUP = "cache_lookup"
#: Enqueue -> micro-batch drain (dispatcher pickup).
SPAN_QUEUE_WAIT = "queue_wait"
#: Pool submit -> scheduler result for the request's batch.
SPAN_BATCH_COMPUTE = "batch_compute"
#: Response dict -> JSON bytes on the wire.
SPAN_SERIALIZE = "serialize"
#: Router: shard-ring resolution (route-cache probe included).
SPAN_ROUTE = "route"
#: Router: one forward attempt to a shard (meta: shard, attempt).
SPAN_FORWARD = "forward"
#: Trusted-header fast path serving a cached result without parsing.
SPAN_FAST_HIT = "fast_hit"
#: One online-replay epoch's kernel compute.
SPAN_EPOCH = "epoch"

#: Every span name a tracer may record.
SPAN_NAMES = frozenset(
    {
        SPAN_REQUEST,
        SPAN_PARSE,
        SPAN_FINGERPRINT,
        SPAN_CACHE_LOOKUP,
        SPAN_QUEUE_WAIT,
        SPAN_BATCH_COMPUTE,
        SPAN_SERIALIZE,
        SPAN_ROUTE,
        SPAN_FORWARD,
        SPAN_FAST_HIT,
        SPAN_EPOCH,
    }
)

# ---------------------------------------------------------------------- #
# metric family names (Prometheus exposition)
# ---------------------------------------------------------------------- #
METRIC_REQUESTS_TOTAL = "repro_requests_total"
METRIC_REJECTIONS_TOTAL = "repro_rejections_total"
METRIC_BATCHES_TOTAL = "repro_batches_total"
METRIC_DEDUPED_TOTAL = "repro_deduped_in_batch_total"
METRIC_FAST_HITS_TOTAL = "repro_fast_hits_total"
METRIC_QUEUE_DEPTH = "repro_queue_depth"
METRIC_CACHE_HITS_TOTAL = "repro_cache_hits_total"
METRIC_CACHE_MISSES_TOTAL = "repro_cache_misses_total"
METRIC_CACHE_SIZE = "repro_cache_size"
METRIC_LATENCY_MS = "repro_request_latency_ms"
METRIC_UPTIME_SECONDS = "repro_uptime_seconds"
METRIC_TRACES_STORED = "repro_traces_stored"
METRIC_SLOW_REQUESTS_TOTAL = "repro_slow_requests_total"
METRIC_FORWARDS_TOTAL = "repro_forwards_total"
METRIC_ROUTE_ERRORS_TOTAL = "repro_route_errors_total"
METRIC_SHARDS = "repro_shards"
METRIC_HEALTH_STATE = "repro_health_state"
METRIC_SLO_FAST_BURN = "repro_slo_fast_burn_rate"
METRIC_SLO_SLOW_BURN = "repro_slo_slow_burn_rate"
METRIC_SCALE_HINT = "repro_scale_hint"
METRIC_HISTORY_SAMPLES = "repro_history_samples"

#: name -> (prometheus type, help text).  The exposition renderer iterates
#: this mapping, so a family that is not declared here cannot be emitted.
METRICS: dict[str, tuple[str, str]] = {
    METRIC_REQUESTS_TOTAL: ("counter", "Requests accepted by the service"),
    METRIC_REJECTIONS_TOTAL: ("counter", "Requests rejected at admission"),
    METRIC_BATCHES_TOTAL: ("counter", "Micro-batches dispatched to the pool"),
    METRIC_DEDUPED_TOTAL: ("counter", "Requests deduplicated inside a batch"),
    METRIC_FAST_HITS_TOTAL: (
        "counter",
        "Trusted-header fast-path cache hits",
    ),
    METRIC_QUEUE_DEPTH: ("gauge", "Requests waiting for the dispatcher"),
    METRIC_CACHE_HITS_TOTAL: ("counter", "Fingerprint cache hits"),
    METRIC_CACHE_MISSES_TOTAL: ("counter", "Fingerprint cache misses"),
    METRIC_CACHE_SIZE: ("gauge", "Entries resident in the fingerprint cache"),
    METRIC_LATENCY_MS: (
        "histogram",
        "End-to-end request latency in milliseconds",
    ),
    METRIC_UPTIME_SECONDS: ("gauge", "Seconds since the service started"),
    METRIC_TRACES_STORED: ("gauge", "Traces resident in the ring buffer"),
    METRIC_SLOW_REQUESTS_TOTAL: (
        "counter",
        "Requests slower than the slow-log threshold",
    ),
    METRIC_FORWARDS_TOTAL: ("counter", "Router forwards that reached a shard"),
    METRIC_ROUTE_ERRORS_TOTAL: (
        "counter",
        "Router forwards that exhausted every retry",
    ),
    METRIC_SHARDS: ("gauge", "Shards the router currently fans out to"),
    METRIC_HEALTH_STATE: (
        "gauge",
        "Health state (0=ok, 1=degraded, 2=failing)",
    ),
    METRIC_SLO_FAST_BURN: (
        "gauge",
        "Worst-objective SLO burn rate over the fast window",
    ),
    METRIC_SLO_SLOW_BURN: (
        "gauge",
        "Worst-objective SLO burn rate over the slow window",
    ),
    METRIC_SCALE_HINT: (
        "gauge",
        "Autoscaling hint (-1=shrink, 0=hold, 1=grow)",
    ),
    METRIC_HISTORY_SAMPLES: (
        "gauge",
        "Samples resident in the metric history ring",
    ),
}

#: Every metric family name the exposition may emit.
METRIC_NAMES = frozenset(METRICS)
