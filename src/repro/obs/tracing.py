"""Contextvar span tracer with deterministic ids and a bounded store.

One :class:`Trace` follows one request through the stack.  Spans opened
with :meth:`Trace.span` nest via a ``contextvars`` context variable, so
the handler thread gets parent/child structure for free; stages that run
on *other* threads (the dispatcher's queue-wait and batch-compute
accounting) stamp their own perf-counter interval and attach it with
:meth:`Trace.record_span` instead.

Trace ids come from a seeded :class:`Tracer` counter, not the wall clock
or ``uuid4`` — the same construction order yields the same ids, which
keeps cluster tests reproducible (lint rule RL002 bans unseeded
randomness for exactly this reason).  Across the router→shard hop the
*router's* id travels in the ``X-Repro-Trace-Id`` header and the shard
adopts it, so ``GET /trace/<id>`` can stitch both components into one
timeline.

The :class:`TraceStore` is a fixed-capacity ring: old traces fall off,
memory stays constant under sustained load, and requests slower than the
configured threshold are summarised into a separate bounded slow log
before eviction can lose them.

Span and metric *names* are pinned in :mod:`repro.obs.names`; RL007
rejects ad-hoc literals at ``span()``/``record_span()`` call sites.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from contextvars import ContextVar
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Callable

from .names import SPAN_NAMES

__all__ = ["Span", "Trace", "TraceStore", "Tracer"]

#: The innermost open span of the trace this context is currently inside,
#: as ``(trace_id, span_id)`` — used only to parent nested spans.
_CURRENT_SPAN: ContextVar[tuple[str, str] | None] = ContextVar(
    "repro-obs-current-span", default=None
)


@dataclass(slots=True)
class Span:
    """One recorded pipeline stage inside a trace."""

    span_id: str
    name: str
    start_ms: float  # offset from the trace's start
    duration_ms: float
    parent_id: str | None = None
    meta: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "start_ms": self.start_ms,
            "duration_ms": self.duration_ms,
            "parent_id": self.parent_id,
            "meta": dict(self.meta),
        }


class Trace:
    """All spans one request produced inside one component.

    The hot path appends raw ``(name, start, end, parent_id, meta)``
    tuples — no :class:`Span` objects, no id strings, no lock (CPython
    list appends and index assignments are atomic) — and materialises
    :class:`Span` objects lazily in :attr:`spans`.  Recording is on every
    request's critical path; reading happens only when somebody asks for
    the trace.  The lock guards only slot *reservation* in span blocks,
    where ``len`` + ``append`` must be atomic across threads.
    """

    __slots__ = (
        "trace_id",
        "component",
        "started_at",
        "duration_ms",
        "_t0",
        "_clock",
        "_spans",
        "_lock",
    )

    def __init__(
        self,
        trace_id: str,
        component: str,
        *,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.trace_id = trace_id
        self.component = component
        # Wall-clock epoch for DISPLAY ONLY ("when did this happen").  All
        # duration math — trace duration, span offsets, span durations —
        # runs on the injectable monotonic ``clock``: wall clocks step
        # (NTP, suspend/resume) and a stepped delta is a lie.
        self.started_at = time.time()
        self.duration_ms: float = 0.0
        self._clock = clock
        self._t0 = clock()
        # None = slot reserved by an open span block, filled on exit.
        self._spans: list[tuple | None] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def span(self, name: str, **meta) -> "_SpanBlock":
        """Open a nested span around a code block (same-thread stages).

        The ``with`` block receives the span's ``meta`` dict so it can
        attach results (e.g. ``cache_hit``) before the span closes.  A
        dedicated context-manager class (not ``@contextmanager``) keeps
        the per-span cost low enough for the warm-path overhead gate.
        """
        if name not in SPAN_NAMES:
            raise ValueError(f"span name {name!r} is not in repro.obs.names")
        return _SpanBlock(self, name, meta)

    def record_span(self, name: str, start: float, end: float, **meta) -> None:
        """Attach an already-measured interval (any thread).

        ``start``/``end`` must come from the same monotonic clock the trace
        was created with (``time.perf_counter`` by default) — never from
        ``time.time()``, whose steps would corrupt the offset math.
        """
        if name not in SPAN_NAMES:
            raise ValueError(f"span name {name!r} is not in repro.obs.names")
        self._spans.append((name, start, end, None, meta))

    # ------------------------------------------------------------------ #
    def finish(self) -> "Trace":
        self.duration_ms = (self._clock() - self._t0) * 1000.0
        return self

    @property
    def spans(self) -> list[Span]:
        entries = self._spans[:]  # atomic snapshot; appenders never block
        return [
            Span(
                span_id=f"s{index}",
                name=name,
                start_ms=(start - self._t0) * 1000.0,
                duration_ms=max(0.0, (end - start) * 1000.0),
                parent_id=parent_id,
                meta=meta,
            )
            for index, entry in enumerate(entries)
            if entry is not None
            for (name, start, end, parent_id, meta) in (entry,)
        ]

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "component": self.component,
            "started_at": self.started_at,
            "duration_ms": self.duration_ms,
            "spans": [s.as_dict() for s in self.spans],
        }


class _SpanBlock:
    """Context manager for one :meth:`Trace.span` block."""

    __slots__ = ("_trace", "_name", "_meta", "_index", "_parent_id", "_token", "_start")

    def __init__(self, trace: Trace, name: str, meta: dict) -> None:
        self._trace = trace
        self._name = name
        self._meta = meta

    def __enter__(self) -> dict:
        trace = self._trace
        parent = _CURRENT_SPAN.get()
        self._parent_id = (
            parent[1] if parent and parent[0] == trace.trace_id else None
        )
        # Reserve the id up-front so children opened inside the block can
        # parent onto this span even though it is appended on exit.
        with trace._lock:
            self._index = len(trace._spans)
            trace._spans.append(None)  # type: ignore[arg-type]  # placeholder
        self._token = _CURRENT_SPAN.set((trace.trace_id, f"s{self._index}"))
        self._start = trace._clock()
        return self._meta

    def __exit__(self, exc_type, exc, tb) -> None:
        end = self._trace._clock()
        _CURRENT_SPAN.reset(self._token)
        # Index assignment is atomic; only the reservation needed the lock.
        self._trace._spans[self._index] = (
            self._name, self._start, end, self._parent_id, self._meta
        )


class Tracer:
    """Mints traces with deterministic ids from a seeded counter."""

    def __init__(
        self,
        component: str,
        *,
        seed: int = 0,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.component = component
        self.seed = int(seed)
        self.clock = clock
        self._counter = 0
        self._lock = threading.Lock()

    def next_id(self) -> str:
        with self._lock:
            n = self._counter
            self._counter += 1
        material = f"{self.component}:{self.seed}:{n}".encode()
        return blake2b(material, digest_size=8).hexdigest()

    def start(self, trace_id: str | None = None) -> Trace:
        """Begin a trace, adopting a propagated id when one is given."""
        return Trace(
            trace_id or self.next_id(), self.component, clock=self.clock
        )


class TraceStore:
    """Fixed-capacity trace ring buffer plus a bounded slow-request log."""

    def __init__(
        self,
        capacity: int = 256,
        *,
        slow_ms: float = 500.0,
        slow_capacity: int = 64,
        on_slow: Callable[[dict], None] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("trace store capacity must be >= 1")
        self.capacity = int(capacity)
        self.slow_ms = float(slow_ms)
        self._traces: OrderedDict[str, Trace] = OrderedDict()
        self._slow_log: deque[dict] = deque(maxlen=int(slow_capacity))
        self._slow_total = 0
        self._on_slow = on_slow
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def add(self, trace: Trace) -> None:
        slow_entry = None
        with self._lock:
            self._traces[trace.trace_id] = trace
            self._traces.move_to_end(trace.trace_id)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)
            if trace.duration_ms >= self.slow_ms:
                self._slow_total += 1
                slow_entry = self._summary(trace)
                self._slow_log.append(slow_entry)
        if slow_entry is not None and self._on_slow is not None:
            self._on_slow(slow_entry)

    def get(self, trace_id: str) -> Trace | None:
        with self._lock:
            return self._traces.get(trace_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    @property
    def slow_total(self) -> int:
        with self._lock:
            return self._slow_total

    # ------------------------------------------------------------------ #
    @staticmethod
    def _summary(trace: Trace) -> dict:
        return {
            "trace_id": trace.trace_id,
            "component": trace.component,
            "started_at": trace.started_at,
            "duration_ms": trace.duration_ms,
            "num_spans": sum(1 for e in trace._spans if e is not None),
        }

    def summaries(self, *, slow_ms: float | None = None) -> list[dict]:
        """Newest-first trace summaries, optionally only those >= slow_ms."""
        with self._lock:
            traces = list(self._traces.values())
        rows = [
            self._summary(t)
            for t in reversed(traces)
            if slow_ms is None or t.duration_ms >= slow_ms
        ]
        return rows

    def slow_log(self) -> list[dict]:
        with self._lock:
            return list(self._slow_log)
