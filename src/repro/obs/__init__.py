"""`repro.obs` — stdlib-only observability: tracing, histograms, exposition.

The three pillars, threaded through every serving and replay layer:

- :mod:`repro.obs.tracing` — contextvar span tracer with deterministic
  seeded ids, ``X-Repro-Trace-Id`` propagation across the router→shard
  hop, and a bounded ring-buffer :class:`TraceStore` behind
  ``GET /trace/<id>`` / ``GET /traces``.
- :mod:`repro.obs.histogram` — fixed log-bucket latency histograms that
  merge *exactly* across shards, replacing unbounded latency lists and
  the max-of-p99s fleet aggregation.
- :mod:`repro.obs.prometheus` — text exposition of the same numbers via
  ``GET /metrics?format=prometheus``.

Every span/metric name is pinned in :mod:`repro.obs.names`; lint rule
RL007 keeps call sites honest.
"""

from .histogram import BOUNDS_MS, LatencyHistogram
from .names import METRIC_NAMES, METRICS, SPAN_NAMES
from .prometheus import render_cluster_metrics, render_service_metrics
from .tracing import Span, Trace, TraceStore, Tracer

__all__ = [
    "BOUNDS_MS",
    "LatencyHistogram",
    "METRICS",
    "METRIC_NAMES",
    "SPAN_NAMES",
    "Span",
    "Trace",
    "TraceStore",
    "Tracer",
    "render_cluster_metrics",
    "render_service_metrics",
]
