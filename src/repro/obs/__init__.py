"""`repro.obs` — stdlib-only observability: tracing, histograms, exposition.

The pillars, threaded through every serving and replay layer:

- :mod:`repro.obs.tracing` — contextvar span tracer with deterministic
  seeded ids, ``X-Repro-Trace-Id`` propagation across the router→shard
  hop, and a bounded ring-buffer :class:`TraceStore` behind
  ``GET /trace/<id>`` / ``GET /traces``.
- :mod:`repro.obs.histogram` — fixed log-bucket latency histograms that
  merge *exactly* across shards, replacing unbounded latency lists and
  the max-of-p99s fleet aggregation.
- :mod:`repro.obs.timeseries` — fixed-memory :class:`MetricRing` of
  gauge/counter/histogram samples; window deltas reconstruct any recent
  interval's exact distribution from two cumulative snapshots.
- :mod:`repro.obs.slo` — multi-window (fast/slow) burn-rate evaluation
  of p99-latency and availability objectives over those window deltas.
- :mod:`repro.obs.health` — the ``ok → degraded → failing`` state
  machine with machine-readable reasons and the ``scale_hint`` contract.
- :mod:`repro.obs.prometheus` — text exposition of the same numbers via
  ``GET /metrics?format=prometheus``.

Every span/metric name is pinned in :mod:`repro.obs.names`; lint rule
RL007 keeps call sites honest.
"""

from .health import (
    HEALTH_STATES,
    STATE_DEGRADED,
    STATE_FAILING,
    STATE_OK,
    evaluate_health,
    state_value,
)
from .histogram import BOUNDS_MS, LatencyHistogram
from .names import METRIC_NAMES, METRICS, SPAN_NAMES
from .prometheus import render_cluster_metrics, render_service_metrics
from .slo import SLO, evaluate_slo, window_status
from .timeseries import MetricRing, MetricSample, WindowDelta
from .tracing import Span, Trace, TraceStore, Tracer

__all__ = [
    "BOUNDS_MS",
    "HEALTH_STATES",
    "LatencyHistogram",
    "METRICS",
    "METRIC_NAMES",
    "MetricRing",
    "MetricSample",
    "SLO",
    "SPAN_NAMES",
    "STATE_DEGRADED",
    "STATE_FAILING",
    "STATE_OK",
    "Span",
    "Trace",
    "TraceStore",
    "Tracer",
    "WindowDelta",
    "evaluate_health",
    "evaluate_slo",
    "render_cluster_metrics",
    "render_service_metrics",
    "state_value",
    "window_status",
]
