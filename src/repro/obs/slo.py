"""SLO definitions evaluated as multi-window burn rates.

An :class:`SLO` pins two objectives for the serving stack:

* **latency** — at most 1% of requests in a window may exceed
  ``p99_ms`` (that is what "p99 target" means as an objective);
* **availability** — at least ``availability`` of the offered requests
  must be admitted (``1 - rejections/offered``; the service's only
  self-inflicted errors are admission rejections under backpressure).

Each objective's **burn rate** is its observed error rate divided by the
budgeted error rate: burn 1.0 consumes the budget exactly as fast as
allowed, burn 10 consumes it ten times too fast.  Following the
multi-window alerting pattern, every objective is evaluated over a
*fast* window (~1 min: is it burning **now**?) and a *slow* window
(~10 min: has it been burning **persistently**?) — a fast-only spike
recovers on its own within a fast window; fast+slow together means the
budget is genuinely draining.

Evaluation consumes :class:`~repro.obs.timeseries.WindowDelta` objects,
which merge exactly across shards (sum counters, sum histogram
buckets), so the router's cluster-wide burn rates are computed from the
true fleet distribution via ``LatencyHistogram.merge`` — never from
per-shard percentile roll-ups.
"""

from __future__ import annotations

from dataclasses import dataclass

from .timeseries import WindowDelta

__all__ = ["SLO", "evaluate_slo", "window_status"]

#: Fraction of requests the p99 objective lets exceed the target.
P99_BUDGET = 0.01


@dataclass(frozen=True)
class SLO:
    """One service-level objective set, evaluated over two windows.

    ``fast_burn_threshold`` / ``slow_burn_threshold`` are the burn-rate
    multiples at which the corresponding window counts as breached: the
    fast threshold is high (only a sharp, current burn trips it), the
    slow threshold low (any sustained overconsumption trips it).
    """

    p99_ms: float = 500.0
    availability: float = 0.999
    fast_window_s: float = 60.0
    slow_window_s: float = 600.0
    fast_burn_threshold: float = 10.0
    slow_burn_threshold: float = 2.0

    def __post_init__(self) -> None:
        if self.p99_ms <= 0:
            raise ValueError("p99_ms must be positive")
        if not 0.0 < self.availability < 1.0:
            raise ValueError("availability must be in (0, 1)")
        if self.fast_window_s <= 0 or self.slow_window_s < self.fast_window_s:
            raise ValueError(
                "windows must satisfy 0 < fast_window_s <= slow_window_s"
            )
        if self.fast_burn_threshold <= 0 or self.slow_burn_threshold <= 0:
            raise ValueError("burn thresholds must be positive")

    def as_dict(self) -> dict:
        return {
            "p99_ms": self.p99_ms,
            "availability": self.availability,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "fast_burn_threshold": self.fast_burn_threshold,
            "slow_burn_threshold": self.slow_burn_threshold,
        }


def window_status(slo: SLO, delta: WindowDelta) -> dict:
    """Evaluate one window delta against the objectives.

    ``burn`` is the worst objective's burn rate.  An empty window (no
    requests observed) burns nothing — idleness never breaches an SLO.
    The raw ``delta`` rides along so aggregators (the cluster router)
    can merge windows across shards exactly before re-evaluating.
    """
    admitted = delta.counter("requests_total")
    rejections = delta.counter("rejections")
    offered = admitted + rejections
    fraction_over = (
        delta.latency.fraction_over(slo.p99_ms) if delta.latency.count else 0.0
    )
    latency_burn = fraction_over / P99_BUDGET
    availability_budget = 1.0 - slo.availability
    error_rate = rejections / offered if offered else 0.0
    availability_burn = error_rate / availability_budget
    return {
        "duration_s": delta.duration_s,
        "requests": admitted,
        "rejections": rejections,
        "p99_ms": delta.latency.percentile(99.0),
        "fraction_over_target": fraction_over,
        "latency_burn": latency_burn,
        "availability": 1.0 - error_rate,
        "availability_burn": availability_burn,
        "burn": max(latency_burn, availability_burn),
        "delta": delta.as_dict(),
    }


def evaluate_slo(slo: SLO, fast: WindowDelta, slow: WindowDelta) -> dict:
    """The ``slo`` block of a ``/metrics`` document.

    ``fast_breach`` / ``slow_breach`` compare each window's worst burn
    against its threshold; ``compliant`` is the headline bit (no window
    breached).  The health state machine consumes exactly this shape.
    """
    fast_status = window_status(slo, fast)
    slow_status = window_status(slo, slow)
    fast_breach = fast_status["burn"] >= slo.fast_burn_threshold
    slow_breach = slow_status["burn"] >= slo.slow_burn_threshold
    return {
        "objective": slo.as_dict(),
        "windows": {"fast": fast_status, "slow": slow_status},
        "fast_burn": fast_status["burn"],
        "slow_burn": slow_status["burn"],
        "fast_breach": fast_breach,
        "slow_breach": slow_breach,
        "compliant": not (fast_breach or slow_breach),
    }
