"""Synthetic workloads: random families, adversarial stress instances, ocean AMR."""

from .generators import (
    WORKLOAD_FAMILIES,
    as_rng,
    heavy_tailed_instance,
    make_workload,
    mixed_instance,
    random_monotonic_instance,
    rigid_heavy_instance,
    uniform_instance,
)
from .adversarial import (
    fragmentation_instance,
    lpt_worst_case_instance,
    property3_stress_instances,
    shelf_overflow_instance,
)
from .arrivals import (
    ARRIVAL_PATTERNS,
    burst_trace,
    diurnal_trace,
    make_trace,
    poisson_trace,
)
from .ocean import ocean_instance, refinement_field

__all__ = [
    "ARRIVAL_PATTERNS",
    "WORKLOAD_FAMILIES",
    "burst_trace",
    "diurnal_trace",
    "make_trace",
    "poisson_trace",
    "as_rng",
    "uniform_instance",
    "mixed_instance",
    "heavy_tailed_instance",
    "rigid_heavy_instance",
    "random_monotonic_instance",
    "make_workload",
    "property3_stress_instances",
    "shelf_overflow_instance",
    "fragmentation_instance",
    "lpt_worst_case_instance",
    "ocean_instance",
    "refinement_field",
]
