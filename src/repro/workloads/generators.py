"""Synthetic workload generators.

The paper announces average-case experiments but does not publish its
workloads, so this module provides the classical families used to evaluate
malleable-task schedulers.  Every generator takes an explicit seed or
:class:`numpy.random.Generator` and returns an
:class:`~repro.model.instance.Instance` whose tasks all satisfy the monotonic
assumption (profiles are produced through the speedup models of
:mod:`repro.model.speedup` and repaired into their monotonic envelope).

Families
--------
``uniform_instance``
    Independent sequential times, a single speedup model.
``mixed_instance``
    Sequential times drawn from a log-uniform range with a mixture of speedup
    behaviours (highly scalable, moderately scalable, nearly sequential) —
    the default workload of the experiment harness.
``heavy_tailed_instance``
    Pareto-distributed sequential times: a few dominant tasks, many tiny
    ones; stresses the knapsack branch.
``rigid_heavy_instance``
    Tasks with bounded parallelism (threshold speedups); stresses the list
    branch and the strip-packing baselines.
``random_monotonic_instance``
    Fully random monotonic profiles without any parametric structure, used by
    the property-based tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ModelError
from ..model.instance import Instance
from ..model.speedup import (
    AmdahlSpeedup,
    CommunicationOverheadSpeedup,
    PowerLawSpeedup,
    SpeedupModel,
    ThresholdSpeedup,
)
from ..model.task import MalleableTask

__all__ = [
    "as_rng",
    "uniform_instance",
    "mixed_instance",
    "heavy_tailed_instance",
    "rigid_heavy_instance",
    "random_monotonic_instance",
    "WORKLOAD_FAMILIES",
    "make_workload",
]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalise a seed or generator into a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _draw_speedup_model(rng: np.random.Generator) -> SpeedupModel:
    """A random speedup model from a realistic mixture."""
    kind = rng.choice(["amdahl", "powerlaw", "comm", "threshold"], p=[0.35, 0.3, 0.2, 0.15])
    if kind == "amdahl":
        return AmdahlSpeedup(serial_fraction=float(rng.uniform(0.01, 0.4)))
    if kind == "powerlaw":
        return PowerLawSpeedup(alpha=float(rng.uniform(0.5, 0.98)))
    if kind == "comm":
        return CommunicationOverheadSpeedup(overhead=float(rng.uniform(0.001, 0.05)))
    return ThresholdSpeedup(parallelism=int(rng.integers(1, 17)))


def uniform_instance(
    num_tasks: int,
    num_procs: int,
    *,
    seed: int | np.random.Generator | None = None,
    time_range: tuple[float, float] = (1.0, 10.0),
    serial_fraction: float = 0.1,
    name: str = "uniform",
) -> Instance:
    """Uniform sequential times, one Amdahl speedup model for every task."""
    if num_tasks < 1 or num_procs < 1:
        raise ModelError("num_tasks and num_procs must be >= 1")
    rng = as_rng(seed)
    model = AmdahlSpeedup(serial_fraction=serial_fraction)
    tasks = [
        model.make_task(f"T{i}", float(rng.uniform(*time_range)), num_procs)
        for i in range(num_tasks)
    ]
    return Instance(tasks, num_procs, name=name)


def mixed_instance(
    num_tasks: int,
    num_procs: int,
    *,
    seed: int | np.random.Generator | None = None,
    time_range: tuple[float, float] = (0.5, 20.0),
    name: str = "mixed",
) -> Instance:
    """Log-uniform sequential times with a mixture of speedup behaviours."""
    if num_tasks < 1 or num_procs < 1:
        raise ModelError("num_tasks and num_procs must be >= 1")
    rng = as_rng(seed)
    lo, hi = time_range
    tasks = []
    for i in range(num_tasks):
        seq = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        model = _draw_speedup_model(rng)
        tasks.append(model.make_task(f"T{i}", seq, num_procs))
    return Instance(tasks, num_procs, name=name)


def heavy_tailed_instance(
    num_tasks: int,
    num_procs: int,
    *,
    seed: int | np.random.Generator | None = None,
    pareto_shape: float = 1.5,
    scale: float = 1.0,
    name: str = "heavy-tailed",
) -> Instance:
    """Pareto-distributed sequential times (a few dominant tasks).

    Large tasks receive scalable profiles (they dominate the schedule and
    must be parallelised) while small tasks get modest speedups — the regime
    in which the knapsack branch of the algorithm matters most.
    """
    if num_tasks < 1 or num_procs < 1:
        raise ModelError("num_tasks and num_procs must be >= 1")
    rng = as_rng(seed)
    seq_times = scale * (1.0 + rng.pareto(pareto_shape, size=num_tasks))
    median = float(np.median(seq_times))
    tasks = []
    for i, seq in enumerate(seq_times):
        if seq >= median:
            model: SpeedupModel = PowerLawSpeedup(alpha=float(rng.uniform(0.8, 0.98)))
        else:
            model = AmdahlSpeedup(serial_fraction=float(rng.uniform(0.2, 0.6)))
        tasks.append(model.make_task(f"T{i}", float(seq), num_procs))
    return Instance(tasks, num_procs, name=name)


def rigid_heavy_instance(
    num_tasks: int,
    num_procs: int,
    *,
    seed: int | np.random.Generator | None = None,
    max_parallelism_fraction: float = 0.5,
    time_range: tuple[float, float] = (1.0, 8.0),
    name: str = "rigid-heavy",
) -> Instance:
    """Tasks with a hard parallelism bound (threshold speedups)."""
    if num_tasks < 1 or num_procs < 1:
        raise ModelError("num_tasks and num_procs must be >= 1")
    rng = as_rng(seed)
    max_par = max(1, int(round(max_parallelism_fraction * num_procs)))
    tasks = []
    for i in range(num_tasks):
        model = ThresholdSpeedup(parallelism=int(rng.integers(1, max_par + 1)))
        seq = float(rng.uniform(*time_range))
        tasks.append(model.make_task(f"T{i}", seq, num_procs))
    return Instance(tasks, num_procs, name=name)


def random_monotonic_instance(
    num_tasks: int,
    num_procs: int,
    *,
    seed: int | np.random.Generator | None = None,
    time_range: tuple[float, float] = (0.1, 10.0),
    name: str = "random-monotonic",
) -> Instance:
    """Fully random monotonic profiles without parametric structure.

    Each profile is built by drawing a random sequential time and random
    per-processor *efficiencies* in ``(0, 1]``, then repairing the resulting
    time profile into its monotonic envelope.  Used by the property-based
    tests to exercise the algorithms far from the parametric families.
    """
    if num_tasks < 1 or num_procs < 1:
        raise ModelError("num_tasks and num_procs must be >= 1")
    rng = as_rng(seed)
    tasks = []
    for i in range(num_tasks):
        seq = float(rng.uniform(*time_range))
        efficiencies = rng.uniform(0.2, 1.0, size=num_procs)
        efficiencies[0] = 1.0
        procs = np.arange(1, num_procs + 1)
        times = seq / (procs * efficiencies)
        tasks.append(MalleableTask.monotonic_envelope(f"T{i}", times))
    return Instance(tasks, num_procs, name=name)


#: Named workload families used by the experiment harness and the CLI.
WORKLOAD_FAMILIES = {
    "uniform": uniform_instance,
    "mixed": mixed_instance,
    "heavy-tailed": heavy_tailed_instance,
    "rigid-heavy": rigid_heavy_instance,
    "random-monotonic": random_monotonic_instance,
}


def make_workload(
    family: str,
    num_tasks: int,
    num_procs: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> Instance:
    """Instantiate a named workload family (see :data:`WORKLOAD_FAMILIES`)."""
    if family not in WORKLOAD_FAMILIES:
        raise ModelError(
            f"unknown workload family {family!r}; choose from "
            f"{sorted(WORKLOAD_FAMILIES)}"
        )
    return WORKLOAD_FAMILIES[family](num_tasks, num_procs, seed=seed)
