"""Arrival-trace generators: release dates over the existing workload families.

An online *trace* is just an :class:`~repro.model.instance.Instance` whose
tasks carry release times, so traces reuse the whole serving stack (JSON
round-trip, fingerprints, validation) unchanged.  Each generator draws a base
instance from a named workload family (:data:`WORKLOAD_FAMILIES`) and then
assigns release times following a classical arrival pattern:

``poisson_trace``
    Homogeneous Poisson process: i.i.d. exponential inter-arrival times.
``burst_trace``
    Arrivals clustered into a few bursts spread over the horizon — the
    "thundering herd" pattern that stresses epoch batching.
``diurnal_trace``
    Inhomogeneous arrivals with a sinusoidal intensity (a day/night load
    curve), sampled by inverse-transform over the cumulative intensity.
``pareto_trace``
    Heavy-tailed (Pareto/Lomax) inter-arrival times: most arrivals land in
    dense clumps separated by rare, very long gaps.  The long gaps leave
    deep carry-over tails behind them, which is exactly the regime where
    the availability kernel's partial-machine carry-over should beat the
    epoch barrier.

Unless given explicitly, the arrival horizon defaults to the instance's
offline makespan lower bound: the trace then injects work at roughly the
rate the machine can drain it, which is the regime where epoch rescheduling
is interesting (an almost-empty machine makes every policy look the same,
an overloaded one measures only the backlog).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ModelError
from ..model.instance import Instance
from .generators import as_rng, make_workload

__all__ = [
    "ARRIVAL_PATTERNS",
    "burst_trace",
    "diurnal_trace",
    "make_trace",
    "pareto_trace",
    "poisson_trace",
]


def _horizon(instance: Instance, horizon: float | None) -> float:
    if horizon is not None:
        if horizon < 0:
            raise ModelError("horizon must be non-negative")
        return float(horizon)
    return instance.lower_bound()


def poisson_trace(
    family: str = "mixed",
    num_tasks: int = 32,
    num_procs: int = 16,
    *,
    seed: int | np.random.Generator | None = None,
    rate: float | None = None,
    horizon: float | None = None,
    name: str = "poisson-trace",
) -> Instance:
    """Poisson arrivals: exponential inter-arrival times at ``rate`` per unit.

    ``rate=None`` derives the rate from the horizon (``num_tasks /
    horizon``), so the default trace spreads its arrivals over roughly the
    offline lower bound.
    """
    rng = as_rng(seed)
    instance = make_workload(family, num_tasks, num_procs, seed=rng)
    if rate is None:
        span = _horizon(instance, horizon)
        rate = num_tasks / span if span > 0 else None
    if rate is None or rate <= 0:
        releases = np.zeros(num_tasks)
    else:
        releases = np.cumsum(rng.exponential(1.0 / rate, size=num_tasks))
        releases -= releases[0]  # the first task opens the trace at time 0
    return instance.with_releases(releases, name=name)


def burst_trace(
    family: str = "mixed",
    num_tasks: int = 32,
    num_procs: int = 16,
    *,
    seed: int | np.random.Generator | None = None,
    bursts: int = 3,
    jitter: float = 0.02,
    horizon: float | None = None,
    name: str = "burst-trace",
) -> Instance:
    """Arrivals clustered into ``bursts`` groups spread evenly over the horizon.

    Each task joins a uniformly random burst; within a burst, releases are
    jittered by a centred normal with standard deviation ``jitter · horizon``
    (clipped at 0), so a burst is a near-simultaneous stampede rather than a
    single instant.
    """
    if bursts < 1:
        raise ModelError("bursts must be >= 1")
    rng = as_rng(seed)
    instance = make_workload(family, num_tasks, num_procs, seed=rng)
    span = _horizon(instance, horizon)
    centers = np.linspace(0.0, span, num=bursts, endpoint=False)
    assignment = rng.integers(0, bursts, size=num_tasks)
    releases = centers[assignment] + rng.normal(
        0.0, jitter * max(span, 1e-12), size=num_tasks
    )
    releases = np.clip(releases, 0.0, None)
    return instance.with_releases(releases, name=name)


def diurnal_trace(
    family: str = "mixed",
    num_tasks: int = 32,
    num_procs: int = 16,
    *,
    seed: int | np.random.Generator | None = None,
    periods: float = 2.0,
    peak_to_trough: float = 4.0,
    horizon: float | None = None,
    name: str = "diurnal-trace",
) -> Instance:
    """Sinusoidal arrival intensity over ``periods`` day/night cycles.

    The intensity is ``1 + a·sin`` scaled so the peak rate is
    ``peak_to_trough`` times the trough rate; releases are drawn by
    inverse-transform sampling of the cumulative intensity, so task density
    follows the load curve exactly in expectation.
    """
    if peak_to_trough < 1.0:
        raise ModelError("peak_to_trough must be >= 1")
    rng = as_rng(seed)
    instance = make_workload(family, num_tasks, num_procs, seed=rng)
    span = _horizon(instance, horizon)
    if span <= 0:
        return instance.with_releases(np.zeros(num_tasks), name=name)
    amplitude = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)
    grid = np.linspace(0.0, span, num=2048)
    intensity = 1.0 + amplitude * np.sin(2.0 * np.pi * periods * grid / span)
    cumulative = np.concatenate([[0.0], np.cumsum(intensity[:-1] * np.diff(grid))])
    cumulative /= cumulative[-1]
    quantiles = rng.uniform(0.0, 1.0, size=num_tasks)
    releases = np.sort(np.interp(quantiles, cumulative, grid))
    releases -= releases[0]  # the first task opens the trace at time 0
    return instance.with_releases(releases, name=name)


def pareto_trace(
    family: str = "mixed",
    num_tasks: int = 32,
    num_procs: int = 16,
    *,
    seed: int | np.random.Generator | None = None,
    alpha: float = 1.5,
    horizon: float | None = None,
    name: str = "pareto-trace",
) -> Instance:
    """Heavy-tailed arrivals: Lomax(``alpha``) inter-arrival times.

    Inter-arrivals are drawn from a Pareto-II (Lomax) distribution with
    shape ``alpha`` and scaled so their *mean* spreads the trace over the
    horizon — the same average load as the Poisson trace, but concentrated
    into clumps separated by rare long gaps (the smaller ``alpha``, the
    heavier the tail; ``alpha`` must exceed 1 so the mean exists).
    """
    if alpha <= 1.0:
        raise ModelError("alpha must be > 1 (the inter-arrival mean must exist)")
    rng = as_rng(seed)
    instance = make_workload(family, num_tasks, num_procs, seed=rng)
    span = _horizon(instance, horizon)
    if span <= 0:
        return instance.with_releases(np.zeros(num_tasks), name=name)
    # E[Lomax(alpha)] = 1 / (alpha - 1); rescale to a mean gap of span / n.
    gaps = rng.pareto(alpha, size=num_tasks) * (alpha - 1.0) * (span / num_tasks)
    releases = np.cumsum(gaps)
    releases -= releases[0]  # the first task opens the trace at time 0
    return instance.with_releases(releases, name=name)


#: Named arrival patterns used by the replay CLI, service and benchmark.
ARRIVAL_PATTERNS = {
    "poisson": poisson_trace,
    "burst": burst_trace,
    "diurnal": diurnal_trace,
    "pareto": pareto_trace,
}


def make_trace(
    pattern: str,
    family: str = "mixed",
    num_tasks: int = 32,
    num_procs: int = 16,
    *,
    seed: int | np.random.Generator | None = None,
    **kwargs,
) -> Instance:
    """Instantiate a named arrival pattern (see :data:`ARRIVAL_PATTERNS`)."""
    if pattern not in ARRIVAL_PATTERNS:
        raise ModelError(
            f"unknown arrival pattern {pattern!r}; choose from "
            f"{sorted(ARRIVAL_PATTERNS)}"
        )
    return ARRIVAL_PATTERNS[pattern](
        family, num_tasks, num_procs, seed=seed, **kwargs
    )
