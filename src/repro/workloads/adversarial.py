"""Adversarial and stress workloads.

These generators build instances with a *known feasible schedule* (a witness
of makespan at most a prescribed deadline), which makes them suitable for

* checking Property 3 and Lemma 1 of the canonical list algorithm on
  instances that are guaranteed to satisfy the premise "a schedule of length
  1 exists" (:func:`property3_stress_instances`, used by the FIG7/FIG8
  benchmarks and by :func:`repro.core.theory.m_star_empirical`);
* stressing the knapsack branch with first shelves that cannot hold every
  tall task (:func:`shelf_overflow_instance`);
* exhibiting the fragmentation behaviour of contiguous list scheduling
  (:func:`fragmentation_instance`);
* the classical LPT worst case adapted to sequential malleable tasks
  (:func:`lpt_worst_case_instance`).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..exceptions import ModelError
from ..model.instance import Instance
from ..model.speedup import AmdahlSpeedup
from ..model.task import MalleableTask
from .generators import as_rng

__all__ = [
    "property3_stress_instances",
    "shelf_overflow_instance",
    "fragmentation_instance",
    "lpt_worst_case_instance",
]


def _rigid(name: str, duration: float, m: int) -> MalleableTask:
    return MalleableTask.rigid(name, duration, m)


def property3_stress_instances(
    num_procs: int,
    mu: float,
    *,
    trials: int = 20,
    rng: int | np.random.Generator | None = None,
) -> Iterator[Instance]:
    """Instances admitting a schedule of length 1, built to stress Property 3.

    Each instance is assembled from an explicit witness schedule of makespan
    at most 1: a block of *tall* tasks (duration in ``(μ, 1]``) occupying
    disjoint processors, a set of processors carrying *stacked pairs* of
    shorter tasks (durations summing to at most 1), and optionally a parallel
    *medium* task (duration in ``(1/2, μ]``) occupying its own processors.
    The canonical list algorithm run with guess 1 on these instances produces
    the level structures analysed in the appendix.
    """
    if num_procs < 2:
        return
    if not 0.5 < mu < 1.0:
        raise ModelError("mu must lie in (1/2, 1)")
    generator = as_rng(rng)
    for trial in range(trials):
        m = num_procs
        tasks: list[MalleableTask] = []
        used = 0
        tid = 0
        # Tall block: rigid tasks with duration in (mu, 1].
        tall_width = int(generator.integers(1, max(2, m - 1)))
        while used < tall_width:
            w = int(generator.integers(1, min(4, tall_width - used) + 1))
            duration = float(generator.uniform(mu + 1e-6, 1.0))
            profile = np.full(m, duration)
            profile[w:] = duration  # rigid: no benefit beyond 1 processor
            tasks.append(_rigid(f"tall{tid}", duration, m))
            tid += 1
            used += w
        # Stacked pairs on the remaining processors.
        remaining = m - used
        pair_procs = int(generator.integers(0, remaining + 1)) if remaining else 0
        for p in range(pair_procs):
            top = float(generator.uniform(0.05, 0.5))
            bottom = float(generator.uniform(0.05, min(0.95, 1.0 - top)))
            tasks.append(_rigid(f"stack{tid}a", bottom, m))
            tasks.append(_rigid(f"stack{tid}b", top, m))
            tid += 1
        # Optionally a parallel medium task on its own processors.
        remaining = m - used - pair_procs
        if remaining >= 2 and generator.random() < 0.7:
            width = int(generator.integers(2, remaining + 1))
            duration = float(generator.uniform(0.5 + 1e-6, mu))
            # Malleable: needs `width` processors to reach `duration`.
            profile = np.array(
                [duration * width / p for p in range(1, width + 1)]
                + [duration] * (m - width)
            )
            tasks.append(MalleableTask.monotonic_envelope(f"medium{tid}", profile))
            tid += 1
        elif remaining >= 1:
            for extra in range(remaining):
                duration = float(generator.uniform(0.05, 1.0))
                tasks.append(_rigid(f"fill{tid}", duration, m))
                tid += 1
        if not tasks:
            continue
        yield Instance(tasks, m, name=f"property3-stress-{m}-{trial}")


def shelf_overflow_instance(
    num_procs: int,
    *,
    seed: int | np.random.Generator | None = None,
    tall_fraction: float = 1.4,
    name: str = "shelf-overflow",
) -> Instance:
    """An instance whose tall tasks cannot all sit on the first shelf.

    The canonical allotments of the tall tasks (duration just above
    ``λ ≈ 0.73`` of the optimum) use about ``tall_fraction · m`` processors,
    so roughly ``(tall_fraction − 1)·m`` processors worth of tall tasks must
    be moved to the second shelf by the knapsack — the regime of Section 4.
    Highly parallelisable tasks keep the move affordable.
    """
    if num_procs < 4:
        raise ModelError("shelf_overflow_instance needs at least 4 processors")
    rng = as_rng(seed)
    m = num_procs
    tasks: list[MalleableTask] = []
    total_width = 0
    target_width = int(round(tall_fraction * m))
    tid = 0
    while total_width < target_width:
        width = int(rng.integers(2, max(3, m // 4) + 1))
        duration = float(rng.uniform(0.8, 1.0))
        # t(p) = duration * width / p for p <= width (linear speedup region),
        # then keeps improving slowly up to m.
        profile = [duration * width / p for p in range(1, m + 1)]
        tasks.append(MalleableTask.monotonic_envelope(f"tall{tid}", profile))
        total_width += width
        tid += 1
    # Background of small sequential tasks.
    for _ in range(m):
        duration = float(rng.uniform(0.05, 0.4))
        tasks.append(_rigid(f"small{tid}", duration, m))
        tid += 1
    return Instance(tasks, m, name=name)


def fragmentation_instance(num_procs: int, *, name: str = "fragmentation") -> Instance:
    """Deterministic instance exhibiting contiguity fragmentation.

    Alternating wide/narrow rigid tasks force the contiguous list scheduler
    to leave idle gaps between levels — the situation depicted in Figure 2.
    """
    if num_procs < 4:
        raise ModelError("fragmentation_instance needs at least 4 processors")
    m = num_procs
    tasks: list[MalleableTask] = []
    width_big = m // 2
    # Two long tasks of unequal heights occupying the two halves.
    tasks.append(
        MalleableTask.monotonic_envelope(
            "left", [1.0 * width_big / p for p in range(1, m + 1)]
        )
    )
    tasks.append(
        MalleableTask.monotonic_envelope(
            "right", [0.8 * (m - width_big) / p for p in range(1, m + 1)]
        )
    )
    # A medium task that has to rest on one of them (second level).
    tasks.append(
        MalleableTask.monotonic_envelope(
            "second-level", [0.5 * width_big / p for p in range(1, m + 1)]
        )
    )
    # Small sequential tasks that slide into the stair-step idle area.
    for i in range(m):
        tasks.append(_rigid(f"filler{i}", 0.15 + 0.01 * i, m))
    return Instance(tasks, m, name=name)


def lpt_worst_case_instance(num_procs: int, *, name: str = "lpt-worst") -> Instance:
    """Graham's classical LPT worst case, as sequential malleable tasks.

    ``m`` processors, ``2m+1`` sequential tasks with durations
    ``2m−1, 2m−1, 2m−2, 2m−2, …, m+1, m+1, m, m, m`` — LPT achieves ratio
    ``4/3 − 1/(3m)`` on the induced rigid problem.  Tasks are rigid
    (no speedup) so every malleable scheduler faces the same difficulty; used
    to sanity-check the baselines.
    """
    if num_procs < 2:
        raise ModelError("lpt_worst_case_instance needs at least 2 processors")
    m = num_procs
    durations: list[float] = []
    for k in range(m - 1):
        durations.extend([float(2 * m - 1 - k)] * 2)
    durations.extend([float(m)] * 3)
    tasks = [_rigid(f"J{i}", d, m) for i, d in enumerate(durations)]
    return Instance(tasks, m, name=name)
