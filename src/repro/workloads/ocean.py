"""Synthetic ocean-circulation workload (the paper's motivating application).

Section 1 of the paper motivates malleable tasks with a parallel code for
"the simulation of the circulations in the Atlantic Ocean" using adaptive
meshing (reference [3], Blayo, Debreu, Mounié & Trystram).  In that code the
ocean is decomposed into rectangular sub-domains refined adaptively; each
refined sub-domain is a malleable task whose work grows with its mesh
resolution and whose parallel efficiency is limited by the halo-exchange
communications on the sub-domain boundary.

The original traces are not public, so this module synthesises a workload
with the same structure:

* a coarse root domain is split into ``blocks × blocks`` rectangular patches;
* each patch receives a refinement level drawn from a spatially correlated
  field (eddy-rich regions are refined more), its work scaling with
  ``refinement**2`` (points) times ``refinement`` (time steps);
* the speedup of a patch follows a surface-to-volume communication model:
  computing ``n_points/p`` points per processor costs
  ``n_points/p + c·boundary(p)`` time units, which is exactly the
  communication-overhead malleable behaviour the paper assumes.

The resulting instance is what the ``ocean_circulation.py`` example and the
EXP-A experiment use as the "application-like" workload.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ModelError
from ..model.instance import Instance
from ..model.task import MalleableTask
from .generators import as_rng

__all__ = ["ocean_instance", "refinement_field"]


def refinement_field(
    blocks: int,
    *,
    max_level: int = 4,
    rng: int | np.random.Generator | None = None,
    smoothing: int = 2,
) -> np.ndarray:
    """Spatially correlated refinement levels on a ``blocks × blocks`` grid.

    A white-noise field is smoothed by repeated neighbour averaging and then
    quantised into ``1..max_level`` so that neighbouring patches have similar
    refinement — mimicking eddy-rich regions of an adaptive ocean mesh.
    """
    if blocks < 1:
        raise ModelError("blocks must be >= 1")
    if max_level < 1:
        raise ModelError("max_level must be >= 1")
    generator = as_rng(rng)
    field = generator.random((blocks, blocks))
    for _ in range(max(0, smoothing)):
        padded = np.pad(field, 1, mode="edge")
        field = (
            padded[:-2, 1:-1]
            + padded[2:, 1:-1]
            + padded[1:-1, :-2]
            + padded[1:-1, 2:]
            + padded[1:-1, 1:-1]
        ) / 5.0
    lo, hi = field.min(), field.max()
    if hi - lo < 1e-12:
        normalised = np.zeros_like(field)
    else:
        normalised = (field - lo) / (hi - lo)
    levels = 1 + np.floor(normalised * max_level).astype(int)
    return np.clip(levels, 1, max_level)


def ocean_instance(
    num_procs: int,
    *,
    blocks: int = 6,
    base_points: int = 64,
    max_level: int = 4,
    comm_cost: float = 0.02,
    time_unit: float = 1e-3,
    seed: int | np.random.Generator | None = None,
    name: str = "ocean",
) -> Instance:
    """Build the synthetic adaptive-mesh ocean workload.

    Parameters
    ----------
    num_procs:
        Machine size ``m``.
    blocks:
        The root domain is split into ``blocks × blocks`` patches, one
        malleable task each.
    base_points:
        Number of grid points per side of an unrefined patch.
    max_level:
        Maximum refinement level; a level-``l`` patch has
        ``(base_points · l)²`` points and performs ``l`` times more time
        steps per coupling interval.
    comm_cost:
        Halo-exchange cost per boundary point relative to the per-point
        computation cost.
    time_unit:
        Seconds of computation per grid point (scales the instance).
    seed:
        RNG seed for the refinement field.
    """
    if num_procs < 1:
        raise ModelError("num_procs must be >= 1")
    generator = as_rng(seed)
    levels = refinement_field(blocks, max_level=max_level, rng=generator)
    tasks: list[MalleableTask] = []
    for i in range(blocks):
        for j in range(blocks):
            level = int(levels[i, j])
            side = base_points * level
            points = side * side
            steps = level
            work = points * steps  # grid points × sub-cycled time steps
            times = []
            for p in range(1, num_procs + 1):
                # 1-D strip decomposition of the patch over p processors:
                # each processor holds ceil(side/p) rows of `side` points and
                # exchanges two halo rows per neighbour per step.
                rows = int(np.ceil(side / p))
                compute = rows * side * steps
                halo = 0.0 if p == 1 else 2.0 * side * steps * comm_cost
                times.append((compute + halo) * time_unit)
            tasks.append(
                MalleableTask.monotonic_envelope(f"patch[{i},{j}]x{level}", times)
            )
    return Instance(tasks, num_procs, name=name)
