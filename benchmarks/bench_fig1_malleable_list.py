"""FIG1 — structure of a malleable list schedule (paper Figure 1).

Figure 1 depicts the schedule produced by the Malleable List Algorithm: all
*parallel* tasks (dark grey in the paper) start at time 0 side by side, and
the sequential tasks are LPT-scheduled after them.  This benchmark
regenerates that structure on a mixed workload, asserts it, and times the
algorithm.
"""

from __future__ import annotations

from repro import mixed_instance
from repro.analysis.gantt import gantt_chart
from repro.core.malleable_list import MalleableListDual, malleable_list_guarantee
from repro.lower_bounds import canonical_area_lower_bound

M = 16
INSTANCE = mixed_instance(num_tasks=24, num_procs=M, seed=101, name="fig1")
GUESS = canonical_area_lower_bound(INSTANCE) * 1.15


def run_once():
    return MalleableListDual().run(INSTANCE, GUESS)


def test_fig1_malleable_list_structure(benchmark, reporter):
    schedule = benchmark(run_once)
    assert schedule is not None, "the guess must be accepted on this workload"
    schedule.validate()
    # Structure of Figure 1: every parallel task starts at time 0.
    parallel = [e for e in schedule.entries if e.num_procs >= 2]
    sequential = [e for e in schedule.entries if e.num_procs == 1]
    assert all(e.start == 0.0 for e in parallel)
    assert sum(e.num_procs for e in parallel) <= M
    # Theorem 1 bound for the accepted guess.
    assert schedule.makespan() <= malleable_list_guarantee(M) * GUESS + 1e-9
    reporter(
        "FIG1: malleable list schedule (parallel tasks at t=0, LPT tail)",
        f"parallel tasks: {len(parallel)}  sequential tasks: {len(sequential)}\n"
        f"guess d = {GUESS:.4g}, makespan = {schedule.makespan():.4g} "
        f"(bound {malleable_list_guarantee(M) * GUESS:.4g})\n\n"
        + gantt_chart(schedule, legend=False),
    )
