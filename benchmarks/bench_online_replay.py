"""Online replay benchmark: both kernels and the arrival baselines, side by side.

Replays Poisson / burst / diurnal / Pareto arrival traces through *both*
online kernels — the epoch ``barrier`` and the availability-aware
``availability`` kernel (partial-machine carry-over) — and through the two
arrival-by-arrival baselines (online list scheduling, First-Fit by
arrival).  Every timeline is compared against the *clairvoyant* baseline:
offline MRT handed the entire task set up front with release dates erased.
The clairvoyant makespan lower-bounds what any release-respecting schedule
can realistically target, so the reported quotient is an upper bound on the
true competitive ratio.

Enforced bars:

* every stitched timeline passes ``simulate_and_check(respect_release=True)``
  (static + dynamic validation, release dates enforced);
* both kernels' online makespans are at most ``--max-ratio`` (default 2.0)
  times the clairvoyant offline makespan on every benchmark trace;
* flow-time dominance: on every trace (hence every trace family) the
  availability kernel's mean flow time is no worse than the barrier
  kernel's.

Run directly (CI uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_online_replay.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.online import first_fit_replay, flow_summary, online_list_replay
from repro.registry import ONLINE_KERNELS, make_rescheduler, make_scheduler
from repro.sim.validate import simulate_and_check
from repro.workloads.arrivals import make_trace

#: Tolerance for the flow-dominance comparison (float stitching noise only:
#: the availability kernel's barrier fallback makes dominance structural).
FLOW_TOL = 1e-9


def run_trace(
    pattern: str,
    family: str,
    tasks: int,
    procs: int,
    seed: int,
    quantum: float | None,
    algorithm: str = "mrt",
    include_baselines: bool = True,
) -> list[dict]:
    """Replay one trace through both kernels + baselines (all validated).

    ``include_baselines=False`` skips the quantum-independent arrival
    baselines (the quantum configs reuse the event-driven trace, so their
    baseline rows would be duplicates).
    """
    trace = make_trace(pattern, family, tasks, procs, seed=seed)
    offline = make_scheduler(algorithm).schedule(trace)
    offline_makespan = offline.makespan()
    releases = trace.release_times
    base = {
        "pattern": pattern,
        "family": family,
        "tasks": tasks,
        "procs": procs,
        "seed": seed,
        "quantum": quantum,
        "arrival_span": float(releases.max() - releases.min()),
        "offline_makespan": offline_makespan,
    }
    records = []
    for kernel in sorted(ONLINE_KERNELS):
        result = make_rescheduler(kernel, algorithm, quantum=quantum).replay(trace)
        simulate_and_check(result.schedule, respect_release=True)
        metrics = result.metrics()
        records.append(
            {
                **base,
                "policy": kernel,
                "is_kernel": True,
                "num_epochs": result.num_epochs,
                "online_makespan": metrics["makespan"],
                "ratio": metrics["makespan"] / offline_makespan,
                "mean_flow": metrics["mean_flow"],
                "max_flow": metrics["max_flow"],
                "mean_stretch": metrics["mean_stretch"],
                "utilization": metrics["utilization"],
            }
        )
    if not include_baselines:
        return records
    for policy, replay in (
        ("online-list", online_list_replay),
        ("first-fit", first_fit_replay),
    ):
        schedule = replay(trace)
        simulate_and_check(schedule, respect_release=True)
        summary = flow_summary(schedule)
        records.append(
            {
                **base,
                "policy": policy,
                "is_kernel": False,
                "num_epochs": None,
                "online_makespan": summary["makespan"],
                "ratio": summary["makespan"] / offline_makespan,
                "mean_flow": summary["mean_flow"],
                "max_flow": summary["max_flow"],
                "mean_stretch": None,
                "utilization": None,
            }
        )
    return records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes for CI")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="bar: kernel makespan / clairvoyant offline makespan, per trace",
    )
    args = parser.parse_args(argv)

    tasks = 14 if args.quick else 32
    procs = 8 if args.quick else 16
    seeds = [0, 1] if args.quick else [0, 1, 2, 3]
    configs = [(pattern, None) for pattern in ("poisson", "burst", "diurnal", "pareto")]
    configs.append(("poisson", "quantum"))

    records: list[dict] = []
    failures: list[str] = []
    for pattern, mode in configs:
        for seed in seeds:
            # A meaningful batching quantum is trace-relative: a tenth of the
            # arrival span groups a handful of arrivals per epoch.
            quantum = None
            if mode == "quantum":
                probe = make_trace(pattern, "mixed", tasks, procs, seed=seed)
                span = float(probe.release_times.max())
                quantum = span / 10.0 if span > 0 else None
            rows = run_trace(
                pattern, "mixed", tasks, procs, seed, quantum,
                include_baselines=mode != "quantum",
            )
            records.extend(rows)
            by_policy = {row["policy"]: row for row in rows}
            barrier, avail = by_policy["barrier"], by_policy["availability"]
            if avail["mean_flow"] > barrier["mean_flow"] + FLOW_TOL:
                failures.append(
                    f"{pattern} seed={seed}: availability mean flow "
                    f"{avail['mean_flow']:.6g} > barrier {barrier['mean_flow']:.6g}"
                )
            for row in rows:
                print(
                    f"{pattern:8s} seed={seed}  "
                    f"quantum={'-' if quantum is None else format(quantum, '.3g'):>6s}  "
                    f"{row['policy']:12s}  "
                    f"online={row['online_makespan']:9.4g}  "
                    f"ratio={row['ratio']:.3f}  "
                    f"flow={row['mean_flow']:8.4g}"
                )

    kernel_rows = [r for r in records if r["is_kernel"]]
    worst = max(kernel_rows, key=lambda r: r["ratio"])
    mean_ratio = sum(r["ratio"] for r in kernel_rows) / len(kernel_rows)
    print(
        f"kernels vs clairvoyant offline MRT: mean ratio {mean_ratio:.3f}, "
        f"worst {worst['ratio']:.3f} ({worst['policy']}, {worst['pattern']} "
        f"seed={worst['seed']}); bar {args.max_ratio:.1f}x"
    )

    families: dict[str, dict[str, list[float]]] = {}
    for row in kernel_rows:
        families.setdefault(row["pattern"], {}).setdefault(
            row["policy"], []
        ).append(row["mean_flow"])
    family_flows = {}
    wins = 0
    comparisons = 0
    for pattern, flows in sorted(families.items()):
        barrier_mean = sum(flows["barrier"]) / len(flows["barrier"])
        avail_mean = sum(flows["availability"]) / len(flows["availability"])
        family_flows[pattern] = {
            "barrier_mean_flow": barrier_mean,
            "availability_mean_flow": avail_mean,
        }
        print(
            f"family {pattern:8s}: mean flow availability {avail_mean:8.4g}  "
            f"vs barrier {barrier_mean:8.4g}  "
            f"({'dominates' if avail_mean <= barrier_mean + FLOW_TOL else 'REGRESSION'})"
        )
        if avail_mean > barrier_mean + FLOW_TOL:
            failures.append(
                f"family {pattern}: availability mean flow {avail_mean:.6g} > "
                f"barrier {barrier_mean:.6g}"
            )
    for row in kernel_rows:
        if row["policy"] != "availability":
            continue
        comparisons += 1
        barrier_flow = next(
            r["mean_flow"]
            for r in kernel_rows
            if r["policy"] == "barrier"
            and (r["pattern"], r["seed"], r["quantum"])
            == (row["pattern"], row["seed"], row["quantum"])
        )
        wins += row["mean_flow"] < barrier_flow - FLOW_TOL
    print(
        f"carry-over wins outright on {wins}/{comparisons} traces "
        f"(never worse: barrier fallback engages on the rest)"
    )
    print("all stitched timelines passed simulate_and_check with release dates")

    bench = {
        "benchmark": "online_replay",
        "quick": args.quick,
        "max_ratio": args.max_ratio,
        "mean_ratio": mean_ratio,
        "worst_ratio": worst["ratio"],
        "carryover_wins": wins,
        "kernel_comparisons": comparisons,
        "family_flows": family_flows,
        "records": records,
    }
    print("BENCH " + json.dumps(bench, sort_keys=True))

    if worst["ratio"] > args.max_ratio:
        failures.append(
            f"{worst['policy']} on {worst['pattern']} seed={worst['seed']} ratio "
            f"{worst['ratio']:.3f} exceeds the {args.max_ratio:.1f}x bar"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
