"""Online replay benchmark: epoch rescheduling vs clairvoyant offline MRT.

Replays Poisson (and burst) arrival traces through the
:class:`~repro.online.epoch.EpochRescheduler` — event-driven and with a
batching quantum — and compares the stitched online makespan against the
*clairvoyant* baseline: offline MRT handed the entire task set up front with
release dates erased.  The clairvoyant makespan lower-bounds what any
release-respecting schedule can realistically target, so the reported
quotient is an upper bound on the true competitive ratio.

Enforced bars:

* every stitched timeline passes ``simulate_and_check(respect_release=True)``
  (static + dynamic validation, release dates enforced);
* the online makespan is at most ``--max-ratio`` (default 2.0) times the
  clairvoyant offline makespan on every benchmark trace.

Run directly (CI uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_online_replay.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.online import EpochRescheduler
from repro.registry import make_scheduler
from repro.sim.validate import simulate_and_check
from repro.workloads.arrivals import make_trace


def run_trace(
    pattern: str,
    family: str,
    tasks: int,
    procs: int,
    seed: int,
    quantum: float | None,
    algorithm: str = "mrt",
) -> dict:
    """Replay one trace; returns the comparison record (validated)."""
    trace = make_trace(pattern, family, tasks, procs, seed=seed)
    rescheduler = EpochRescheduler(algorithm, quantum=quantum)
    result = rescheduler.replay(trace)
    simulate_and_check(result.schedule, respect_release=True)
    offline = make_scheduler(algorithm).schedule(trace)
    offline_makespan = offline.makespan()
    metrics = result.metrics()
    releases = trace.release_times
    return {
        "pattern": pattern,
        "family": family,
        "tasks": tasks,
        "procs": procs,
        "seed": seed,
        "quantum": quantum,
        "arrival_span": float(releases.max() - releases.min()),
        "num_epochs": result.num_epochs,
        "online_makespan": metrics["makespan"],
        "offline_makespan": offline_makespan,
        "ratio": metrics["makespan"] / offline_makespan,
        "mean_flow": metrics["mean_flow"],
        "max_flow": metrics["max_flow"],
        "mean_stretch": metrics["mean_stretch"],
        "utilization": metrics["utilization"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes for CI")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="bar: online makespan / clairvoyant offline makespan, per trace",
    )
    args = parser.parse_args(argv)

    tasks = 16 if args.quick else 40
    procs = 8 if args.quick else 16
    seeds = [0, 1] if args.quick else [0, 1, 2, 3]
    configs = [("poisson", None), ("poisson", "quantum"), ("burst", None)]
    if not args.quick:
        configs.append(("diurnal", None))

    records = []
    for pattern, mode in configs:
        for seed in seeds:
            # A meaningful batching quantum is trace-relative: a tenth of the
            # arrival span groups a handful of arrivals per epoch.
            quantum = None
            if mode == "quantum":
                probe = make_trace(pattern, "mixed", tasks, procs, seed=seed)
                span = float(probe.release_times.max())
                quantum = span / 10.0 if span > 0 else None
            record = run_trace(pattern, "mixed", tasks, procs, seed, quantum)
            records.append(record)
            print(
                f"{pattern:8s} seed={seed}  "
                f"quantum={'-' if quantum is None else format(quantum, '.3g'):>6s}  "
                f"epochs={record['num_epochs']:3d}  "
                f"online={record['online_makespan']:9.4g}  "
                f"offline={record['offline_makespan']:9.4g}  "
                f"ratio={record['ratio']:.3f}  "
                f"stretch={record['mean_stretch']:.2f}"
            )

    worst = max(records, key=lambda r: r["ratio"])
    mean_ratio = sum(r["ratio"] for r in records) / len(records)
    print(
        f"competitive ratio vs clairvoyant offline MRT: "
        f"mean {mean_ratio:.3f}, worst {worst['ratio']:.3f} "
        f"({worst['pattern']} seed={worst['seed']}); bar {args.max_ratio:.1f}x"
    )
    print("all stitched timelines passed simulate_and_check with release dates")

    bench = {
        "benchmark": "online_replay",
        "quick": args.quick,
        "max_ratio": args.max_ratio,
        "mean_ratio": mean_ratio,
        "worst_ratio": worst["ratio"],
        "records": records,
    }
    print("BENCH " + json.dumps(bench, sort_keys=True))

    if worst["ratio"] > args.max_ratio:
        print(
            f"FAIL: {worst['pattern']} seed={worst['seed']} ratio "
            f"{worst['ratio']:.3f} exceeds the {args.max_ratio:.1f}x bar"
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
