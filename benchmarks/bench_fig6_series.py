"""FIG6 — the greedy candidate series S_0 ⊇ S_1 ⊇ … of Lemma 4 (Figure 6).

Figure 6 depicts the series of candidate subsets obtained by repeatedly
removing the T1 task of greatest inefficiency factor; Lemma 4 proves that
(absent trivial solutions) some element of the series is a feasible
λ-schedule.  This benchmark regenerates the series on the shelf-overflow
workload, reports the canonical area of each step and asserts the
monotonicity the lemma relies on.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.partition import LAMBDA_STAR, build_partition
from repro.core.two_shelves import candidate_series, find_trivial_solution
from repro.lower_bounds import canonical_area_lower_bound
from repro.workloads.adversarial import shelf_overflow_instance

INSTANCE = shelf_overflow_instance(24, seed=606, tall_fraction=1.4)
GUESS = canonical_area_lower_bound(INSTANCE) * 1.35


def run_once():
    part = build_partition(INSTANCE, GUESS, LAMBDA_STAR)
    assert part is not None
    return part, candidate_series(part)


def test_fig6_candidate_series(benchmark, reporter):
    part, steps = benchmark(run_once)
    assert len(steps) >= 1
    # The series shrinks one task at a time down to the empty set.
    sizes = [len(s.subset) for s in steps]
    assert sizes == sorted(sizes, reverse=True)
    assert steps[-1].subset == ()
    # Canonical areas and γ-sums decrease along the series.
    areas = [s.canonical_area for s in steps]
    assert all(a >= b - 1e-9 for a, b in zip(areas, areas[1:]))
    gammas = [s.gamma_sum for s in steps]
    assert all(a >= b for a, b in zip(gammas, gammas[1:]))
    # Lemma 4 claim: a feasible element exists unless a trivial solution does.
    has_feasible = any(s.feasible for s in steps)
    has_trivial = find_trivial_solution(part) is not None
    assert has_feasible or has_trivial
    rows = [
        [
            j,
            len(s.subset),
            s.gamma_sum,
            f"{s.shelf2_width:.0f}",
            f"{s.canonical_area:.4g}",
            "yes" if s.feasible else "no",
        ]
        for j, s in enumerate(steps)
    ]
    reporter(
        "FIG6: greedy series S_j of Lemma 4 (guess d = %.4g)" % GUESS,
        format_table(
            ["j", "|S_j|", "Σ γ", "Σ d_i", "canonical area", "in Γλ"], rows
        ),
    )
