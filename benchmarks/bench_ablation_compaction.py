"""ABL-1 — ablation: how much does left-shift compaction recover?

The two-shelf construction leaves an idle wedge between the shelves by
design (the worst-case argument needs the structure, not the idle time).
This ablation quantifies the makespan recovered by the left-shifting
post-processing of :mod:`repro.core.compaction` on the knapsack-branch
workloads, confirming that (a) compaction never hurts and (b) the guarantee
is preserved.
"""

from __future__ import annotations

import math

from repro.analysis.tables import format_table
from repro.core.compaction import compact_schedule
from repro.core.mrt import MRTScheduler
from repro.lower_bounds import best_lower_bound
from repro.workloads.adversarial import shelf_overflow_instance
from repro.workloads.generators import heavy_tailed_instance, mixed_instance

SQRT3 = math.sqrt(3.0)

FACTORIES = {
    "mixed/16": lambda s: mixed_instance(25, 16, seed=s),
    "heavy/16": lambda s: heavy_tailed_instance(25, 16, seed=s),
    "overflow/24": lambda s: shelf_overflow_instance(24, seed=s),
}
SEEDS = (0, 1)


def run_battery():
    rows = []
    for name, factory in FACTORIES.items():
        for seed in SEEDS:
            instance = factory(seed)
            schedule = MRTScheduler(eps=1e-3).schedule(instance)
            compacted = compact_schedule(schedule)
            lb = best_lower_bound(instance)
            rows.append(
                (
                    f"{name}/{seed}",
                    schedule.makespan() / lb,
                    compacted.makespan() / lb,
                    1.0 - compacted.makespan() / schedule.makespan(),
                )
            )
    return rows


def test_ablation_compaction(benchmark, reporter):
    rows = benchmark.pedantic(run_battery, rounds=1, iterations=1)
    for name, raw, compacted, saving in rows:
        assert compacted <= raw + 1e-12, name
        assert compacted <= SQRT3 * 1.01, name
        assert 0.0 <= saving < 1.0
    reporter(
        "ABL-1: makespan ratio before/after left-shift compaction",
        format_table(
            ["instance", "ratio (raw)", "ratio (compacted)", "recovered"],
            [[n, f"{r:.4f}", f"{c:.4f}", f"{s:.1%}"] for n, r, c, s in rows],
        ),
    )
