"""FIG2 — idle areas between the first two levels (paper Figure 2).

Figure 2 illustrates the stair-step idle regions that contiguous list
scheduling leaves between the first and second level, each idle area being
delimited from above by a single second-level task.  We regenerate the
situation with the deterministic fragmentation instance, measure the idle
area below the makespan and assert that it stays within the bound used by
Lemma 1's surface argument (the idle area never exceeds the area of the
schedule minus the task work, trivially, and every idle gap sits strictly
between level starts).
"""

from __future__ import annotations

from repro.analysis.gantt import gantt_chart
from repro.core.canonical_list import canonical_list_schedule
from repro.core.list_scheduling import compute_levels
from repro.lower_bounds import canonical_area_lower_bound
from repro.workloads.adversarial import fragmentation_instance

INSTANCE = fragmentation_instance(16)
GUESS = canonical_area_lower_bound(INSTANCE) * 1.1


def run_once():
    return canonical_list_schedule(INSTANCE, GUESS)


def test_fig2_idle_areas(benchmark, reporter):
    schedule = benchmark(run_once)
    assert schedule is not None
    schedule.validate()
    levels = compute_levels(schedule)
    n_levels = max(levels.values())
    idle = schedule.idle_area()
    total = INSTANCE.num_procs * schedule.makespan()
    # The schedule has at least two levels (the point of the figure) and its
    # idle area is a strict fraction of the enclosing rectangle.
    assert n_levels >= 2
    assert 0.0 <= idle < total
    # Idle gaps only appear above the first level: every first-level task
    # starts at 0 on a fully free block (no idle time below it).
    first_level_area = sum(
        e.work for e in schedule.entries if levels[e.task_index] == 1
    )
    assert first_level_area > 0
    reporter(
        "FIG2: idle stair-steps between levels of the canonical list schedule",
        f"levels: {n_levels}, idle area: {idle:.4g} of {total:.4g} "
        f"({100 * idle / total:.1f}%)\n\n" + gantt_chart(schedule, legend=False),
    )
