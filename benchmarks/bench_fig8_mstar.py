"""FIG8 — the m*(μ) curve (paper Figure 8).

Figure 8 plots the minimal number of processors m*(μ) for which Property 3
holds, for μ between 0.75 and 0.95, with the value at μ = √3/2 highlighted
(the paper refines it to m* = 8).  This benchmark regenerates the curve from
the calibrated reconstruction in :mod:`repro.core.theory`, asserts its shape
(monotone non-decreasing, anchor value 8, range ≈ 5…21) and cross-checks a
few points with the empirical adversarial search.  See ``EXPERIMENTS.md`` for
the reconstruction caveat.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.core import theory

MUS = np.linspace(0.75, 0.95, 21)


def compute_curve():
    return [(float(mu), theory.k_star(float(mu)), theory.k_hat(float(mu)), theory.m_star(float(mu))) for mu in MUS]


def test_fig8_mstar_curve(benchmark, reporter):
    curve = benchmark(compute_curve)
    values = [m for _, _, _, m in curve]
    # Shape of Figure 8: non-decreasing in mu, spanning roughly 5..21.
    assert values == sorted(values)
    assert values[0] == 5
    assert 18 <= values[-1] <= 22
    # The paper's stated refined anchor.
    assert theory.m_star(theory.MU_STAR) == 8
    # Empirical cross-check: the adversarial search finds no violation at or
    # above the analytic curve for a few sampled mu values (it is a lower
    # bound on the true threshold, so it must not exceed the reconstruction
    # by construction of the check).
    for mu in (0.78, theory.MU_STAR, 0.9):
        est = theory.m_star_empirical(mu, max_m=10, trials_per_m=4, seed=2)
        assert est <= max(10, theory.m_star(mu))
    # ASCII rendering of the curve.
    rows = [[f"{mu:.3f}", k, kh, m] for mu, k, kh, m in curve]
    chart_lines = []
    max_m = max(values)
    for mu, _, _, m in curve:
        marker = " <-- mu = sqrt(3)/2 (paper: m* = 8)" if abs(mu - theory.MU_STAR) < 0.006 else ""
        chart_lines.append(f"mu={mu:.3f} |" + "#" * m + f" {m}{marker}")
    reporter(
        "FIG8: m*(mu) over mu in [0.75, 0.95] (calibrated reconstruction)",
        format_table(["mu", "k*", "k-hat", "m*"], rows) + "\n\n" + "\n".join(chart_lines),
    )
