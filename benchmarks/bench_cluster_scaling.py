"""Scaling benchmark for the sharded scheduling cluster (PR 3 tentpole).

Drives the *same* cold/warm workload against

1. the single-process daemon (``repro.service`` — the PR 2 serving path), and
2. a sharded cluster (``repro.service.cluster`` — router + N shard workers,
   4 by default),

and compares **warm-hit throughput**: every warm request is a fingerprint
cache hit, which in the cluster splits between the router process (parse +
fingerprint + route) and the owning shard (local lookup + serialisation).
With enough cores the shards work in parallel and hit throughput scales
past the single daemon's one-dispatcher ceiling; the acceptance bar is
**>= 2x at 4 shards**.

The bar is only *enforced* when the host actually has at least as many CPU
cores as shards — consistent-hash sharding multiplies usable cores, and on
a 1-core container every extra process is pure overhead, so asserting a
parallel-scaling bar there would only measure the scheduler's time-slicing.
The measurement itself always runs and lands in the BENCH JSON (with
``cpu_count`` so readers can judge), and ``--enforce``/``--no-enforce``
override the automatic choice.

Correctness bars always apply: zero request errors, every warm response
byte-identical across replays, and every cluster response byte-identical
(canonical JSON) to a direct ``Scheduler.schedule()`` call in this process.

Run directly (CI uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py [--quick] [--shards N]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.model.instance import Instance
from repro.registry import make_scheduler
from repro.service import (
    ServiceClient,
    canonical_json,
    run_loadtest,
    start_background_server,
    start_cluster,
)
from repro.service.loadtest import build_workload_payloads


def check_byte_identity(payloads: list[dict], base_url: str) -> int:
    """Replay every payload once and diff against direct scheduler calls.

    Returns the number of mismatching instances (0 = byte-identical).
    """
    client = ServiceClient(base_url)
    mismatches = 0
    for payload in payloads:
        response = client.schedule_payload(payload)
        instance = Instance.from_dict(payload["instance"])
        scheduler = make_scheduler(payload["algorithm"], payload.get("params"))
        schedule = scheduler.schedule(instance)
        direct = {
            "algorithm": schedule.algorithm or scheduler.name,
            "makespan": schedule.makespan(),
            "num_tasks": instance.num_tasks,
            "num_procs": instance.num_procs,
            "schedule": schedule.as_dict(),
        }
        if canonical_json(response["result"]) != canonical_json(direct):
            mismatches += 1
            print(
                f"MISMATCH on {instance.name!r}: cluster makespan "
                f"{response['result']['makespan']!r} vs direct "
                f"{direct['makespan']!r}"
            )
    return mismatches


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes for CI")
    parser.add_argument("--shards", type=int, default=4, help="cluster shard count")
    parser.add_argument(
        "--backend",
        default="process",
        choices=["process", "thread"],
        help="shard worker backend (process falls back to threads in sandboxes)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="warm-hit throughput bar: cluster rps / single-daemon rps",
    )
    enforce = parser.add_mutually_exclusive_group()
    enforce.add_argument(
        "--enforce",
        action="store_true",
        help="fail below the bar even on hosts with fewer cores than shards",
    )
    enforce.add_argument(
        "--no-enforce",
        action="store_true",
        help="never fail on the speedup bar (correctness bars still apply)",
    )
    args = parser.parse_args(argv)

    instances = 6 if args.quick else 10
    tasks = 16 if args.quick else 30
    procs = 12 if args.quick else 16
    repeats = 4 if args.quick else 6
    concurrency = 8
    workload = dict(
        families=("mixed", "uniform"),
        instances=instances,
        tasks=tasks,
        procs=procs,
        seed=0,
        repeats=repeats,
        concurrency=concurrency,
        algorithm="mrt",
    )
    cpu_count = os.cpu_count() or 1
    if args.no_enforce:
        enforce_bar, reason = False, "disabled by --no-enforce"
    elif args.enforce:
        enforce_bar, reason = True, "forced by --enforce"
    elif cpu_count >= args.shards:
        enforce_bar, reason = True, f"{cpu_count} cores >= {args.shards} shards"
    else:
        enforce_bar, reason = False, (
            f"only {cpu_count} core(s) for {args.shards} shards — parallel "
            "scaling is physically unavailable, reporting informationally"
        )

    print(f"single-process daemon baseline ({tasks} tasks x {procs} procs)")
    server, _ = start_background_server(allow_shutdown=True)
    host, port = server.server_address[:2]
    try:
        single = run_loadtest(f"http://{host}:{port}", **workload)
    finally:
        server.close()

    print(f"{args.shards}-shard cluster (backend={args.backend}), same workload")
    cluster = start_cluster(args.shards, backend=args.backend, allow_shutdown=True)
    try:
        sharded = run_loadtest(cluster.url, **workload)
        payloads = build_workload_payloads(
            families=("mixed", "uniform"),
            instances=instances,
            tasks=tasks,
            procs=procs,
            seed=0,
            algorithm="mrt",
        )
        mismatches = check_byte_identity(payloads, cluster.url)
        backend = cluster.supervisor.backend
    finally:
        cluster.close()

    rps_single = single["warm"]["rps"]
    rps_cluster = sharded["warm"]["rps"]
    speedup = rps_cluster / rps_single if rps_single > 0 else float("inf")
    print(f"warm hits, single daemon : {rps_single:8.1f} req/s  "
          f"p50={single['warm']['p50_ms']:.2f}ms")
    print(f"warm hits, {args.shards}-shard     : {rps_cluster:8.1f} req/s  "
          f"p50={sharded['warm']['p50_ms']:.2f}ms")
    print(f"cluster/single warm-hit speedup: {speedup:.2f}x  "
          f"(bar {args.min_speedup:.1f}x, {'enforced' if enforce_bar else 'waived'}: "
          f"{reason})")
    for shard_id, shard in sorted(
        sharded.get("shard_distribution", {}).items(), key=lambda kv: int(kv[0])
    ):
        print(f"  shard {shard_id}: {shard['requests_forwarded']:4d} requests  "
              f"hits={shard['cache_hits']}  fast={shard['fast_hits']}")
    imbalance = (sharded.get("imbalance") or {}).get("max_over_ideal")
    if imbalance is not None:
        print(f"  imbalance (max/ideal): {imbalance:.2f}x")
    print(f"replayed responses consistent  : "
          f"{single['consistent'] and sharded['consistent']}")
    print(f"byte-identical to direct calls : {mismatches == 0}")

    bench = {
        "benchmark": "cluster_scaling",
        "quick": args.quick,
        "shards": args.shards,
        "backend": backend,
        "cpu_count": cpu_count,
        "warm_rps_single": rps_single,
        "warm_rps_cluster": rps_cluster,
        "speedup": speedup,
        "min_speedup": args.min_speedup,
        "bar_enforced": enforce_bar,
        "bar_reason": reason,
        "byte_identity_mismatches": mismatches,
        "single": single,
        "cluster": sharded,
    }
    print("BENCH " + json.dumps(bench, sort_keys=True))

    failures = []
    if enforce_bar and speedup < args.min_speedup:
        failures.append(
            f"cluster/single warm-hit speedup {speedup:.2f}x below the "
            f"{args.min_speedup:.1f}x bar"
        )
    if not single["consistent"] or not sharded["consistent"]:
        failures.append("replayed responses differ across warm passes")
    if mismatches:
        failures.append(f"{mismatches} response(s) differ from direct scheduler calls")
    for name, report in (("single", single), ("cluster", sharded)):
        errors = report["cold"]["errors"] + report["warm"]["errors"]
        if errors:
            failures.append(f"{errors} request error(s) against the {name} target")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
