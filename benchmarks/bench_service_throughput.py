"""Throughput benchmark for the scheduling service (PR 2 tentpole).

Self-hosts a :mod:`repro.service` HTTP server on an ephemeral port and
drives it with the cold/warm load generator:

1. **Cold phase** — a pool of distinct instances (mixed + uniform families
   plus the deterministic adversarial instances), every request a
   fingerprint-cache miss that runs the full scheduler.
2. **Warm phase** — the same pool replayed several times; every request is
   answered from the LRU cache.  The acceptance bar is a ≥ 5× throughput
   speedup of warm over cold (the repeated-instance workload the service
   exists to amortise).
3. **Byte-identity check** — every service ``result`` payload (schedule +
   makespan) must be byte-identical, under canonical JSON, to a direct
   ``Scheduler.schedule()`` call on the same instance in this process.
4. **Transport soak** — both HTTP transports (threaded and asyncio) serve
   the warm pool to hundreds of concurrent keep-alive connections; neither
   may drop a connection, and the asyncio frontend must beat the threaded
   one by ≥ 1.5× where the machine has the cores to show it (single-core
   runners report the ratio informationally, like the cluster bench).

Emits a ``BENCH {...}`` JSON line for CI artifact collection and exits
non-zero when the speedup bar or the identity check fails.

Run directly (CI uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.model.instance import Instance
from repro.registry import make_scheduler
from repro.service import canonical_json, run_loadtest, start_background_server
from repro.service.core import SchedulerService
from repro.service.loadtest import build_workload_payloads, run_soak


def check_byte_identity(payloads: list[dict], base_url: str) -> int:
    """Replay every payload once and diff against direct scheduler calls.

    Returns the number of mismatching instances (0 = byte-identical).
    """
    from repro.service import ServiceClient

    client = ServiceClient(base_url)
    mismatches = 0
    for payload in payloads:
        response = client.schedule_payload(payload)
        instance = Instance.from_dict(payload["instance"])
        scheduler = make_scheduler(payload["algorithm"], payload.get("params"))
        schedule = scheduler.schedule(instance)
        direct = {
            "algorithm": schedule.algorithm or scheduler.name,
            "makespan": schedule.makespan(),
            "num_tasks": instance.num_tasks,
            "num_procs": instance.num_procs,
            "schedule": schedule.as_dict(),
        }
        if canonical_json(response["result"]) != canonical_json(direct):
            mismatches += 1
            print(
                f"MISMATCH on {instance.name!r}: service makespan "
                f"{response['result']['makespan']!r} vs direct "
                f"{direct['makespan']!r}"
            )
    return mismatches


def measure_obs_overhead(payloads: list[dict], *, repeats: int) -> float:
    """Fractional warm-path cost of tracing + histograms.

    Self-hosts two otherwise-identical daemons — one with ``tracing=True``
    (the default) and one with ``tracing=False`` — primes both caches with
    the same payloads, and times warm cache-hit replays back-to-back in
    *pairs* (alternating which configuration goes first), so clock drift
    and shared-runner noise hit both sides equally.  The overhead is the
    *median* paired difference over the mean of the untraced fastest
    decile: the median cancels symmetric noise within pairs, the decile
    floor is the honest per-request base cost (noise only adds time).

    The measurement repeats in three independent rounds and keeps the
    *smallest* estimate: interference (another process stealing the core,
    a frequency drop) only ever inflates an estimate, while a genuine
    instrumentation regression inflates every round alike.

    Returns a fraction (0.05 = tracing makes the warm path 5% slower;
    small negatives are measurement noise).
    """
    from repro.service import ServiceClient

    servers: dict[bool, object] = {}
    clients: dict[bool, ServiceClient] = {}

    def round_overhead() -> float:
        diffs: list[float] = []
        base: list[float] = []
        for i in range(repeats):
            order = (True, False) if i % 2 == 0 else (False, True)
            for payload in payloads:
                pair = {}
                for tracing in order:
                    start = time.perf_counter()
                    clients[tracing].schedule_payload(payload)
                    pair[tracing] = time.perf_counter() - start
                diffs.append(pair[True] - pair[False])
                base.append(pair[False])
        diffs.sort()
        base.sort()
        decile = max(1, len(base) // 10)
        floor = sum(base[:decile]) / decile
        return diffs[len(diffs) // 2] / floor

    try:
        for tracing in (True, False):
            server, _ = start_background_server(
                service=SchedulerService(tracing=tracing)
            )
            servers[tracing] = server
            host, port = server.server_address[:2]
            clients[tracing] = ServiceClient(f"http://{host}:{port}")
            # Prime the fingerprint cache, then warm the whole stack
            # (lazy imports, trace ring growth, socket buffers) so the
            # recorded rounds measure steady state.
            for _ in range(3):
                for payload in payloads:
                    clients[tracing].schedule_payload(payload)
        return min(round_overhead() for _ in range(3))
    finally:
        for server in servers.values():
            server.close()


def measure_high_concurrency(
    payloads: list[dict], *, connections: int, requests_per_connection: int
) -> dict[str, dict]:
    """Warm-hit soak of both transports at high connection fan-in.

    Boots one daemon per transport, primes its fingerprint cache with the
    full pool, then holds ``connections`` concurrent keep-alive connections
    against it (:func:`run_soak`).  Per-request work is identical cache
    hits, so the throughput difference is purely how each transport handles
    hundreds of simultaneous sockets: a thread per connection versus one
    event loop feeding a worker pool.
    """
    from repro.service import ServiceClient

    encoded = [json.dumps(p).encode() for p in payloads]
    results: dict[str, dict] = {}
    for transport in ("threaded", "asyncio"):
        server, _ = start_background_server(transport=transport)
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        try:
            client = ServiceClient(url)
            for payload in payloads:
                client.schedule_payload(payload)
            results[transport] = run_soak(
                url,
                encoded,
                connections=connections,
                requests_per_connection=requests_per_connection,
            )
        finally:
            server.close()
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes for CI")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="acceptance bar for warm/cold throughput (default 5x)",
    )
    parser.add_argument(
        "--max-obs-overhead",
        type=float,
        default=0.05,
        help="acceptance bar for the warm-path cost of tracing + "
        "histograms (default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--soak-connections",
        type=int,
        default=256,
        help="concurrent keep-alive connections in the transport soak",
    )
    parser.add_argument(
        "--min-transport-ratio",
        type=float,
        default=1.5,
        help="acceptance bar for asyncio/threaded warm-hit throughput at "
        "high connection fan-in (default 1.5x)",
    )
    enforce = parser.add_mutually_exclusive_group()
    enforce.add_argument(
        "--enforce-transport-ratio",
        action="store_true",
        help="enforce the transport-ratio bar even on few cores",
    )
    enforce.add_argument(
        "--no-enforce-transport-ratio",
        action="store_true",
        help="report the transport ratio without gating on it",
    )
    args = parser.parse_args(argv)

    instances = 6 if args.quick else 10
    tasks = 20 if args.quick else 40
    procs = 16 if args.quick else 32
    repeats = 3 if args.quick else 5
    concurrency = 6 if args.quick else 8

    server, _ = start_background_server(allow_shutdown=True)
    host, port = server.server_address[:2]
    base_url = f"http://{host}:{port}"
    print(f"self-hosted service on {base_url}")
    try:
        report = run_loadtest(
            base_url,
            families=("mixed", "uniform"),
            instances=instances,
            tasks=tasks,
            procs=procs,
            seed=0,
            repeats=repeats,
            concurrency=concurrency,
            algorithm="mrt",
        )
        payloads = build_workload_payloads(
            families=("mixed", "uniform"),
            instances=instances,
            tasks=tasks,
            procs=procs,
            seed=0,
            algorithm="mrt",
        )
        mismatches = check_byte_identity(payloads, base_url)
    finally:
        server.close()

    obs_overhead = measure_obs_overhead(
        payloads, repeats=30 if args.quick else 60
    )

    # Transport soak: the asyncio frontend exists for connection fan-in,
    # so gate its advantage there — but only where the machine can show
    # it.  On very few cores the threaded transport's per-connection
    # threads and the asyncio worker pool contend for the same core and
    # the ratio is scheduler noise, so (like the cluster-scaling bench)
    # the bar is reported informationally instead of enforced.
    cpu_count = os.cpu_count() or 1
    if args.no_enforce_transport_ratio:
        enforce_ratio, ratio_reason = False, "disabled by --no-enforce-transport-ratio"
    elif args.enforce_transport_ratio:
        enforce_ratio, ratio_reason = True, "forced by --enforce-transport-ratio"
    elif cpu_count >= 2:
        enforce_ratio, ratio_reason = True, f"{cpu_count} cores available"
    else:
        enforce_ratio, ratio_reason = False, (
            "single core — transports serialise on the same CPU and the "
            "ratio is scheduler noise, reporting informationally"
        )
    soaks = measure_high_concurrency(
        payloads,
        connections=args.soak_connections,
        requests_per_connection=8 if args.quick else 20,
    )
    threaded_rps = soaks["threaded"]["ok_rps"]
    asyncio_rps = soaks["asyncio"]["ok_rps"]
    transport_ratio = (
        asyncio_rps / threaded_rps if threaded_rps > 0 else float("inf")
    )

    cold, warm = report["cold"], report["warm"]
    print(f"pool: {report['config']['pool_size']} instances "
          f"({tasks} tasks x {procs} procs), {concurrency} client threads")
    print(f"cold : {cold['requests']:5d} requests  {cold['rps']:8.1f} req/s  "
          f"p50={cold['p50_ms']:7.2f}ms  p99={cold['p99_ms']:7.2f}ms")
    print(f"warm : {warm['requests']:5d} requests  {warm['rps']:8.1f} req/s  "
          f"p50={warm['p50_ms']:7.2f}ms  p99={warm['p99_ms']:7.2f}ms")
    print(f"warm/cold speedup: {report['speedup']:.1f}x  "
          f"(bar: {args.min_speedup:.1f}x)")
    print(f"replayed responses consistent  : {report['consistent']}")
    print(f"byte-identical to direct calls : {mismatches == 0}")
    print(f"tracing+histogram warm-path cost: {obs_overhead:+.1%}  "
          f"(bar: {args.max_obs_overhead:.0%})")
    for transport in ("threaded", "asyncio"):
        soak = soaks[transport]
        print(f"soak {transport:<8}: {soak['ok']:5d} ok of {soak['requests']} over "
              f"{soak['connections']} connections  {soak['ok_rps']:8.1f} req/s  "
              f"rejected={soak['rejected']}  errors={soak['errors']}")
    print(f"asyncio/threaded soak throughput: {transport_ratio:.2f}x  "
          f"(bar {args.min_transport_ratio:.1f}x, "
          f"{'enforced' if enforce_ratio else 'waived'}: {ratio_reason})")
    bench = {
        "benchmark": "service_throughput",
        "quick": args.quick,
        "report": report,
        "byte_identity_mismatches": mismatches,
        "min_speedup": args.min_speedup,
        "obs_overhead_ratio": obs_overhead,
        "max_obs_overhead": args.max_obs_overhead,
        "cpu_count": cpu_count,
        "soak": soaks,
        "transport_ratio": transport_ratio,
        "min_transport_ratio": args.min_transport_ratio,
        "transport_ratio_enforced": enforce_ratio,
        "transport_ratio_reason": ratio_reason,
    }
    print("BENCH " + json.dumps(bench, sort_keys=True))

    failures = []
    if report["speedup"] < args.min_speedup:
        failures.append(
            f"warm/cold speedup {report['speedup']:.1f}x below the "
            f"{args.min_speedup:.1f}x bar"
        )
    if not report["consistent"]:
        failures.append("replayed responses differ across warm passes")
    if mismatches:
        failures.append(f"{mismatches} response(s) differ from direct scheduler calls")
    if cold["errors"] or warm["errors"]:
        failures.append(f"request errors: cold={cold['errors']} warm={warm['errors']}")
    if obs_overhead > args.max_obs_overhead:
        failures.append(
            f"tracing+histogram warm-path overhead {obs_overhead:.1%} above "
            f"the {args.max_obs_overhead:.0%} bar"
        )
    for transport in ("threaded", "asyncio"):
        if soaks[transport]["errors"]:
            failures.append(
                f"{transport} soak had {soaks[transport]['errors']} "
                f"transport-level error(s) at {args.soak_connections} connections"
            )
    if enforce_ratio and transport_ratio < args.min_transport_ratio:
        failures.append(
            f"asyncio/threaded soak throughput {transport_ratio:.2f}x below "
            f"the {args.min_transport_ratio:.1f}x bar"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
