"""Throughput benchmark for the scheduling service (PR 2 tentpole).

Self-hosts a :mod:`repro.service` HTTP server on an ephemeral port and
drives it with the cold/warm load generator:

1. **Cold phase** — a pool of distinct instances (mixed + uniform families
   plus the deterministic adversarial instances), every request a
   fingerprint-cache miss that runs the full scheduler.
2. **Warm phase** — the same pool replayed several times; every request is
   answered from the LRU cache.  The acceptance bar is a ≥ 5× throughput
   speedup of warm over cold (the repeated-instance workload the service
   exists to amortise).
3. **Byte-identity check** — every service ``result`` payload (schedule +
   makespan) must be byte-identical, under canonical JSON, to a direct
   ``Scheduler.schedule()`` call on the same instance in this process.

Emits a ``BENCH {...}`` JSON line for CI artifact collection and exits
non-zero when the speedup bar or the identity check fails.

Run directly (CI uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.model.instance import Instance
from repro.registry import make_scheduler
from repro.service import canonical_json, run_loadtest, start_background_server
from repro.service.loadtest import build_workload_payloads


def check_byte_identity(payloads: list[dict], base_url: str) -> int:
    """Replay every payload once and diff against direct scheduler calls.

    Returns the number of mismatching instances (0 = byte-identical).
    """
    from repro.service import ServiceClient

    client = ServiceClient(base_url)
    mismatches = 0
    for payload in payloads:
        response = client.schedule_payload(payload)
        instance = Instance.from_dict(payload["instance"])
        scheduler = make_scheduler(payload["algorithm"], payload.get("params"))
        schedule = scheduler.schedule(instance)
        direct = {
            "algorithm": schedule.algorithm or scheduler.name,
            "makespan": schedule.makespan(),
            "num_tasks": instance.num_tasks,
            "num_procs": instance.num_procs,
            "schedule": schedule.as_dict(),
        }
        if canonical_json(response["result"]) != canonical_json(direct):
            mismatches += 1
            print(
                f"MISMATCH on {instance.name!r}: service makespan "
                f"{response['result']['makespan']!r} vs direct "
                f"{direct['makespan']!r}"
            )
    return mismatches


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes for CI")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="acceptance bar for warm/cold throughput (default 5x)",
    )
    args = parser.parse_args(argv)

    instances = 6 if args.quick else 10
    tasks = 20 if args.quick else 40
    procs = 16 if args.quick else 32
    repeats = 3 if args.quick else 5
    concurrency = 6 if args.quick else 8

    server, _ = start_background_server(allow_shutdown=True)
    host, port = server.server_address[:2]
    base_url = f"http://{host}:{port}"
    print(f"self-hosted service on {base_url}")
    try:
        report = run_loadtest(
            base_url,
            families=("mixed", "uniform"),
            instances=instances,
            tasks=tasks,
            procs=procs,
            seed=0,
            repeats=repeats,
            concurrency=concurrency,
            algorithm="mrt",
        )
        payloads = build_workload_payloads(
            families=("mixed", "uniform"),
            instances=instances,
            tasks=tasks,
            procs=procs,
            seed=0,
            algorithm="mrt",
        )
        mismatches = check_byte_identity(payloads, base_url)
    finally:
        server.close()

    cold, warm = report["cold"], report["warm"]
    print(f"pool: {report['config']['pool_size']} instances "
          f"({tasks} tasks x {procs} procs), {concurrency} client threads")
    print(f"cold : {cold['requests']:5d} requests  {cold['rps']:8.1f} req/s  "
          f"p50={cold['p50_ms']:7.2f}ms  p99={cold['p99_ms']:7.2f}ms")
    print(f"warm : {warm['requests']:5d} requests  {warm['rps']:8.1f} req/s  "
          f"p50={warm['p50_ms']:7.2f}ms  p99={warm['p99_ms']:7.2f}ms")
    print(f"warm/cold speedup: {report['speedup']:.1f}x  "
          f"(bar: {args.min_speedup:.1f}x)")
    print(f"replayed responses consistent  : {report['consistent']}")
    print(f"byte-identical to direct calls : {mismatches == 0}")
    bench = {
        "benchmark": "service_throughput",
        "quick": args.quick,
        "report": report,
        "byte_identity_mismatches": mismatches,
        "min_speedup": args.min_speedup,
    }
    print("BENCH " + json.dumps(bench, sort_keys=True))

    failures = []
    if report["speedup"] < args.min_speedup:
        failures.append(
            f"warm/cold speedup {report['speedup']:.1f}x below the "
            f"{args.min_speedup:.1f}x bar"
        )
    if not report["consistent"]:
        failures.append("replayed responses differ across warm passes")
    if mismatches:
        failures.append(f"{mismatches} response(s) differ from direct scheduler calls")
    if cold["errors"] or warm["errors"]:
        failures.append(f"request errors: cold={cold['errors']} warm={warm['errors']}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
