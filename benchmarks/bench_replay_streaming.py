"""Streamed cluster replay vs the synchronous daemon path (PR 10 tentpole).

Drives the same replay workload through

1. a single-process daemon with its per-epoch plan cache purged before
   every request (the cold reference path), and
2. a sharded cluster routed by ``(trace-prefix, kernel)``, replayed twice —
   the second pass hits the shard-local plan cache on every epoch.

and compares **end-to-end wall clock per replay**.  A warm shard rebuilds
each epoch's schedule from the content-addressed plan instead of re-running
the kernel's dichotomic allotment search, so the warm streamed pass must
beat the cold daemon path outright; the acceptance bar is **>= 1.2x**.
Plan-cache warming needs no extra cores (it removes work rather than
parallelising it), so the bar is enforced everywhere unless
``--no-enforce``.

Correctness bars always apply: every streamed response reassembles into a
document byte-identical (canonical JSON, wall-clock fields zeroed) to an
in-process ``compute_replay_response`` for the same trace, the streamed
epoch frames are exactly the final document's ``epochs`` list, and the
warm pass is byte-identical to the cold pass.

Run directly (CI uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_replay_streaming.py [--quick]
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
import time

from repro.online import compute_replay_response
from repro.registry import make_rescheduler
from repro.service import ServiceClient, canonical_json, start_cluster
from repro.service import start_background_server
from repro.workloads.arrivals import make_trace


def scrub(document: dict) -> dict:
    """Zero the wall-clock fields; everything else must be byte-stable."""
    doc = copy.deepcopy(document)
    doc.pop("elapsed_ms", None)
    doc["result"]["compute_ms"] = 0.0
    for epoch in doc["result"]["epochs"]:
        epoch["compute_ms"] = 0.0
    return doc


def build_workload(quick: bool) -> list[dict]:
    """Replay specs with repeated traces so shards can go warm."""
    tasks = 32 if quick else 64
    procs = 8 if quick else 16
    seeds = range(3 if quick else 6)
    specs = []
    for seed in seeds:
        for kernel in ("barrier", "availability"):
            specs.append(
                {
                    "generate": {
                        "pattern": "poisson",
                        "family": "mixed",
                        "tasks": tasks,
                        "procs": procs,
                        "seed": seed,
                    },
                    "kernel": kernel,
                }
            )
    return specs


def timed_pass(client: ServiceClient, specs: list[dict]) -> tuple[float, list[dict]]:
    """Replay every spec once; returns (total seconds, final documents)."""
    finals = []
    start = time.perf_counter()
    for spec in specs:
        finals.append(client.replay(generate=spec["generate"], kernel=spec["kernel"]))
    return time.perf_counter() - start, finals


def reference_documents(specs: list[dict]) -> list[dict]:
    """In-process ground truth for the byte-identity bar."""
    documents = []
    for spec in specs:
        generate = spec["generate"]
        trace = make_trace(
            generate["pattern"],
            generate["family"],
            generate["tasks"],
            generate["procs"],
            seed=generate["seed"],
        )
        documents.append(
            compute_replay_response(
                trace, make_rescheduler(spec["kernel"], "mrt"), False
            )
        )
    return documents


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes for CI")
    parser.add_argument("--shards", type=int, default=2, help="cluster shard count")
    parser.add_argument(
        "--backend",
        default="process",
        choices=["process", "thread"],
        help="shard worker backend (process falls back to threads in sandboxes)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.2,
        help="bar: cold-daemon wall clock / warm-cluster wall clock",
    )
    parser.add_argument(
        "--no-enforce",
        action="store_true",
        help="never fail on the speedup bar (correctness bars still apply)",
    )
    args = parser.parse_args(argv)

    specs = build_workload(args.quick)
    print(f"{len(specs)} replays per pass "
          f"({specs[0]['generate']['tasks']} tasks x "
          f"{specs[0]['generate']['procs']} procs, both kernels)")

    print("cold daemon baseline (plan cache purged before every replay)")
    server, _ = start_background_server(allow_shutdown=False)
    try:
        client = ServiceClient(server.url)
        cold_finals = []
        cold_seconds = 0.0
        for spec in specs:
            client.purge(all=True)
            elapsed, finals = timed_pass(client, [spec])
            cold_seconds += elapsed
            cold_finals.extend(finals)
    finally:
        server.close()

    print(f"{args.shards}-shard cluster (backend={args.backend}): cold then warm pass")
    cluster = start_cluster(
        args.shards, backend=args.backend, allow_shutdown=False
    )
    try:
        client = ServiceClient(cluster.url)
        cluster_cold_seconds, cluster_cold_finals = timed_pass(client, specs)
        warm_seconds, warm_finals = timed_pass(client, specs)
        plan_cache = client.metrics()["cluster"]["plan_cache"]
        backend = cluster.supervisor.backend
    finally:
        cluster.close()

    reference = reference_documents(specs)
    mismatches = 0
    for which, finals in (
        ("daemon-cold", cold_finals),
        ("cluster-cold", cluster_cold_finals),
        ("cluster-warm", warm_finals),
    ):
        for spec, final, expected in zip(specs, finals, reference):
            if canonical_json(scrub(final)) != canonical_json(scrub(expected)):
                mismatches += 1
                print(f"MISMATCH [{which}] on {spec['generate']} "
                      f"kernel={spec['kernel']}")

    per_cold = 1e3 * cold_seconds / len(specs)
    per_warm = 1e3 * warm_seconds / len(specs)
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    print(f"cold daemon      : {cold_seconds * 1e3:8.1f} ms total  "
          f"{per_cold:6.2f} ms/replay")
    print(f"cold cluster     : {cluster_cold_seconds * 1e3:8.1f} ms total")
    print(f"warm cluster     : {warm_seconds * 1e3:8.1f} ms total  "
          f"{per_warm:6.2f} ms/replay")
    print(f"warm-cluster vs cold-daemon speedup: {speedup:.2f}x  "
          f"(bar {args.min_speedup:.1f}x, "
          f"{'waived by --no-enforce' if args.no_enforce else 'enforced'})")
    print(f"cluster plan cache: hits={plan_cache['hits']} "
          f"misses={plan_cache['misses']} hit_rate={plan_cache['hit_rate']:.2f}")
    print(f"streamed responses byte-identical to in-process kernel: "
          f"{mismatches == 0}")

    bench = {
        "benchmark": "replay_streaming",
        "quick": args.quick,
        "shards": args.shards,
        "backend": backend,
        "replays_per_pass": len(specs),
        "cold_daemon_ms": cold_seconds * 1e3,
        "cold_cluster_ms": cluster_cold_seconds * 1e3,
        "warm_cluster_ms": warm_seconds * 1e3,
        "speedup": speedup,
        "min_speedup": args.min_speedup,
        "bar_enforced": not args.no_enforce,
        "plan_cache": plan_cache,
        "byte_identity_mismatches": mismatches,
    }
    print("BENCH " + json.dumps(bench, sort_keys=True))

    failures = []
    if not args.no_enforce and speedup < args.min_speedup:
        failures.append(
            f"warm-cluster/cold-daemon speedup {speedup:.2f}x below the "
            f"{args.min_speedup:.1f}x bar"
        )
    if mismatches:
        failures.append(
            f"{mismatches} streamed response(s) differ from the in-process kernel"
        )
    if plan_cache["hits"] == 0:
        failures.append("warm pass produced zero plan-cache hits")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
