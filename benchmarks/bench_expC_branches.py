"""EXP-C — which branch of the dual test fires, as a function of the μ-area.

Section 5 dispatches between the canonical list branch (small canonical
μ-area W_m) and the knapsack branch (large W_m).  This benchmark runs the
dual test at the final accepted guess across workloads with varying density
and records the branch used together with W_m/(μ·m·d); the asserted shape is
that the list branch is used whenever the area is below the μ·m·d threshold
(by construction of the dispatch) and that every accepted schedule is within
√3·d.
"""

from __future__ import annotations

import math

from repro.analysis.tables import format_table
from repro.core.canonical_list import MU_STAR
from repro.core.mrt import MRTDual, MRTScheduler
from repro.workloads.adversarial import shelf_overflow_instance
from repro.workloads.generators import heavy_tailed_instance, mixed_instance, rigid_heavy_instance

SQRT3 = math.sqrt(3.0)

FACTORIES = {
    "mixed": lambda s: mixed_instance(30, 32, seed=s),
    "heavy-tailed": lambda s: heavy_tailed_instance(30, 32, seed=s),
    "rigid-heavy": lambda s: rigid_heavy_instance(30, 32, seed=s),
    "shelf-overflow": lambda s: shelf_overflow_instance(32, seed=s),
}
SEEDS = (0, 1)


def run_battery():
    rows = []
    for name, factory in FACTORIES.items():
        for seed in SEEDS:
            instance = factory(seed)
            scheduler = MRTScheduler(eps=1e-3)
            scheduler.schedule(instance)
            guess = scheduler.last_result.best_guess
            dual = MRTDual()
            schedule = dual.run(instance, guess)
            if schedule is None:
                continue
            area = dual.last_mu_area or 0.0
            threshold = MU_STAR * instance.num_procs * guess
            rows.append(
                (
                    f"{name}/{seed}",
                    area / threshold,
                    dual.last_branch,
                    schedule.makespan() / guess,
                )
            )
    return rows


def test_expC_branch_dispatch(benchmark, reporter):
    rows = benchmark.pedantic(run_battery, rounds=1, iterations=1)
    assert rows
    for name, rel_area, branch, ratio in rows:
        assert ratio <= SQRT3 + 1e-9, name
        assert branch in {
            "malleable-list",
            "canonical-list",
            "two-shelves",
            "two-shelves-trivial",
        }
    branches = {branch for _, _, branch, _ in rows}
    assert branches, "at least one branch must be exercised"
    reporter(
        "EXP-C: branch used at the accepted guess vs relative μ-area W_m/(μ·m·d)",
        format_table(
            ["instance", "W_m / (mu*m*d)", "branch", "makespan/d"],
            [[n, f"{a:.3f}", b, f"{r:.4f}"] for n, a, b, r in rows],
        ),
    )
