"""THM3 — the overall √3 guarantee of the combined algorithm (Theorem 3 / Section 5).

For every workload family, the makespan of the full MRT scheduler divided by
the strongest lower bound (and, on small instances, by the exact optimum)
must never exceed √3.  This is the headline result of the paper.
"""

from __future__ import annotations

import math

from repro.analysis.tables import format_table
from repro.baselines.optimal import optimal_schedule
from repro.core.mrt import MRTScheduler
from repro.lower_bounds import best_lower_bound
from repro.workloads.generators import (
    heavy_tailed_instance,
    mixed_instance,
    rigid_heavy_instance,
    uniform_instance,
)
from repro.workloads.adversarial import shelf_overflow_instance
from repro.workloads.ocean import ocean_instance

SQRT3 = math.sqrt(3.0)

FAMILIES = {
    "uniform": lambda s: uniform_instance(25, 16, seed=s),
    "mixed": lambda s: mixed_instance(25, 16, seed=s),
    "heavy-tailed": lambda s: heavy_tailed_instance(25, 16, seed=s),
    "rigid-heavy": lambda s: rigid_heavy_instance(25, 16, seed=s),
    "shelf-overflow": lambda s: shelf_overflow_instance(16, seed=s),
    "ocean": lambda s: ocean_instance(16, blocks=5, seed=s),
}
SEEDS = (0, 1, 2)


def run_battery():
    rows = []
    for name, factory in FAMILIES.items():
        worst = 0.0
        mean = 0.0
        count = 0
        for seed in SEEDS:
            instance = factory(seed)
            schedule = MRTScheduler(eps=1e-3).schedule(instance)
            ratio = schedule.makespan() / best_lower_bound(instance)
            worst = max(worst, ratio)
            mean += ratio
            count += 1
        rows.append((name, mean / count, worst))
    # exact-optimum check on small instances
    exact_worst = 0.0
    for seed in range(4):
        instance = mixed_instance(5, 4, seed=seed)
        mrt = MRTScheduler().schedule(instance).makespan()
        opt = optimal_schedule(instance).makespan()
        exact_worst = max(exact_worst, mrt / opt)
    return rows, exact_worst


def test_thm3_sqrt3_guarantee(benchmark, reporter):
    rows, exact_worst = benchmark.pedantic(run_battery, rounds=1, iterations=1)
    for name, mean, worst in rows:
        assert worst <= SQRT3 * 1.01, f"√3 guarantee violated on {name}"
    assert exact_worst <= SQRT3 * (1 + 1e-6)
    reporter(
        "THM3: makespan / lower bound of the full MRT scheduler (bound sqrt(3) = %.4f)"
        % SQRT3,
        format_table(
            ["workload family", "mean ratio", "worst ratio"],
            [[n, f"{m:.4f}", f"{w:.4f}"] for n, m, w in rows],
        )
        + f"\nworst ratio vs the exact optimum on small instances: {exact_worst:.4f}",
    )
