"""EXP-A — the average-case study announced in Section 5 of the paper.

"Experiments are currently under progress to assert the good average
behaviour of our heuristics."  This benchmark runs that study: the full MRT
scheduler against the two-phase baselines (Turek/Wolf/Yu enumeration and
Ludwig's single-allotment selection, both with shelf packing) and the naive
anchors (sequential LPT, gang scheduling), over four workload families and
three machine sizes.  The asserted *shape*: MRT has the best mean and worst
ratio, the two-phase methods stay within their constant factors, the naive
anchors degrade.
"""

from __future__ import annotations

from repro.analysis.experiments import sweep_workloads
from repro.analysis.tables import format_table

FAMILIES = ("uniform", "mixed", "heavy-tailed", "rigid-heavy")
MACHINES = (8, 16, 32)


def run_sweep():
    return sweep_workloads(
        families=FAMILIES,
        num_tasks=30,
        machine_sizes=MACHINES,
        repetitions=2,
        seed=7,
    )


def test_expA_algorithm_comparison(benchmark, reporter):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    means = {a: result.ratios(a).mean() for a in result.algorithms()}
    worsts = {a: result.ratios(a).max() for a in result.algorithms()}
    # Shape claimed by the paper: the sqrt(3) algorithm dominates.
    assert means["mrt-sqrt3"] == min(means.values())
    assert worsts["mrt-sqrt3"] <= 1.7330
    assert worsts["mrt-sqrt3"] <= worsts["ludwig-ffdh"] + 1e-9
    assert worsts["mrt-sqrt3"] <= worsts["turek-ffdh"] + 1e-9
    # The naive anchors are clearly worse on average.
    assert means["gang"] > means["mrt-sqrt3"]
    assert means["sequential-lpt"] > means["mrt-sqrt3"]
    per_m_rows = []
    for algo in result.algorithms():
        grouped = result.grouped_by_procs(algo)
        per_m_rows.append([algo] + [f"{grouped[m]:.3f}" for m in MACHINES])
    reporter(
        "EXP-A: mean/worst makespan ratio vs lower bound "
        f"({len(result.records)} runs over {FAMILIES})",
        result.summary_table()
        + "\n\nmean ratio per machine size:\n"
        + format_table(["algorithm"] + [f"m={m}" for m in MACHINES], per_m_rows),
    )
