"""FIG3 — the initial canonical allocation and the T1/T2/T3 partition (Figure 3).

Figure 3 shows the canonical allotment split into the three classes used by
the knapsack branch, with their processor counts q1, q2, q3 and canonical
areas.  This benchmark regenerates the partition on a 32-processor workload
and asserts its defining properties.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.partition import LAMBDA_STAR, build_partition
from repro.lower_bounds import canonical_area_lower_bound
from repro.workloads.generators import mixed_instance

INSTANCE = mixed_instance(num_tasks=40, num_procs=32, seed=303, name="fig3")
GUESS = canonical_area_lower_bound(INSTANCE) * 1.05


def run_once():
    return build_partition(INSTANCE, GUESS, LAMBDA_STAR)


def test_fig3_canonical_partition(benchmark, reporter):
    part = benchmark(run_once)
    assert part is not None
    # The partition covers every task exactly once.
    assert sorted(part.t1 + part.t2 + part.t3) == list(range(INSTANCE.num_tasks))
    # Classification thresholds of Section 4.1.
    for i in part.t1:
        assert part.alloc.times[i] > LAMBDA_STAR * GUESS - 1e-9
    for i in part.t3:
        assert part.alloc.times[i] <= GUESS / 2 + 1e-9
        assert part.alloc.procs[i] == 1  # small tasks are sequential (Property 1)
    rows = [
        ["T1 (tall)", len(part.t1), part.q1, f"{part.area_t1:.4g}"],
        ["T2 (medium)", len(part.t2), part.q2, f"{part.area_t2:.4g}"],
        ["T3 (small, FF-packed)", len(part.t3), part.q3, f"{part.area_t3:.4g}"],
    ]
    reporter(
        "FIG3: canonical allocation partition (guess d = %.4g, λ = %.4g)"
        % (GUESS, LAMBDA_STAR),
        format_table(["class", "tasks", "processors q", "canonical area"], rows)
        + f"\nfree second-shelf width m - q2 - q3 = {part.free_shelf2}"
        + f"\nrequired Σγ to move to shelf 2      = {part.required_gamma()}",
    )
