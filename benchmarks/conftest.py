"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artefact of the paper (a figure's structure,
a theorem's bound, or one of the announced experiments) and asserts the
*shape* the paper claims; the timing numbers reported by pytest-benchmark
document the practical cost of each component (experiment EXP-B).

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to also see the regenerated tables and ASCII figures.
"""

from __future__ import annotations

import pytest


def report(title: str, body: str) -> None:
    """Print a regenerated artefact under a visible header (shown with -s)."""
    bar = "=" * max(20, len(title) + 8)
    print(f"\n{bar}\n>>> {title}\n{bar}\n{body}\n")


@pytest.fixture
def reporter():
    """Fixture handing the :func:`report` helper to benchmarks."""
    return report
