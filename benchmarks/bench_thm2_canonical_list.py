"""THM2 — Theorem 2: the Canonical List Algorithm within 2μ·d under its hypotheses.

The theorem requires an instance feasible at d, a machine with at least
m*(μ) processors and a canonical μ-area W_m ≤ μ·m·d; the produced schedule
then has length at most 2μ·d = √3·d.  The benchmark filters a random battery
down to the guesses that satisfy the hypotheses and checks the bound on
every one of them.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core import theory
from repro.core.canonical_list import MU_STAR, canonical_list_schedule
from repro.lower_bounds import canonical_area_lower_bound
from repro.workloads.generators import heavy_tailed_instance, mixed_instance

MACHINES = (8, 16, 32)
SEEDS = (0, 1, 2, 3)
FACTORS = (1.05, 1.2, 1.5)


def run_battery():
    rows = []
    for m in MACHINES:
        checked = 0
        worst = 0.0
        for seed in SEEDS:
            for factory in (mixed_instance, heavy_tailed_instance):
                instance = factory(25, m, seed=seed)
                lb = canonical_area_lower_bound(instance)
                for factor in FACTORS:
                    d = lb * factor
                    area = instance.mu_area(d)
                    if area is None or area > MU_STAR * m * d:
                        continue  # hypothesis of Theorem 2 not met
                    schedule = canonical_list_schedule(instance, d)
                    if schedule is None:
                        continue
                    checked += 1
                    worst = max(worst, schedule.makespan() / d)
        rows.append((m, checked, worst))
    return rows


def test_thm2_canonical_list_bound(benchmark, reporter):
    rows = benchmark(run_battery)
    bound = 2.0 * MU_STAR
    total = 0
    for m, checked, worst in rows:
        total += checked
        if m >= theory.m_star(MU_STAR) and checked:
            assert worst <= bound + 1e-9, f"Theorem 2 bound violated on m={m}"
    assert total > 0, "the battery must contain in-hypothesis cases"
    reporter(
        "THM2: canonical list length / d under the W_m <= mu*m*d hypothesis "
        f"(bound 2mu = {bound:.4f})",
        format_table(
            ["m", "in-hypothesis guesses", "worst length/d"],
            [[m, c, f"{w:.4f}"] for m, c, w in rows],
        ),
    )
