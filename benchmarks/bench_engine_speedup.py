"""Speedup benchmark for the vectorized allotment engine (PR 1 tentpole).

Three measurements, printed as a table:

1. **Cold throughput** — γ(d) for all tasks over a sweep of *distinct*
   deadlines: the scalar per-task reference loop (the pre-engine code path,
   reimplemented here verbatim) against one vectorized engine pass per
   deadline.
2. **Cached dual-search replay** — the same deadline set evaluated
   repeatedly, the access pattern of the schedulers (the Property-2
   lower bound, ``dual_search`` and ``MRTScheduler`` all re-probe the same
   guesses).  This is where the LRU memoization pays; the acceptance bar is
   a ≥ 3× speedup over the scalar loop.
3. **End-to-end EXP-A** — a small ``sweep_workloads`` serially and with
   ``workers=4``, double-checking that the parallel records are identical
   to the serial ones (modulo the measured per-run wall times).

Run directly (CI uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_engine_speedup.py [--quick]

Exits non-zero when the cached speedup drops below the 3× acceptance bar,
so the perf harness cannot silently rot.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

import numpy as np

from repro.analysis.experiments import sweep_workloads
from repro.core.allotment_engine import AllotmentEngine
from repro.model.instance import Instance
from repro.workloads.generators import make_workload


# --------------------------------------------------------------------------- #
# the scalar reference: the exact pre-engine per-task loop
# --------------------------------------------------------------------------- #
def scalar_allotment(instance: Instance, deadline: float):
    """Per-task γ(d) loop as it existed before the engine (reference)."""
    procs = np.empty(instance.num_tasks, dtype=int)
    times = np.empty(instance.num_tasks, dtype=float)
    works = np.empty(instance.num_tasks, dtype=float)
    for i, task in enumerate(instance.tasks):
        p = task.canonical_procs(deadline)
        if p is None:
            return None
        procs[i] = p
        times[i] = task.time(p)
        works[i] = task.work(p)
    return procs, times, works


def timeit(fn, *, repeat: int = 3) -> float:
    """Best-of-``repeat`` wall time of ``fn()``."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_allotment_throughput(quick: bool) -> tuple[float, float]:
    """Return (cold_speedup, cached_speedup) of the engine vs the scalar loop."""
    n_tasks = 60 if quick else 200
    m = 32 if quick else 64
    n_deadlines = 40 if quick else 200
    repeats = 5 if quick else 20

    instance = make_workload("mixed", n_tasks, m, seed=42)
    lb = instance.lower_bound()
    deadlines = list(np.linspace(lb * 0.5, lb * 3.0, n_deadlines))

    def scalar_sweep() -> None:
        for d in deadlines:
            scalar_allotment(instance, d)

    def engine_cold_sweep() -> None:
        # A fresh engine per call: every deadline is a miss (pure
        # vectorization, no memoization).
        engine = AllotmentEngine(instance.times_matrix, instance.works_matrix)
        for d in deadlines:
            engine.gamma(d)

    scalar_t = timeit(scalar_sweep)
    cold_t = timeit(engine_cold_sweep)

    # Cached replay: the dual-search pattern — the same guesses probed over
    # and over by the lower-bound search, dual_search and the branch duals.
    engine = AllotmentEngine(instance.times_matrix, instance.works_matrix)
    for d in deadlines:
        engine.gamma(d)  # warm

    def scalar_replay() -> None:
        for _ in range(repeats):
            for d in deadlines:
                scalar_allotment(instance, d)

    def cached_replay() -> None:
        for _ in range(repeats):
            for d in deadlines:
                engine.gamma(d)

    scalar_replay_t = timeit(scalar_replay)
    cached_replay_t = timeit(cached_replay)

    cold_speedup = scalar_t / cold_t
    cached_speedup = scalar_replay_t / cached_replay_t
    print(f"profile matrix                 : {n_tasks} tasks x {m} procs, "
          f"{n_deadlines} deadlines")
    print(f"scalar loop (cold)             : {scalar_t * 1e3:9.2f} ms")
    print(f"engine      (cold, no cache)   : {cold_t * 1e3:9.2f} ms   "
          f"speedup {cold_speedup:6.1f}x")
    print(f"scalar loop ({repeats}x replay)        : {scalar_replay_t * 1e3:9.2f} ms")
    print(f"engine      ({repeats}x replay, cached): {cached_replay_t * 1e3:9.2f} ms   "
          f"speedup {cached_speedup:6.1f}x")
    return cold_speedup, cached_speedup


def bench_expa_end_to_end(quick: bool) -> None:
    """Small EXP-A sweep: serial vs workers=4, with a determinism check.

    For reference, the same serial sweep on the pre-engine scalar code path
    (seed commit) measures ~30% slower end-to-end; the parallel fan-out
    additionally wins on multi-core hosts (it cannot on a single-core CI
    runner, where the pool only adds startup overhead — the hard gate here
    is record *identity*, which must hold everywhere).
    """
    kwargs = dict(
        families=("uniform", "mixed")
        if quick
        else ("uniform", "mixed", "heavy-tailed", "rigid-heavy"),
        num_tasks=12 if quick else 100,
        machine_sizes=(8,) if quick else (32,),
        repetitions=1 if quick else 3,
        seed=7,
    )
    start = time.perf_counter()
    serial = sweep_workloads(**kwargs)
    serial_t = time.perf_counter() - start
    start = time.perf_counter()
    parallel = sweep_workloads(**kwargs, workers=4)
    parallel_t = time.perf_counter() - start
    identical = len(serial.records) == len(parallel.records) and all(
        dataclasses.replace(a, runtime_seconds=0.0)
        == dataclasses.replace(b, runtime_seconds=0.0)
        for a, b in zip(serial.records, parallel.records)
    )
    import os

    cores = os.cpu_count() or 1
    print(f"EXP-A sweep ({len(serial.records)} runs) serial   : {serial_t:7.2f} s")
    print(f"EXP-A sweep ({len(parallel.records)} runs) workers=4: {parallel_t:7.2f} s   "
          f"speedup {serial_t / parallel_t:5.2f}x  ({cores} core(s) available)")
    print(f"parallel records identical to serial: {identical}")
    if not identical:
        raise SystemExit("FAIL: workers=4 records differ from the serial run")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes for CI")
    parser.add_argument(
        "--min-cached-speedup",
        type=float,
        default=3.0,
        help="acceptance bar for the cached replay (default 3x)",
    )
    args = parser.parse_args(argv)

    print("=" * 72)
    print(">>> allotment throughput: scalar loop vs vectorized engine")
    print("=" * 72)
    _, cached_speedup = bench_allotment_throughput(args.quick)
    print()
    print("=" * 72)
    print(">>> end-to-end EXP-A: serial vs workers=4")
    print("=" * 72)
    bench_expa_end_to_end(args.quick)
    print()
    if cached_speedup < args.min_cached_speedup:
        print(
            f"FAIL: cached replay speedup {cached_speedup:.1f}x is below the "
            f"{args.min_cached_speedup:.1f}x acceptance bar"
        )
        return 1
    print(f"OK: cached replay speedup {cached_speedup:.1f}x "
          f"(bar: {args.min_cached_speedup:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
