"""EXP-B — running-time scaling of the algorithm's components.

The paper claims low-complexity heuristics: the list phase runs in
O(n log n + n·m)-type time and the knapsack selection in O(n·m) per guess.
This benchmark times the canonical list schedule, the knapsack selection and
the full MRT scheduler as n and m grow, and asserts sub-quadratic empirical
growth in n for the list phase (the timing table itself is the artefact).
"""

from __future__ import annotations

import time

from repro.analysis.tables import format_table
from repro.core.canonical_list import canonical_list_schedule
from repro.core.mrt import MRTScheduler
from repro.core.partition import build_partition
from repro.core.two_shelves import select_shelf2_subset
from repro.lower_bounds import canonical_area_lower_bound
from repro.workloads.generators import mixed_instance

N_SWEEP = (50, 100, 200, 400)
M_FIXED = 32


def time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_sweep():
    rows = []
    for n in N_SWEEP:
        instance = mixed_instance(n, M_FIXED, seed=n)
        d = canonical_area_lower_bound(instance) * 1.2
        t_list = time_once(lambda: canonical_list_schedule(instance, d))
        part = build_partition(instance, d)
        t_knap = time_once(lambda: select_shelf2_subset(part)) if part else float("nan")
        t_full = time_once(lambda: MRTScheduler(eps=1e-2).schedule(instance))
        rows.append((n, t_list, t_knap, t_full))
    return rows


def test_expB_runtime_scaling(benchmark, reporter):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    # Empirical growth of the list phase between the smallest and largest n
    # stays well below quadratic (ratio of times < (n2/n1)^2 / 2).
    t_small = max(rows[0][1], 1e-6)
    t_large = rows[-1][1]
    n_ratio = N_SWEEP[-1] / N_SWEEP[0]
    assert t_large / t_small < n_ratio**2
    # Everything completes within interactive time on laptop-scale inputs.
    assert all(t_full < 30.0 for _, _, _, t_full in rows)
    reporter(
        f"EXP-B: running time (seconds) vs number of tasks, m = {M_FIXED}",
        format_table(
            ["n", "canonical list", "knapsack selection", "full MRT (search)"],
            [
                [n, f"{tl * 1e3:.2f} ms", f"{tk * 1e3:.2f} ms", f"{tf:.3f} s"]
                for n, tl, tk, tf in rows
            ],
        ),
    )
