"""FIG4 — an example λ-schedule: two shelves of length d and λ·d (Figure 4).

Figure 4 shows the two-shelf structure: the first shelf holds T1 tasks at
canonical allotments, the second shelf holds the moved T1 tasks, T2 and the
First-Fit-packed T3.  This benchmark builds a λ-schedule on the
shelf-overflow workload (where the knapsack has real work to do), asserts
the structure and the (1+λ)·d length bound, and times the full two-shelf
pipeline (partition + knapsack + construction).
"""

from __future__ import annotations

from repro.analysis.gantt import gantt_chart, shelf_summary
from repro.core.partition import LAMBDA_STAR, build_partition
from repro.core.two_shelves import build_lambda_schedule, select_shelf2_subset
from repro.lower_bounds import canonical_area_lower_bound
from repro.workloads.adversarial import shelf_overflow_instance

INSTANCE = shelf_overflow_instance(32, seed=404, tall_fraction=1.5)
GUESS = canonical_area_lower_bound(INSTANCE) * 1.3


def run_once():
    part = build_partition(INSTANCE, GUESS, LAMBDA_STAR)
    assert part is not None
    subset = select_shelf2_subset(part)
    if subset is None:
        return part, None, None
    return part, subset, build_lambda_schedule(part, subset)


def test_fig4_two_shelf_schedule(benchmark, reporter):
    part, subset, schedule = benchmark(run_once)
    assert part is not None
    if schedule is None:
        # The construction must succeed at a more generous guess instead.
        part2 = build_partition(INSTANCE, GUESS * 1.3, LAMBDA_STAR)
        subset = select_shelf2_subset(part2)
        assert subset is not None
        schedule = build_lambda_schedule(part2, subset)
        part = part2
    schedule.validate()
    d = part.guess
    # Two-shelf structure: every start time is either 0, d, or inside the
    # second shelf (First-Fit stacks), and the makespan is within (1+λ)·d.
    assert schedule.makespan() <= (1 + part.lam) * d + 1e-9
    shelf1 = [e for e in schedule.entries if e.start < d - 1e-9]
    shelf2 = [e for e in schedule.entries if e.start >= d - 1e-9]
    assert shelf1 and shelf2
    assert all(e.end <= d + 1e-9 or e.start == 0.0 for e in shelf1)
    assert all(e.end <= (1 + part.lam) * d + 1e-9 for e in shelf2)
    reporter(
        "FIG4: λ-schedule (two shelves), d = %.4g, λ·d = %.4g" % (d, part.lam * d),
        f"shelf 1 tasks: {len(shelf1)}   shelf 2 tasks: {len(shelf2)}   "
        f"moved T1 tasks: {len(subset) if subset else 0}\n"
        f"makespan = {schedule.makespan():.4g}  bound = {(1 + part.lam) * d:.4g}\n\n"
        + shelf_summary(schedule)
        + "\n\n"
        + gantt_chart(schedule, legend=False),
    )
