"""FIG7 — allocation of a task at the second level (paper Figure 7) and Property 3.

Figure 7 illustrates the appendix's worst-case analysis: a task placed at the
second level of the canonical list schedule must still finish by 2μ·d when
``m ≥ m*(μ)`` and ``W_m ≤ μ·m·d``.  This benchmark runs the canonical list
algorithm over the Property-3 stress battery (instances with an explicit
witness of makespan 1) on a machine of size ``m*(μ)`` and checks the bound.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core import theory
from repro.core.canonical_list import (
    MU_STAR,
    canonical_list_schedule,
    first_two_level_completion,
    outside_levels_are_small_sequential,
)
from repro.workloads.adversarial import property3_stress_instances

M = theory.m_star(MU_STAR)  # = 8, the paper's refined threshold
TRIALS = 30


def run_battery():
    results = []
    for instance in property3_stress_instances(M, MU_STAR, trials=TRIALS, rng=707):
        area = instance.mu_area(1.0)
        if area is None or area > MU_STAR * M + 1e-9:
            continue  # hypothesis W_m <= mu*m not satisfied: out of scope
        schedule = canonical_list_schedule(instance, 1.0)
        if schedule is None:
            continue
        results.append(
            (
                instance.name,
                area,
                first_two_level_completion(schedule),
                schedule.makespan(),
                outside_levels_are_small_sequential(schedule, 1.0),
            )
        )
    return results


def test_fig7_property3_second_level(benchmark, reporter):
    results = benchmark(run_battery)
    assert results, "the stress battery must produce in-scope instances"
    bound = 2.0 * MU_STAR  # = sqrt(3)
    for name, area, first_two, makespan, lemma1 in results:
        # Property 3: tasks of the first two levels finish by 2μ.
        assert first_two <= bound + 1e-9, name
        # Lemma 1: everything outside the first two levels is small & sequential.
        assert lemma1, name
    worst = max(r[2] for r in results)
    rows = [
        [name, f"{area:.3f}", f"{first_two:.3f}", f"{makespan:.3f}"]
        for name, area, first_two, makespan, _ in results[:10]
    ]
    reporter(
        "FIG7: Property 3 on m = m*(√3/2) = %d processors (bound 2μ = %.4f)"
        % (M, bound),
        format_table(["instance", "W_m", "first-two-level end", "makespan"], rows)
        + f"\nworst first-two-level completion over {len(results)} in-scope "
        f"instances: {worst:.4f} <= {bound:.4f}",
    )
