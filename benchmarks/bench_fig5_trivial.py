"""FIG5 — a "trivial" λ-schedule solution (paper Figure 5).

Figure 5 shows the degenerate case of Section 4.5: a single T1 task moved to
the second shelf while every other task fits on the first shelf.  This
benchmark constructs an instance dominated by one highly parallel task,
detects the trivial solution in linear time and builds the corresponding
schedule.
"""

from __future__ import annotations

from repro import Instance, MalleableTask
from repro.analysis.gantt import gantt_chart
from repro.core.partition import LAMBDA_STAR, build_partition
from repro.core.two_shelves import build_trivial_schedule, find_trivial_solution

M = 16


def make_instance() -> Instance:
    # One dominant task that needs many processors to finish within λ·d, plus
    # small fillers that all fit next to each other on the first shelf.
    big = MalleableTask.monotonic_envelope(
        "dominant", [10.0 / p for p in range(1, M + 1)]
    )
    fillers = [MalleableTask.rigid(f"f{i}", 0.35, M) for i in range(6)]
    return Instance([big] + fillers, M, name="fig5")


INSTANCE = make_instance()
GUESS = 1.0


def run_once():
    part = build_partition(INSTANCE, GUESS, LAMBDA_STAR)
    assert part is not None
    tau = find_trivial_solution(part)
    return part, tau


def test_fig5_trivial_solution(benchmark, reporter):
    part, tau = benchmark(run_once)
    assert tau is not None, "the dominant-task instance must admit a trivial solution"
    assert tau in part.t1
    schedule = build_trivial_schedule(part, tau)
    schedule.validate()
    assert schedule.makespan() <= (1 + LAMBDA_STAR) * GUESS + 1e-9
    # Structure of Figure 5: τ alone in the second shelf, everything else at t=0-ish.
    entry = schedule.entry_for(tau)
    assert entry.start >= GUESS - 1e-9
    others_after_shelf1 = [
        e for e in schedule.entries if e.task_index != tau and e.end > GUESS + 1e-9
    ]
    assert not others_after_shelf1
    reporter(
        "FIG5: trivial λ-schedule (one task moved to the second shelf)",
        f"trivial task: {INSTANCE.tasks[tau].name!r} on d_τ = {entry.num_procs} "
        f"processors, makespan = {schedule.makespan():.4g} "
        f"(bound {(1 + LAMBDA_STAR) * GUESS:.4g})\n\n"
        + gantt_chart(schedule, legend=False),
    )
