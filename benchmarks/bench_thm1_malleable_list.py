"""THM1 — Theorem 1: the Malleable List Algorithm is a dual (2 − 2/(m+1))-approximation.

For machines of increasing size, every accepted guess must yield a schedule
within ``(2 − 2/(m+1))·d``; the measured worst ratio over a battery of
guesses and workloads regenerates the theorem's bound empirically.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.malleable_list import MalleableListDual, malleable_list_guarantee
from repro.lower_bounds import canonical_area_lower_bound
from repro.workloads.generators import mixed_instance

MACHINES = (2, 4, 8, 16, 32, 64)
SEEDS = (0, 1, 2)
FACTORS = (1.0, 1.2, 1.6, 2.5)


def run_battery():
    rows = []
    for m in MACHINES:
        worst = 0.0
        accepted = 0
        for seed in SEEDS:
            instance = mixed_instance(20, m, seed=seed)
            lb = canonical_area_lower_bound(instance)
            dual = MalleableListDual()
            for factor in FACTORS:
                guess = lb * factor
                schedule = dual.run(instance, guess)
                if schedule is None:
                    continue
                accepted += 1
                worst = max(worst, schedule.makespan() / guess)
        rows.append((m, malleable_list_guarantee(m), worst, accepted))
    return rows


def test_thm1_dual_guarantee(benchmark, reporter):
    rows = benchmark(run_battery)
    for m, bound, worst, accepted in rows:
        assert accepted > 0
        assert worst <= bound + 1e-9, f"Theorem 1 bound violated on m={m}"
    reporter(
        "THM1: measured makespan/guess vs the 2 - 2/(m+1) bound",
        format_table(
            ["m", "theorem bound", "worst measured", "accepted guesses"],
            [[m, f"{b:.4f}", f"{w:.4f}", a] for m, b, w, a in rows],
        ),
    )
