"""End-to-end trace propagation and metrics across a 2-shard cluster.

One ``X-Repro-Trace-Id`` must yield a single stitched ``/trace/<id>``
document spanning the router's forward hop and the owning shard's
pipeline — through the normal path, the trusted-header fast path, and
the 503 retry path — and the aggregated Prometheus exposition must
parse with exact fleet-wide histogram merges.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.service.client import ServiceClient, ServiceHTTPError
from repro.service.cluster.router import ShardRouterServer, start_cluster
from repro.service.cluster.supervisor import ClusterSupervisor
from repro.service.cluster.worker import ShardSpec
from repro.workloads import uniform_instance

from test_obs import parse_prometheus


@pytest.fixture(scope="class")
def cluster():
    handle = start_cluster(
        2, backend="thread", spec=ShardSpec(workers=2), respawn=False
    )
    yield handle
    handle.close()


@pytest.fixture
def client(cluster):
    return ServiceClient(cluster.url, retries=0)


def spans_by_component(document: dict) -> dict[str, list[str]]:
    return {
        comp["component"]: [s["name"] for s in comp["spans"]]
        for comp in document["components"]
    }


class TestClusterTracePropagation:
    def test_cold_request_stitches_router_and_shard(self, client):
        inst = uniform_instance(num_tasks=12, num_procs=6, seed=41)
        response = client.schedule(inst)
        assert response["cache_hit"] is False
        trace_id = client.last_trace_id
        assert trace_id
        document = client.trace(trace_id)
        assert document["trace_id"] == trace_id
        spans = spans_by_component(document)
        assert spans["router"] == ["route", "forward"]
        (shard_component,) = [c for c in spans if c.startswith("shard-")]
        # Full miss pipeline on the owning shard, in execution order.
        assert spans[shard_component] == [
            "parse",
            "fingerprint",
            "queue_wait",
            "cache_lookup",
            "batch_compute",
            "serialize",
        ]
        # Shard adopted the router's id: one id, one stitched timeline.
        components = {c["component"] for c in document["components"]}
        assert components == {"router", shard_component}
        for comp in document["components"]:
            assert comp["trace_id"] == trace_id

    def test_warm_request_takes_trusted_header_fast_path(self, client):
        inst = uniform_instance(num_tasks=12, num_procs=6, seed=42)
        client.schedule(inst)
        warm = client.schedule(inst)
        assert warm["cache_hit"] is True
        document = client.trace(client.last_trace_id)
        spans = spans_by_component(document)
        (shard_component,) = [c for c in spans if c.startswith("shard-")]
        assert spans[shard_component] == ["fast_hit", "serialize"]
        forward = [
            s
            for c in document["components"]
            if c["component"] == "router"
            for s in c["spans"]
            if s["name"] == "forward"
        ]
        assert forward[0]["meta"]["status"] == 200

    def test_client_supplied_id_is_adopted_end_to_end(self, cluster, client):
        inst = uniform_instance(num_tasks=10, num_procs=4, seed=43)
        external = "feedfacefeedface"
        body = json.dumps(
            {"algorithm": "mrt", "instance": inst.as_dict()}
        ).encode()
        import http.client

        host_port = cluster.url.replace("http://", "")
        conn = http.client.HTTPConnection(host_port, timeout=30)
        try:
            conn.request(
                "POST",
                "/schedule",
                body=body,
                headers={
                    "Content-Type": "application/json",
                    "X-Repro-Trace-Id": external,
                },
            )
            response = conn.getresponse()
            response.read()
            assert response.status == 200
            assert response.getheader("X-Repro-Trace-Id") == external
        finally:
            conn.close()
        spans = spans_by_component(client.trace(external))
        assert "router" in spans
        assert any(c.startswith("shard-") for c in spans)

    def test_span_intervals_nest_inside_the_request(self, client):
        inst = uniform_instance(num_tasks=12, num_procs=6, seed=44)
        client.schedule(inst)
        document = client.trace(client.last_trace_id)
        for comp in document["components"]:
            assert comp["duration_ms"] > 0
            for span in comp["spans"]:
                assert span["start_ms"] >= 0.0
                assert span["duration_ms"] >= 0.0
                assert (
                    span["start_ms"] + span["duration_ms"]
                    <= comp["duration_ms"] * 1.10
                )

    def test_unknown_trace_is_404(self, client):
        with pytest.raises(ServiceHTTPError) as err:
            client.trace("0000000000000000")
        assert err.value.status == 404

    def test_router_traces_listing(self, client):
        inst = uniform_instance(num_tasks=12, num_procs=6, seed=45)
        client.schedule(inst)
        listing = client.traces()
        assert listing["traces"], "router should list its stored traces"
        assert {"trace_id", "component", "duration_ms"} <= set(
            listing["traces"][0]
        )
        assert listing["slow_ms"] == 500.0
        # An absurdly slow filter keeps the shape but empties the rows.
        assert client.traces(slow_ms=1e9)["traces"] == []

    def test_cluster_prometheus_parses_with_fleet_merge(self, client):
        inst = uniform_instance(num_tasks=12, num_procs=6, seed=46)
        client.schedule(inst)
        client.schedule(inst)
        metrics = client.metrics()
        families = parse_prometheus(client.metrics_prometheus())
        total = families["repro_requests_total"]["samples"]
        # Unlabelled series is the exact fleet sum of the per-shard series.
        per_shard = [
            value
            for sample, value in total.items()
            if 'shard="' in sample
        ]
        assert total["repro_requests_total"] == sum(per_shard)
        assert families["repro_shards"]["samples"]["repro_shards"] == 2.0
        latency = families["repro_request_latency_ms"]["samples"]
        assert (
            latency["repro_request_latency_ms_count"]
            == metrics["cluster"]["latency"]["count"]
        )

    def test_fleet_percentiles_merge_exactly(self, cluster, client):
        inst = uniform_instance(num_tasks=12, num_procs=6, seed=47)
        client.schedule(inst)
        metrics = client.metrics()
        from repro.obs import LatencyHistogram

        merged = LatencyHistogram.merged(
            view["metrics"]["latency"]["histogram"]
            for view in metrics["shards"].values()
            if view["metrics"] is not None
        )
        cluster_block = metrics["cluster"]["latency"]
        assert cluster_block["count"] == merged.count
        assert cluster_block["p50_ms"] == pytest.approx(merged.percentile(50))
        assert cluster_block["p99_ms"] == pytest.approx(merged.percentile(99))


class TestRetryPathTracing:
    def test_503_after_dead_shards_still_yields_a_trace(self):
        supervisor = ClusterSupervisor(
            2,
            spec=ShardSpec(workers=1),
            backend="thread",
            respawn=False,
        ).start()
        server = ShardRouterServer(
            ("127.0.0.1", 0),
            supervisor,
            forward_retries=1,
            retry_wait=0.01,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            # Kill the whole fleet: every forward attempt now fails, so the
            # router exhausts its retries and answers 503 — and the trace
            # must record one errored forward span per attempt.
            for handle in supervisor._handles.values():
                handle.stop()
            client = ServiceClient(server.url, retries=0)
            inst = uniform_instance(num_tasks=6, num_procs=4, seed=48)
            with pytest.raises(ServiceHTTPError) as err:
                client.schedule(inst)
            assert err.value.status == 503
            trace_id = client.last_trace_id
            assert trace_id
            document = client.trace(trace_id)
            spans = spans_by_component(document)
            assert set(spans) == {"router"}  # no shard ever saw it
            assert spans["router"] == ["route", "forward", "forward"]
            (router_component,) = document["components"]
            forwards = [
                s for s in router_component["spans"] if s["name"] == "forward"
            ]
            assert [s["meta"]["attempt"] for s in forwards] == [0, 1]
            assert all(s["meta"]["error"] for s in forwards)
            assert client.metrics()["router"]["routing_errors"] >= 2
        finally:
            server.close()
            supervisor.close()
