"""Tests for 1-D bin packing under a deadline (repro.packing.bin_packing)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InfeasibleError
from repro.packing import (
    best_fit,
    first_fit,
    first_fit_decreasing,
    num_bins_first_fit,
)

ALGOS = [first_fit, first_fit_decreasing, best_fit]


@pytest.mark.parametrize("algo", ALGOS, ids=lambda f: f.__name__)
class TestCommonPackingBehaviour:
    def test_all_items_packed(self, algo):
        sizes = [0.4, 0.3, 0.6, 0.2, 0.5]
        result = algo(sizes, 1.0)
        packed = sorted(i for b in result.bins for i in b)
        assert packed == list(range(len(sizes)))
        result.validate(sizes)

    def test_capacity_respected(self, algo, rng):
        sizes = rng.uniform(0.05, 0.9, size=50).tolist()
        result = algo(sizes, 1.0)
        assert all(load <= 1.0 + 1e-9 for load in result.loads)

    def test_oversized_item_raises(self, algo):
        with pytest.raises(InfeasibleError):
            algo([0.5, 1.5], 1.0)

    def test_empty_input(self, algo):
        result = algo([], 1.0)
        assert result.num_bins == 0

    def test_not_worse_than_twice_optimal_area(self, algo, rng):
        """Any-fit algorithms never use more than 2·⌈total⌉ + 1 bins."""
        sizes = rng.uniform(0.05, 1.0, size=80).tolist()
        result = algo(sizes, 1.0)
        assert result.num_bins <= 2 * int(np.ceil(sum(sizes))) + 1

    def test_assignment_consistent_with_bins(self, algo):
        sizes = [0.5, 0.5, 0.5]
        result = algo(sizes, 1.0)
        for i, b in result.assignment.items():
            assert i in result.bins[b]


#: Random item lists for the First-Fit guarantee property tests.
ff_sizes = st.lists(
    st.floats(min_value=0.01, max_value=1.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)


class TestFirstFitSpecific:
    def test_first_fit_keeps_input_order_greedy(self):
        result = first_fit([0.6, 0.6, 0.3], 1.0)
        assert result.bins[0] == [0, 2]
        assert result.bins[1] == [1]

    def test_half_full_property(self, rng):
        """The property used by the paper: all bins but at most one are > capacity/2.

        Holds for First Fit because two bins at most half full would have been
        merged by the greedy rule.
        """
        sizes = rng.uniform(0.05, 0.95, size=60).tolist()
        result = first_fit(sizes, 1.0)
        light_bins = [load for load in result.loads if load <= 0.5]
        assert len(light_bins) <= 1

    def test_light_bin_need_not_be_last(self):
        """Counterexample to the previously documented justification.

        The docstring used to argue "every bin except possibly the *last* is
        more than half full".  Here the *middle* bin stays light: 0.3 opens
        bin 2 (bin 1 holds 0.9), then 0.8 fits neither bin 1 (1.7) nor bin 2
        (1.1) and opens bin 3.  The guarantee that actually holds — and that
        Section 4.1 needs — is ``Σ sizes > (num_bins − 1) · capacity/2``.
        """
        result = first_fit([0.9, 0.3, 0.8], 1.0)
        assert result.loads == [0.9, 0.3, 0.8]
        assert result.loads[1] <= 0.5  # a non-last bin at most half full
        assert sum(result.loads) > (result.num_bins - 1) * 0.5

    @given(sizes=ff_sizes)
    @settings(max_examples=200, deadline=None)
    def test_at_most_one_light_bin(self, sizes):
        """At most one First-Fit bin has load ≤ capacity/2 (any position)."""
        result = first_fit(sizes, 1.0)
        light = [load for load in result.loads if load <= 0.5]
        assert len(light) <= 1

    @given(sizes=ff_sizes)
    @settings(max_examples=200, deadline=None)
    def test_documented_area_guarantee(self, sizes):
        """The stated guarantee: ``Σ sizes > (num_bins − 1)·capacity/2``.

        This is the inequality the two-shelf analysis relies on; the
        partition layer (``q3``) and the lower bounds only ever consume
        ``num_bins`` itself, never the previously overstated
        ``Σ > num_bins·capacity/2`` form (audited in PR 4).
        """
        result = first_fit(sizes, 1.0)
        if result.num_bins >= 2:
            assert sum(sizes) > (result.num_bins - 1) * 0.5

    def test_num_bins_helper(self):
        assert num_bins_first_fit([], 1.0) == 0
        assert num_bins_first_fit([0.7, 0.7], 1.0) == 2
        assert num_bins_first_fit([0.5, 0.5], 1.0) == 1


class TestFFDAndBestFit:
    def test_ffd_no_worse_than_ff_on_classic_example(self):
        sizes = [0.2, 0.5, 0.4, 0.7, 0.1, 0.3, 0.8]
        assert (
            first_fit_decreasing(sizes, 1.0).num_bins
            <= first_fit(sizes, 1.0).num_bins
        )

    def test_best_fit_prefers_fullest_bin(self):
        result = best_fit([0.5, 0.7, 0.2], 1.0)
        # 0.2 joins the 0.7 bin (slack 0.1) rather than the 0.5 bin (slack 0.3),
        # whereas First Fit would put it with 0.5
        assert result.assignment[2] == result.assignment[1]
        ff = first_fit([0.5, 0.7, 0.2], 1.0)
        assert ff.assignment[2] == ff.assignment[0]

    def test_validate_catches_corruption(self):
        result = first_fit([0.4, 0.4], 1.0)
        result.loads[0] = 99.0
        with pytest.raises(InfeasibleError):
            result.validate([0.4, 0.4])
