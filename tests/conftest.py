"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AmdahlSpeedup,
    Instance,
    MalleableTask,
    PerfectSpeedup,
    mixed_instance,
    uniform_instance,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def perfect_task() -> MalleableTask:
    """A perfectly parallel task with sequential time 8 on up to 8 processors."""
    return MalleableTask.constant_work("perfect", 8.0, 8)


@pytest.fixture
def rigid_task() -> MalleableTask:
    """A task that does not benefit from parallelism."""
    return MalleableTask.rigid("rigid", 3.0, 8)


@pytest.fixture
def amdahl_task() -> MalleableTask:
    """An Amdahl task (20% serial) with sequential time 10 on 8 processors."""
    return AmdahlSpeedup(0.2).make_task("amdahl", 10.0, 8)


@pytest.fixture
def tiny_instance() -> Instance:
    """A 4-task, 4-processor instance with hand-picked profiles."""
    tasks = [
        MalleableTask("a", [4.0, 2.2, 1.6, 1.3]),
        MalleableTask("b", [3.0, 1.8, 1.4, 1.2]),
        MalleableTask("c", [2.0, 1.2, 1.0, 0.9]),
        MalleableTask("d", [1.0, 0.8, 0.7, 0.65]),
    ]
    return Instance(tasks, 4, name="tiny")


@pytest.fixture
def small_instance() -> Instance:
    """Deterministic 12-task, 8-processor mixed instance."""
    return mixed_instance(num_tasks=12, num_procs=8, seed=7, name="small")


@pytest.fixture
def medium_instance() -> Instance:
    """Deterministic 30-task, 16-processor mixed instance."""
    return mixed_instance(num_tasks=30, num_procs=16, seed=11, name="medium")


@pytest.fixture
def uniform_instance_16() -> Instance:
    """Uniform instance on 16 processors."""
    return uniform_instance(num_tasks=24, num_procs=16, seed=3)
