"""Tests for the discrete-event machine simulator (repro.sim)."""

from __future__ import annotations

import pytest

from repro import (
    Allotment,
    Instance,
    InvalidScheduleError,
    MalleableTask,
    MRTScheduler,
    OnlineListSimulator,
    Schedule,
    mixed_instance,
    simulate_and_check,
    simulate_schedule,
)
from repro.baselines.gang import GangScheduler
from repro.baselines.sequential import SequentialLPTScheduler
from repro.sim.events import Event, EventKind


class TestEvents:
    def test_ordering_finish_before_start_at_same_time(self):
        start = Event(1.0, 1, 0, EventKind.TASK_START, 0, 0, 1)
        finish = Event(1.0, 0, 1, EventKind.TASK_FINISH, 1, 0, 1)
        assert sorted([start, finish])[0] is finish

    def test_procs_range(self):
        event = Event(0.0, 1, 0, EventKind.TASK_START, 0, 2, 3)
        assert list(event.procs) == [2, 3, 4]


class TestSimulateSchedule:
    def test_matches_static_makespan(self, medium_instance):
        schedule = MRTScheduler().schedule(medium_instance)
        result = simulate_schedule(schedule)
        assert result.makespan == pytest.approx(schedule.makespan())
        assert result.num_procs == medium_instance.num_procs

    def test_utilization_matches_schedule(self, small_instance):
        schedule = MRTScheduler().schedule(small_instance)
        result = simulate_schedule(schedule)
        assert result.utilization == pytest.approx(schedule.utilization(), rel=1e-6)
        per_proc = result.per_processor_utilization()
        assert per_proc.shape == (small_instance.num_procs,)
        assert (per_proc <= 1.0 + 1e-9).all()

    def test_detects_overlap(self):
        inst = Instance([MalleableTask.rigid("a", 2.0, 2), MalleableTask.rigid("b", 2.0, 2)], 2)
        bad = Schedule(inst)
        bad.add(0, 0.0, 0, 1)
        bad.add(1, 1.0, 0, 1)  # overlaps task a on processor 0
        with pytest.raises(InvalidScheduleError):
            simulate_schedule(bad)

    def test_empty_schedule(self, small_instance):
        result = simulate_schedule(Schedule(small_instance))
        assert result.makespan == 0.0
        assert result.utilization == 0.0

    def test_ulp_drifted_abutment_is_not_an_overlap(self):
        """A start one ulp before the finish it abuts must simulate cleanly.

        Stitched online timelines shift every epoch by its start time, and
        ``(s + clock) + d`` vs ``clock + (s + d)`` can disagree in the last
        ulp — the simulator treats an owner finishing within ``tol`` of a
        start as already finished instead of reporting an overlap.
        """
        inst = Instance(
            [MalleableTask.rigid("a", 2.0, 1), MalleableTask.rigid("b", 2.0, 1)], 1
        )
        schedule = Schedule(inst)
        schedule.add(0, 0.0, 0, 1)  # ends at exactly 2.0
        # one ulp before 2.0: logically abuts task a's finish
        import math

        schedule.add(1, math.nextafter(2.0, 0.0), 0, 1)
        result = simulate_schedule(schedule)
        assert result.makespan == pytest.approx(4.0)

    def test_sub_tolerance_duration_task_simulates(self):
        """A task shorter than ``tol`` must not trip the overlap machinery.

        Its start and finish are closer together than the tolerance window;
        the simulator must still process the start before the finish
        (regression for a timestamp-snapping approach that inverted them).
        """
        inst = Instance([MalleableTask("tiny", [1e-12])], 1)
        schedule = Schedule(inst)
        schedule.add(0, 0.0, 0, 1)
        result = simulate_schedule(schedule)
        assert result.makespan == pytest.approx(1e-12, abs=1e-15)
        # and back-to-back with a sub-tol task in front
        inst2 = Instance(
            [MalleableTask("tiny", [1e-12]), MalleableTask.rigid("b", 1.0, 1)], 1
        )
        chain = Schedule(inst2)
        chain.add(0, 0.0, 0, 1)
        chain.add(1, 1e-12, 0, 1)
        assert simulate_schedule(chain).makespan == pytest.approx(1.0)


class TestSimulateAndCheck:
    @pytest.mark.parametrize("seed", range(3))
    def test_every_scheduler_output_executes_cleanly(self, seed):
        inst = mixed_instance(12, 8, seed=seed)
        for scheduler in (MRTScheduler(), GangScheduler(), SequentialLPTScheduler()):
            result = simulate_and_check(scheduler.schedule(inst))
            assert result.makespan > 0


class TestOnlineListSimulator:
    def test_valid_complete_schedule(self, medium_instance):
        allotment = Allotment.sequential(medium_instance)
        schedule = OnlineListSimulator(allotment).run()
        schedule.validate()
        assert schedule.is_complete()

    def test_respects_allotment(self, small_instance):
        allotment = Allotment.canonical(
            small_instance, small_instance.lower_bound() * 1.5
        )
        if allotment is None:
            pytest.skip("canonical allotment infeasible at this deadline")
        schedule = OnlineListSimulator(allotment).run()
        for entry in schedule.entries:
            assert entry.num_procs == allotment[entry.task_index]

    def test_sequential_tasks_match_lpt_makespan(self, small_instance):
        """With one processor per task the online policy equals static LPT."""
        allotment = Allotment.sequential(small_instance)
        online = OnlineListSimulator(allotment).run()
        static = SequentialLPTScheduler().schedule(small_instance)
        assert online.makespan() == pytest.approx(static.makespan())

    def test_custom_order(self, small_instance):
        allotment = Allotment.sequential(small_instance)
        order = list(range(small_instance.num_tasks))
        schedule = OnlineListSimulator(allotment, order=order).run()
        schedule.validate()

    def test_no_idle_processor_while_task_waits(self, medium_instance):
        """Work-conservation: the online policy never leaves a fitting task waiting."""
        allotment = Allotment.sequential(medium_instance)
        schedule = OnlineListSimulator(allotment).run()
        # with sequential tasks, no processor may be idle before the last start
        last_start = max(e.start for e in schedule.entries)
        finish = schedule.processor_finish_times()
        for proc_intervals in schedule.processor_intervals():
            clock = 0.0
            for start, end, _ in proc_intervals:
                # any idle gap must be after the last task has started
                if start > clock + 1e-9:
                    assert clock >= last_start - 1e-9 or start >= last_start - 1e-9
                clock = max(clock, end)
