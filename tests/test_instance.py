"""Unit tests for Instance (repro.model.instance)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Instance, MalleableTask, ModelError


def make_tasks(m: int = 4) -> list[MalleableTask]:
    return [
        MalleableTask.monotonic_envelope("a", np.linspace(8.0, 3.5, m)),
        MalleableTask.monotonic_envelope("b", np.linspace(4.0, 2.0, m)),
        MalleableTask.monotonic_envelope("c", np.linspace(2.0, 1.5, m)),
    ]


class TestConstruction:
    def test_basic(self):
        inst = Instance(make_tasks(), 4, name="x")
        assert inst.num_tasks == 3
        assert inst.num_procs == 4
        assert inst.name == "x"
        assert len(inst) == 3

    def test_iteration_and_indexing(self):
        inst = Instance(make_tasks(), 4)
        assert [t.name for t in inst] == ["a", "b", "c"]
        assert inst[1].name == "b"
        assert inst.task_index("c") == 2
        with pytest.raises(KeyError):
            inst.task_index("zzz")

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            Instance([], 4)

    def test_invalid_machine(self):
        with pytest.raises(ModelError):
            Instance(make_tasks(), 0)

    def test_task_profile_too_short_rejected(self):
        with pytest.raises(ModelError):
            Instance(make_tasks(2), 4)

    def test_profiles_truncated_to_machine(self):
        inst = Instance(make_tasks(8), 4)
        assert all(t.max_procs == 4 for t in inst.tasks)

    def test_non_task_rejected(self):
        with pytest.raises(ModelError):
            Instance(["not a task"], 4)  # type: ignore[list-item]

    def test_from_profiles(self):
        arr = [[4.0, 2.5], [2.0, 1.5]]
        inst = Instance.from_profiles(arr)
        assert inst.num_tasks == 2 and inst.num_procs == 2

    def test_from_profiles_requires_2d(self):
        with pytest.raises(ModelError):
            Instance.from_profiles([1.0, 2.0])


class TestAggregates:
    def test_total_sequential_work(self):
        inst = Instance(make_tasks(), 4)
        assert inst.total_sequential_work() == pytest.approx(8.0 + 4.0 + 2.0)

    def test_max_min_time(self):
        inst = Instance(make_tasks(), 4)
        assert inst.max_min_time() == pytest.approx(3.75)

    def test_max_sequential_time(self):
        inst = Instance(make_tasks(), 4)
        assert inst.max_sequential_time() == pytest.approx(8.0)

    def test_lower_and_upper_bound_relation(self, medium_instance):
        assert medium_instance.lower_bound() <= medium_instance.upper_bound() + 1e-9

    def test_lower_bound_formula(self):
        inst = Instance(make_tasks(), 4)
        expected = max(14.0 / 4, 3.75)
        assert inst.lower_bound() == pytest.approx(expected)


class TestCanonicalQuantities:
    def test_canonical_procs_vector(self):
        inst = Instance(make_tasks(), 4)
        gammas = inst.canonical_procs(4.0)
        assert gammas[1] == 1 and gammas[2] == 1
        assert gammas[0] is not None and gammas[0] >= 2

    def test_canonical_work_none_when_unreachable(self):
        inst = Instance(make_tasks(), 4)
        assert inst.canonical_work(0.5) is None

    def test_canonical_work_at_large_deadline_is_sequential(self):
        inst = Instance(make_tasks(), 4)
        big = inst.max_sequential_time()
        assert inst.canonical_work(big) == pytest.approx(inst.total_sequential_work())

    def test_canonical_work_monotone_in_deadline(self, medium_instance):
        """Smaller deadlines force larger allotments hence more work."""
        d_small = medium_instance.lower_bound()
        d_large = medium_instance.upper_bound()
        w_small = medium_instance.canonical_work(d_small)
        w_large = medium_instance.canonical_work(d_large)
        if w_small is not None:
            assert w_small >= w_large - 1e-9

    def test_mu_area_definition_simple(self):
        """Hand-check Definition 1 on a two-task instance."""
        tasks = [MalleableTask.rigid("x", 1.0, 2), MalleableTask.rigid("y", 0.5, 2)]
        inst = Instance(tasks, 2)
        # canonical allotment at d=1: both sequential; sorted times [1.0, 0.5];
        # first m=2 processors take both tasks fully: W_m = 1.5
        assert inst.mu_area(1.0) == pytest.approx(1.5)

    def test_mu_area_truncates_at_m(self):
        tasks = [MalleableTask.rigid(f"t{i}", 1.0, 2) for i in range(5)]
        inst = Instance(tasks, 2)
        # each task is sequential with time 1; the first 2 processors see area 2
        assert inst.mu_area(1.0) == pytest.approx(2.0)

    def test_mu_area_none_when_infeasible(self):
        inst = Instance(make_tasks(), 4)
        assert inst.mu_area(0.1) is None

    def test_mu_area_at_most_canonical_work(self, medium_instance):
        d = medium_instance.upper_bound()
        assert medium_instance.mu_area(d) <= medium_instance.canonical_work(d) + 1e-9

    def test_mu_area_at_most_m_times_deadline_when_feasible(self, medium_instance):
        """W_m cannot exceed the full m×d rectangle when Property 2 holds."""
        d = medium_instance.upper_bound()
        area = medium_instance.mu_area(d)
        assert area <= medium_instance.num_procs * d + 1e-9


class TestTransformations:
    def test_scaled(self):
        inst = Instance(make_tasks(), 4)
        scaled = inst.scaled(3.0)
        assert scaled.total_sequential_work() == pytest.approx(3 * 14.0)

    def test_subset(self):
        inst = Instance(make_tasks(), 4)
        sub = inst.subset([0, 2])
        assert sub.num_tasks == 2
        assert sub[1].name == "c"

    def test_with_machine(self):
        inst = Instance(make_tasks(8), 8)
        smaller = inst.with_machine(4)
        assert smaller.num_procs == 4

    def test_json_round_trip(self, small_instance):
        clone = Instance.from_json(small_instance.to_json())
        assert clone.num_tasks == small_instance.num_tasks
        assert clone.num_procs == small_instance.num_procs
        for a, b in zip(clone.tasks, small_instance.tasks):
            assert np.allclose(a.times, b.times)


class TestSerializationBitExact:
    """Property tests: JSON round-trips are bit-exact on float profiles.

    Python's ``json`` serialises floats with their shortest round-trip
    ``repr``, so ``from_json(to_json(inst))`` must restore the *identical*
    ``float64`` bits — which is what makes :meth:`Instance.fingerprint`
    stable across the service wire format.
    """

    # Magnitudes follow the existing property tests: the monotonic-envelope
    # repair itself (not serialisation) uses an absolute EPS and degrades on
    # 1e12-scale profiles; extreme magnitudes are pinned separately below
    # with trivially monotonic rigid profiles.
    profiles = st.lists(
        st.lists(
            st.floats(
                min_value=0.01,
                max_value=100.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=6,
        ),
        min_size=1,
        max_size=5,
    )

    @staticmethod
    def _instance_from(raw: list[list[float]]) -> Instance:
        width = min(len(row) for row in raw)
        tasks = [
            MalleableTask.monotonic_envelope(f"T{i}", row[:width])
            for i, row in enumerate(raw)
        ]
        return Instance(tasks, width)

    @given(profiles)
    @settings(max_examples=60, deadline=None)
    def test_round_trip_bits_and_fingerprint(self, raw):
        inst = self._instance_from(raw)
        clone = Instance.from_json(inst.to_json())
        assert clone.num_procs == inst.num_procs
        for a, b in zip(clone.tasks, inst.tasks):
            assert a.times.tobytes() == b.times.tobytes()  # bit-exact
        assert clone.times_matrix.tobytes() == inst.times_matrix.tobytes()
        assert clone.fingerprint() == inst.fingerprint()
        # as_dict/from_dict is the same path without the JSON text stage.
        assert Instance.from_dict(inst.as_dict()).fingerprint() == inst.fingerprint()
        # Canonical JSON: equal content serialises to equal bytes.
        assert clone.to_json() == inst.to_json()

    @given(profiles)
    @settings(max_examples=30, deadline=None)
    def test_payload_fingerprint_agrees(self, raw):
        from repro.service import payload_fingerprint

        inst = self._instance_from(raw)
        assert payload_fingerprint(inst.as_dict()) == inst.fingerprint()

    @given(
        st.lists(
            st.floats(
                min_value=1e-12,
                max_value=1e15,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_extreme_magnitudes_round_trip(self, durations):
        """Rigid profiles (constant time, trivially monotonic) at any scale."""
        tasks = [
            MalleableTask.rigid(f"T{i}", duration, 3)
            for i, duration in enumerate(durations)
        ]
        inst = Instance(tasks, 3)
        clone = Instance.from_json(inst.to_json())
        assert clone.times_matrix.tobytes() == inst.times_matrix.tobytes()
        assert clone.fingerprint() == inst.fingerprint()
