"""Tests for the Section 2.1 properties (repro.core.properties)."""

from __future__ import annotations

import pytest

from repro import Instance, MalleableTask, mixed_instance
from repro.core.properties import (
    canonical_allotment,
    is_small_sequential,
    mu_area,
    property1_holds,
    property2_bound_holds,
)


class TestCanonicalAllotment:
    def test_values(self, tiny_instance):
        alloc = canonical_allotment(tiny_instance, 2.0)
        assert alloc is not None
        assert alloc.deadline == 2.0
        assert len(alloc) == 4
        # task "a" ([4.0, 2.2, 1.6, 1.3]) needs 3 procs to reach <= 2.0
        assert alloc.procs[0] == 3
        assert alloc.times[0] == pytest.approx(1.6)
        assert alloc.works[0] == pytest.approx(4.8)

    def test_totals(self, tiny_instance):
        alloc = canonical_allotment(tiny_instance, 2.0)
        assert alloc.total_procs == int(alloc.procs.sum())
        assert alloc.total_work == pytest.approx(float(alloc.works.sum()))

    def test_none_when_infeasible(self, tiny_instance):
        assert canonical_allotment(tiny_instance, 0.1) is None

    def test_allotment_shrinks_with_larger_deadline(self, medium_instance):
        tight = canonical_allotment(medium_instance, medium_instance.lower_bound())
        loose = canonical_allotment(medium_instance, medium_instance.upper_bound())
        if tight is not None:
            assert all(t >= l for t, l in zip(tight.procs, loose.procs))


class TestProperty1:
    @pytest.mark.parametrize("seed", range(5))
    def test_holds_on_random_monotonic_tasks(self, seed):
        inst = mixed_instance(10, 12, seed=seed)
        for deadline in (0.5, 1.0, 2.0, 5.0, 10.0):
            for task in inst.tasks:
                assert property1_holds(task, deadline)

    def test_holds_vacuously_when_infeasible(self):
        task = MalleableTask.rigid("t", 10.0, 4)
        assert property1_holds(task, 1.0)

    def test_parallel_canonical_time_above_half(self, medium_instance):
        """Corollary: a canonically parallel task runs longer than d/2."""
        d = medium_instance.lower_bound()
        for task in medium_instance.tasks:
            gamma = task.canonical_procs(d)
            if gamma is not None and gamma >= 2:
                assert task.time(gamma) > d / 2 - 1e-9


class TestProperty2:
    def test_none_when_gamma_missing(self, tiny_instance):
        assert property2_bound_holds(tiny_instance, 0.1) is None

    def test_true_at_generous_deadline(self, medium_instance):
        assert property2_bound_holds(medium_instance, medium_instance.upper_bound())

    def test_false_certifies_infeasibility(self):
        """A deadline below the optimum of a dense instance fails the test."""
        tasks = [MalleableTask.rigid(f"t{i}", 1.0, 2) for i in range(4)]
        inst = Instance(tasks, 2)  # optimum is 2
        assert property2_bound_holds(inst, 1.0) is False

    def test_monotone_in_deadline(self, medium_instance):
        """Once the bound holds it keeps holding for larger deadlines."""
        lo = medium_instance.lower_bound()
        hi = medium_instance.upper_bound()
        held = False
        for f in (1.0, 1.2, 1.5, 2.0, 4.0):
            d = min(lo * f, hi)
            ok = property2_bound_holds(medium_instance, d)
            if held:
                assert ok
            held = held or bool(ok)


class TestSmallSequential:
    def test_small_task_is_sequential(self):
        task = MalleableTask("t", [0.4, 0.3])
        assert is_small_sequential(task, 1.0)
        assert task.canonical_procs(1.0) == 1

    def test_large_task_not_small(self):
        task = MalleableTask("t", [0.9, 0.6])
        assert not is_small_sequential(task, 1.0)


class TestMuArea:
    def test_delegates_to_instance(self, medium_instance):
        d = medium_instance.upper_bound()
        assert mu_area(medium_instance, d) == pytest.approx(medium_instance.mu_area(d))
