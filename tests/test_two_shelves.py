"""Tests for the λ-schedule construction (Section 4, repro.core.two_shelves)."""

from __future__ import annotations

import pytest

from repro import Instance, MalleableTask, mixed_instance
from repro.core.partition import LAMBDA_STAR, build_partition
from repro.core.two_shelves import (
    TwoShelfDual,
    build_lambda_schedule,
    build_trivial_schedule,
    candidate_series,
    find_trivial_solution,
    is_feasible_subset,
    select_shelf2_subset,
)
from repro.exceptions import InfeasibleError
from repro.lower_bounds import canonical_area_lower_bound
from repro.workloads.adversarial import shelf_overflow_instance


@pytest.fixture
def overflow_instance() -> Instance:
    """Instance whose tall tasks overflow the first shelf at a tight guess."""
    return shelf_overflow_instance(24, seed=3)


def tight_partition(instance: Instance, factor: float = 1.25):
    d = canonical_area_lower_bound(instance) * factor
    part = build_partition(instance, d)
    assert part is not None
    return part


class TestFeasibility:
    def test_empty_subset_feasibility(self, medium_instance):
        part = tight_partition(medium_instance, 1.5)
        expected = part.q1 <= medium_instance.num_procs and part.free_shelf2 >= 0
        assert is_feasible_subset(part, set()) == expected

    def test_non_t1_subset_rejected(self, medium_instance):
        part = tight_partition(medium_instance, 1.5)
        if part.t3:
            assert not is_feasible_subset(part, {part.t3[0]})

    def test_pinned_task_cannot_move(self, overflow_instance):
        part = tight_partition(overflow_instance)
        pinned = part.pinned_to_shelf1()
        if pinned:
            assert not is_feasible_subset(part, {pinned[0]})


class TestSubsetSelection:
    @pytest.mark.parametrize("method", ["exact", "dual", "fptas"])
    def test_selected_subset_is_feasible(self, overflow_instance, method):
        part = tight_partition(overflow_instance)
        subset = select_shelf2_subset(part, method=method)
        if subset is not None:
            assert is_feasible_subset(part, subset)

    def test_unknown_method(self, medium_instance):
        part = tight_partition(medium_instance, 1.5)
        with pytest.raises(ValueError):
            select_shelf2_subset(part, method="magic")

    def test_exact_finds_solution_when_dual_does(self, overflow_instance):
        part = tight_partition(overflow_instance)
        exact = select_shelf2_subset(part, method="exact")
        dual = select_shelf2_subset(part, method="dual")
        assert (exact is None) == (dual is None)

    def test_negative_free_shelf2_returns_none(self):
        """When T2+T3 already overflow the machine there is no λ-schedule."""
        tasks = [MalleableTask.rigid(f"t{i}", 0.7, 2) for i in range(8)]
        inst = Instance(tasks, 2)
        part = build_partition(inst, 1.0)
        assert part is not None
        if part.free_shelf2 < 0:
            assert select_shelf2_subset(part) is None


class TestLambdaScheduleConstruction:
    def test_infeasible_subset_raises(self, medium_instance):
        part = tight_partition(medium_instance, 1.5)
        bad = set(part.t3[:1]) if part.t3 else {10**6}
        with pytest.raises(InfeasibleError):
            build_lambda_schedule(part, bad)

    def test_schedule_structure(self, overflow_instance):
        part = tight_partition(overflow_instance)
        subset = select_shelf2_subset(part)
        if subset is None:
            pytest.skip("no λ-schedule at this guess")
        schedule = build_lambda_schedule(part, subset)
        schedule.validate()
        assert schedule.is_complete()
        d = part.guess
        # two-shelf structure: starts are either < d (first shelf at 0, or a
        # First-Fit stack inside a shelf) and everything ends by (1+λ)·d
        assert schedule.makespan() <= (1 + part.lam) * d + 1e-6
        for entry in schedule.entries:
            if entry.task_index in part.t1 and entry.task_index not in subset:
                assert entry.start == pytest.approx(0.0)
                assert entry.duration <= d + 1e-9
            if entry.task_index in subset or entry.task_index in part.t2:
                assert entry.start >= d - 1e-9
                assert entry.duration <= part.lam * d + 1e-9

    def test_small_tasks_packed_on_second_shelf(self, overflow_instance):
        part = tight_partition(overflow_instance)
        subset = select_shelf2_subset(part)
        if subset is None:
            pytest.skip("no λ-schedule at this guess")
        schedule = build_lambda_schedule(part, subset)
        for i in part.t3:
            entry = schedule.entry_for(i)
            assert entry.num_procs == 1
            assert entry.start >= part.guess - 1e-9
            assert entry.end <= (1 + part.lam) * part.guess + 1e-6


class TestTrivialSolutions:
    def test_trivial_detection_and_schedule(self):
        """One dominant tall task, everything else tiny: trivial solution exists."""
        m = 8
        big = MalleableTask.monotonic_envelope(
            "big", [7.0 / p for p in range(1, m + 1)]
        )
        small = [MalleableTask.rigid(f"s{i}", 0.3, m) for i in range(4)]
        inst = Instance([big] + small, m)
        part = build_partition(inst, 1.0)
        assert part is not None
        tau = find_trivial_solution(part)
        if tau is None:
            pytest.skip("no trivial solution at guess 1.0 for this construction")
        schedule = build_trivial_schedule(part, tau)
        schedule.validate()
        assert schedule.makespan() <= (1 + LAMBDA_STAR) * 1.0 + 1e-9
        assert schedule.entry_for(tau).start == pytest.approx(1.0)

    def test_build_trivial_rejects_non_t1(self, medium_instance):
        part = tight_partition(medium_instance, 1.5)
        with pytest.raises(InfeasibleError):
            build_trivial_schedule(part, part.t3[0] if part.t3 else 0)

    def test_shared_first_shelf_packing_is_cached(self, medium_instance):
        part = tight_partition(medium_instance, 1.5)
        packing = part.first_shelf_packing()
        if part.t3:
            assert packing is not None
            assert packing is part.first_shelf_packing()  # cached, one object
            assert packing.capacity == part.guess
            # distinct from the second-shelf packing (capacity λ·d)
            if part.small_packing is not None:
                assert part.small_packing.capacity == pytest.approx(
                    part.lam * part.guess
                )
        else:
            assert packing is None

    @pytest.mark.parametrize("seed", range(8))
    def test_every_accepted_tau_builds(self, seed):
        """Regression: feasibility test and builder share one T3 packing.

        ``find_trivial_solution`` and ``build_trivial_schedule`` used to run
        First Fit on the T3 durations independently; the shared
        ``first_shelf_packing`` makes divergence impossible, so every ``τ``
        the detector accepts must materialise without ``InfeasibleError``.
        """
        inst = mixed_instance(num_tasks=14, num_procs=8, seed=seed)
        lb = canonical_area_lower_bound(inst)
        for factor in (1.0, 1.1, 1.3, 1.7, 2.2):
            part = build_partition(inst, lb * factor)
            if part is None:
                continue
            tau = find_trivial_solution(part)
            if tau is None:
                continue
            schedule = build_trivial_schedule(part, tau)  # must not raise
            schedule.validate()
            assert schedule.makespan() <= (1 + part.lam) * part.guess + 1e-6


class TestLemma4Property:
    """Property tests for the candidate series of Lemma 4."""

    @pytest.mark.parametrize("seed", range(12))
    def test_feasible_guess_without_trivial_hits_series(self, seed):
        """Lemma 4: no trivial solution + Γλ non-empty ⇒ some S_j ∈ Γλ."""
        inst = shelf_overflow_instance(16 + (seed % 3) * 4, seed=seed)
        lb = canonical_area_lower_bound(inst)
        checked = 0
        for factor in (1.0, 1.15, 1.35, 1.6, 2.0):
            part = build_partition(inst, lb * factor)
            if part is None:
                continue
            if find_trivial_solution(part) is not None:
                continue
            if select_shelf2_subset(part, method="exact") is None:
                continue  # Γλ empty: the lemma's hypothesis does not hold
            steps = candidate_series(part)
            assert any(step.feasible for step in steps), (
                f"Γλ non-empty at guess {lb * factor} but no series element "
                f"is feasible (seed={seed})"
            )
            checked += 1
        # the adversarial family must actually exercise the lemma somewhere
        if seed == 0:
            assert checked >= 1

    @pytest.mark.parametrize("seed", range(6))
    def test_series_is_deterministic(self, seed):
        """The inefficiency max tie-break yields one canonical series.

        ``max(..., key=ineff)`` keeps the first maximiser in list order, so
        two runs over equal partitions — including freshly rebuilt ones —
        must produce identical step sequences.
        """
        inst = mixed_instance(num_tasks=16, num_procs=8, seed=seed)
        lb = canonical_area_lower_bound(inst)
        part = build_partition(inst, lb * 1.2)
        if part is None:
            pytest.skip("no canonical partition at this guess")
        first = candidate_series(part)
        again = candidate_series(part)
        rebuilt_part = build_partition(inst, lb * 1.2)
        assert rebuilt_part is not None
        rebuilt = candidate_series(rebuilt_part)
        for other in (again, rebuilt):
            assert [s.subset for s in first] == [s.subset for s in other]
            assert [s.removed_task for s in first] == [
                s.removed_task for s in other
            ]


class TestCandidateSeries:
    def test_series_shrinks_to_empty(self, overflow_instance):
        part = tight_partition(overflow_instance)
        steps = candidate_series(part)
        assert len(steps) >= 1
        assert steps[-1].subset == ()
        sizes = [len(s.subset) for s in steps]
        assert sizes == sorted(sizes, reverse=True)

    def test_series_areas_decrease(self, overflow_instance):
        part = tight_partition(overflow_instance)
        steps = candidate_series(part)
        areas = [s.canonical_area for s in steps]
        assert all(a >= b - 1e-9 for a, b in zip(areas, areas[1:]))

    def test_feasible_flag_matches_is_feasible(self, overflow_instance):
        part = tight_partition(overflow_instance)
        for step in candidate_series(part):
            assert step.feasible == is_feasible_subset(part, step.subset)


class TestTwoShelfDual:
    @pytest.mark.parametrize("seed", range(3))
    def test_accepted_guess_within_target(self, seed):
        inst = shelf_overflow_instance(20, seed=seed)
        dual = TwoShelfDual()
        lb = canonical_area_lower_bound(inst)
        for factor in (1.0, 1.2, 1.6, 2.5):
            schedule = dual.run(inst, lb * factor)
            if schedule is not None:
                schedule.validate()
                assert schedule.makespan() <= dual.rho * lb * factor + 1e-6

    def test_rejects_tiny_guess(self, medium_instance):
        assert TwoShelfDual().run(medium_instance, 1e-9) is None

    def test_accepts_generous_guess(self, medium_instance):
        dual = TwoShelfDual()
        schedule = dual.run(medium_instance, medium_instance.upper_bound())
        assert schedule is not None
        schedule.validate()
