"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.cli import ALGORITHMS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_algorithms(self):
        assert set(ALGORITHMS) == {"mrt", "ludwig", "turek", "sequential", "gang"}


class TestGenerate:
    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "--family", "uniform", "--tasks", "4", "--procs", "4"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_procs"] == 4
        assert len(payload["tasks"]) == 4

    def test_generate_to_file(self, tmp_path, capsys):
        out = tmp_path / "inst.json"
        assert main(
            ["generate", "--family", "mixed", "--tasks", "5", "--procs", "8", "--output", str(out)]
        ) == 0
        payload = json.loads(out.read_text())
        assert len(payload["tasks"]) == 5

    def test_generate_ocean(self, capsys):
        assert main(["generate", "--family", "ocean", "--procs", "8"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "ocean"

    def test_generate_arrival_trace(self, capsys):
        assert main(
            ["generate", "--family", "uniform", "--tasks", "6", "--procs", "4",
             "--arrivals", "poisson"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(task.get("release", 0.0) > 0 for task in payload["tasks"])

    def test_generate_arrivals_rejects_ocean(self):
        with pytest.raises(SystemExit):
            main(["generate", "--family", "ocean", "--arrivals", "poisson"])


class TestReplay:
    def test_replay_generated_trace(self, capsys):
        code = main(
            ["replay", "--pattern", "poisson", "--family", "uniform",
             "--tasks", "8", "--procs", "4", "--seed", "0",
             "--quantum", "2", "--validate", "--compare-offline", "--json"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "epoch   0" in out and "validated:" in out
        summary = json.loads(
            next(line for line in out.splitlines() if line.startswith("REPLAY ")) [len("REPLAY "):]
        )
        assert summary["validated"] is True
        assert summary["num_tasks"] == 8
        assert summary["competitive_ratio"] > 0
        assert len(summary["epochs"]) == summary["num_epochs"]

    def test_replay_from_trace_file(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(
            ["generate", "--family", "uniform", "--tasks", "5", "--procs", "4",
             "--arrivals", "burst", "--output", str(out)]
        ) == 0
        capsys.readouterr()
        assert main(["replay", "--trace", str(out), "--validate"]) == 0
        assert "replay:" in capsys.readouterr().out

    def test_replay_rate_requires_poisson(self):
        with pytest.raises(SystemExit):
            main(["replay", "--pattern", "burst", "--rate", "2.0"])

    @pytest.mark.parametrize("kernel", ["barrier", "availability"])
    def test_replay_kernel_selection(self, capsys, kernel):
        code = main(
            ["replay", "--pattern", "pareto", "--family", "uniform",
             "--tasks", "8", "--procs", "4", "--seed", "1",
             "--kernel", kernel, "--validate", "--json"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"kernel={kernel}" in out
        summary = json.loads(
            next(line for line in out.splitlines() if line.startswith("REPLAY "))
            [len("REPLAY "):]
        )
        assert summary["kernel"] == kernel and summary["validated"] is True

    def test_replay_unknown_kernel_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["replay", "--kernel", "nope"])
        err = capsys.readouterr().err
        assert "availability" in err and "barrier" in err

    def test_replay_negative_release_in_trace_file_rejected(self, tmp_path):
        from repro.model.instance import Instance

        payload = Instance.from_profiles([[4.0, 2.0]]).as_dict()
        payload["tasks"][0]["release"] = -1.0
        trace = tmp_path / "bad-trace.json"
        trace.write_text(json.dumps(payload))
        with pytest.raises(SystemExit, match="release"):
            main(["replay", "--trace", str(trace)])


class TestSchedule:
    @pytest.mark.parametrize("algorithm", ["mrt", "sequential", "gang"])
    def test_schedule_generated_instance(self, capsys, algorithm):
        code = main(
            [
                "schedule",
                "--algorithm",
                algorithm,
                "--family",
                "uniform",
                "--tasks",
                "6",
                "--procs",
                "4",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan=" in out and "ratio<=" in out

    def test_schedule_from_file_with_gantt(self, tmp_path, capsys):
        out = tmp_path / "inst.json"
        main(["generate", "--family", "uniform", "--tasks", "4", "--procs", "4", "--output", str(out)])
        capsys.readouterr()
        code = main(["schedule", "--algorithm", "mrt", "--input", str(out), "--gantt"])
        assert code == 0
        text = capsys.readouterr().out
        assert "P  0 |" in text

    def test_unknown_algorithm_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--algorithm", "nope"])


class TestCompareAndMstar:
    def test_compare_small(self, capsys):
        code = main(
            [
                "compare",
                "--tasks",
                "6",
                "--procs",
                "4",
                "--repetitions",
                "1",
                "--families",
                "uniform",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mrt-sqrt3" in out and "mean ratio" in out

    def test_mstar(self, capsys):
        assert main(["mstar", "--points", "3"]) == 0
        out = capsys.readouterr().out
        assert "m*" in out
        assert "anchor" in out


class TestServe:
    def test_serve_round_trip_and_clean_shutdown(self, tmp_path):
        """Start the server on an ephemeral port, do one request, shut down."""
        from repro.service import ServiceClient
        from repro.workloads.generators import make_workload

        ready = tmp_path / "ready"
        codes: list[int] = []
        thread = threading.Thread(
            target=lambda: codes.append(
                main(
                    [
                        "serve",
                        "--port",
                        "0",
                        "--allow-shutdown",
                        "--ready-file",
                        str(ready),
                        "--workers",
                        "2",
                    ]
                )
            ),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 30.0
        while not ready.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert ready.exists(), "server never wrote the ready file"
        host, port = ready.read_text().split()
        client = ServiceClient(f"http://{host}:{port}")
        assert client.healthz()["status"] == "ok"
        instance = make_workload("uniform", 4, 4, seed=1)
        response = client.schedule(instance)
        assert response["result"]["makespan"] > 0
        assert client.schedule(instance)["cache_hit"] is True
        client.shutdown()
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "serve did not exit after /shutdown"
        assert codes == [0]


class TestServeCluster:
    def test_sharded_serve_round_trip_and_clean_shutdown(self, tmp_path):
        """Boot `serve --shards 2`, replay an instance through the router."""
        from repro.service import ServiceClient
        from repro.workloads.generators import make_workload

        ready = tmp_path / "ready"
        codes: list[int] = []
        thread = threading.Thread(
            target=lambda: codes.append(
                main(
                    [
                        "serve",
                        "--port",
                        "0",
                        "--shards",
                        "2",
                        "--shard-backend",
                        "thread",
                        "--workers",
                        "2",
                        "--allow-shutdown",
                        "--ready-file",
                        str(ready),
                    ]
                )
            ),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 30.0
        while not ready.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert ready.exists(), "cluster never wrote the ready file"
        host, port = ready.read_text().split()
        client = ServiceClient(f"http://{host}:{port}")
        health = client.healthz()
        assert health["status"] == "ok" and health["shards"] == 2
        instance = make_workload("uniform", 4, 4, seed=1)
        response = client.schedule(instance)
        assert response["result"]["makespan"] > 0
        assert client.schedule(instance)["cache_hit"] is True
        assert client.metrics()["cluster"]["shards"] == 2
        client.shutdown()
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "serve did not exit after /shutdown"
        assert codes == [0]


class TestLoadtest:
    def test_self_hosted_loadtest(self, capsys):
        code = main(
            [
                "loadtest",
                "--instances",
                "2",
                "--tasks",
                "5",
                "--procs",
                "4",
                "--repeats",
                "1",
                "--concurrency",
                "2",
                "--no-adversarial",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "warm/cold throughput speedup" in out
        assert "responses consistent: True" in out
        bench_lines = [l for l in out.splitlines() if l.startswith("BENCH ")]
        assert len(bench_lines) == 1
        report = json.loads(bench_lines[0][len("BENCH "):])
        assert report["warm"]["cache_hits"] == report["warm"]["requests"]
        assert report["cold"]["errors"] == 0
        assert report["retries_total"] == 0
        assert "shard_distribution" not in report  # single-process target

    def test_self_hosted_sharded_loadtest(self, capsys):
        code = main(
            [
                "loadtest",
                "--shards",
                "2",
                "--instances",
                "4",
                "--tasks",
                "5",
                "--procs",
                "4",
                "--repeats",
                "1",
                "--concurrency",
                "2",
                "--no-adversarial",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "self-hosted 2-shard cluster" in out
        assert "shard imbalance" in out
        bench_lines = [l for l in out.splitlines() if l.startswith("BENCH ")]
        report = json.loads(bench_lines[0][len("BENCH "):])
        assert report["warm"]["cache_hits"] == report["warm"]["requests"]
        assert set(report["shard_distribution"]) == {"0", "1"}
        forwarded = sum(
            s["requests_forwarded"] for s in report["shard_distribution"].values()
        )
        assert forwarded >= report["cold"]["requests"] + report["warm"]["requests"]
        assert report["imbalance"]["max_over_ideal"] >= 1.0
